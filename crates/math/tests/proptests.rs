//! Property-based tests of the numerical kernel.

use disar_math::matrix::{ridge_least_squares, Matrix};
use disar_math::poly::PolyFamily;
use disar_math::rng::{split_seed, stream_rng, StandardNormal};
use disar_math::stats::{self, Accumulator};
use proptest::prelude::*;
use rand::Rng;

/// Builds a random symmetric positive-definite matrix `A = B Bᵀ + εI`.
fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = stream_rng(seed, 0x5bd);
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = rng.gen_range(-1.0..1.0);
        }
    }
    let mut a = b.matmul(&b.transpose()).expect("square product");
    for i in 0..n {
        a[(i, i)] += 0.5;
    }
    a
}

proptest! {
    /// Cholesky of a constructed SPD matrix always succeeds and
    /// reconstructs the input.
    #[test]
    fn cholesky_reconstructs_random_spd(n in 1usize..8, seed in 0u64..500) {
        let a = random_spd(n, seed);
        let l = a.cholesky().expect("SPD by construction");
        let recon = l.matmul(&l.transpose()).expect("square");
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
        // L is lower-triangular with positive diagonal.
        for i in 0..n {
            prop_assert!(l[(i, i)] > 0.0);
            for j in (i + 1)..n {
                prop_assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    /// `solve_spd` inverts `matvec` on random SPD systems.
    #[test]
    fn spd_solve_roundtrip(n in 1usize..8, seed in 0u64..500) {
        let a = random_spd(n, seed);
        let mut rng = stream_rng(seed, 1);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b = a.matvec(&x).expect("dims match");
        let solved = a.solve_spd(&b).expect("SPD");
        for (xi, si) in x.iter().zip(&solved) {
            prop_assert!((xi - si).abs() < 1e-6, "x {xi} vs solved {si}");
        }
    }

    /// Ridge regression residuals are orthogonal-ish to the design at
    /// λ = 0 (normal equations): ‖Xᵀ(y − Xβ)‖ ≈ 0.
    #[test]
    fn ols_normal_equations_hold(rows in 4usize..30, seed in 0u64..200) {
        let cols = 3;
        let mut rng = stream_rng(seed, 2);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.gen_range(-2.0..2.0));
        }
        let x = Matrix::from_vec(rows, cols, data).expect("consistent");
        let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-3.0..3.0)).collect();
        // Regularize minimally to guarantee invertibility on adversarial draws.
        let beta = ridge_least_squares(&x, &y, 1e-10).expect("solvable");
        let yhat = x.matvec(&beta).expect("dims");
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        for j in 0..cols {
            let dot: f64 = (0..rows).map(|i| x[(i, j)] * resid[i]).sum();
            prop_assert!(dot.abs() < 1e-4, "column {j} correlation {dot}");
        }
    }

    /// Welford accumulator merging is order-independent (associative and
    /// commutative up to floating error).
    #[test]
    fn accumulator_merge_commutes(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        ys in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let acc = |v: &[f64]| {
            let mut a = Accumulator::new();
            for &x in v {
                a.add(x);
            }
            a
        };
        let mut ab = acc(&xs);
        ab.merge(&acc(&ys));
        let mut ba = acc(&ys);
        ba.merge(&acc(&xs));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        prop_assert!((ab.mean() - stats::mean(&all)).abs() < 1e-9);
    }

    /// Polynomial recurrences match naive evaluation for low orders.
    #[test]
    fn hermite_recurrence_matches_closed_forms(x in -5.0f64..5.0) {
        let h = |k: usize| PolyFamily::Hermite.eval(k, x);
        prop_assert!((h(4) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-8);
        prop_assert!(
            (h(5) - (x.powi(5) - 10.0 * x.powi(3) + 15.0 * x)).abs() < 1e-7
        );
    }

    /// Seed splitting: distinct indices give distinct streams, identical
    /// indices identical streams.
    #[test]
    fn seed_split_consistency(master in 0u64..u64::MAX, i in 0u64..10_000, j in 0u64..10_000) {
        prop_assert_eq!(split_seed(master, i), split_seed(master, i));
        if i != j {
            prop_assert_ne!(split_seed(master, i), split_seed(master, j));
        }
    }

    /// Normal sampler always produces finite values.
    #[test]
    fn normal_sampler_finite(seed in 0u64..1000) {
        let mut rng = stream_rng(seed, 0);
        let mut g = StandardNormal::new();
        for _ in 0..100 {
            let z = g.sample(&mut rng);
            prop_assert!(z.is_finite());
            prop_assert!(z.abs() < 10.0, "10-sigma draw is essentially impossible");
        }
    }

    /// Histogram conserves mass whatever the inputs.
    #[test]
    fn histogram_mass_conservation(
        xs in prop::collection::vec(-1e4f64..1e4, 0..200),
        bins in 1usize..40,
    ) {
        let mut h = stats::Histogram::new(-100.0, 100.0, bins).expect("valid");
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }
}
