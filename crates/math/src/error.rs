use std::error::Error;
use std::fmt;

/// Error type for numerical routines in this crate.
///
/// All public fallible functions return `Result<_, MathError>`. The variants
/// describe *why* a computation could not proceed, so callers can decide
/// whether to regularize, resample, or abort.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A factorization required a (strictly) positive-definite matrix but the
    /// input was not (within numerical tolerance).
    NotPositiveDefinite {
        /// Index of the pivot where positive-definiteness failed.
        pivot: usize,
    },
    /// A matrix was singular (or numerically so) where an invertible one was
    /// required.
    Singular,
    /// The input slice/collection was empty where at least one element is
    /// required.
    EmptyInput(&'static str),
    /// A scalar argument was outside its valid domain.
    InvalidArgument(&'static str),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MathError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            MathError::Singular => write!(f, "matrix is singular"),
            MathError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MathError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MathError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
