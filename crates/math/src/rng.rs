//! Deterministic random-number utilities.
//!
//! Reproducibility is a hard requirement in a regulatory context: a solvency
//! figure must be re-derivable. Every stochastic component in the workspace
//! therefore takes an explicit `u64` seed and derives *independent
//! sub-streams* per Monte Carlo path through [`split_seed`], so results do
//! not depend on thread scheduling.
//!
//! Gaussian variates are produced with the Marsaglia polar method
//! ([`StandardNormal`]) — the workspace does not depend on `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: advances `state` and returns a well-mixed 64-bit output.
///
/// This is the generator recommended by Vigna for seeding other PRNGs; we use
/// it to derive uncorrelated sub-seeds from a master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `index`-th sub-seed of `master`.
///
/// Distinct `(master, index)` pairs map to (practically) independent seeds;
/// the same pair always maps to the same seed.
///
/// # Example
///
/// ```
/// use disar_math::rng::split_seed;
/// assert_eq!(split_seed(42, 7), split_seed(42, 7));
/// assert_ne!(split_seed(42, 7), split_seed(42, 8));
/// ```
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(index.wrapping_add(1));
    // Two rounds of mixing decorrelate adjacent indices.
    let a = splitmix64(&mut s);
    let mut s2 = a ^ index.rotate_left(17);
    splitmix64(&mut s2)
}

/// Creates a deterministic [`StdRng`] for the given `(master, index)` stream.
pub fn stream_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(master, index))
}

/// Samples standard-normal variates using the Marsaglia polar method.
///
/// The sampler caches the second variate of each generated pair, so the
/// amortized cost is one `ln` + one `sqrt` per two samples.
///
/// # Example
///
/// ```
/// use disar_math::rng::StandardNormal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut gauss = StandardNormal::new();
/// let z = gauss.sample(&mut rng);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    spare: Option<f64>,
}

impl StandardNormal {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one N(0,1) variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fills `out` with N(0,1) variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

/// Convenience: draws `n` standard normals from a fresh stream of `master`.
pub fn normal_vec(master: u64, index: u64, n: usize) -> Vec<f64> {
    let mut rng = stream_rng(master, index);
    let mut g = StandardNormal::new();
    let mut v = vec![0.0; n];
    g.fill(&mut rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn splitmix_is_deterministic() {
        let mut s1 = 123u64;
        let mut s2 = 123u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        assert_eq!(s1, s2);
    }

    #[test]
    fn split_seed_distinct_indices() {
        let seeds: Vec<u64> = (0..1000).map(|i| split_seed(99, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "sub-seed collision");
    }

    #[test]
    fn split_seed_distinct_masters() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn stream_rng_reproducible() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        let xa: f64 = a.gen();
        let xb: f64 = b.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn normal_moments() {
        let v = normal_vec(2024, 0, 200_000);
        let m = stats::mean(&v);
        let sd = stats::std_dev(&v);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((sd - 1.0).abs() < 0.01, "sd {sd}");
    }

    #[test]
    fn normal_tail_mass() {
        // P(|Z| > 1.96) ≈ 0.05
        let v = normal_vec(5, 1, 100_000);
        let frac = v.iter().filter(|z| z.abs() > 1.96).count() as f64 / v.len() as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn normal_pairs_uncorrelated_across_streams() {
        let a = normal_vec(11, 0, 50_000);
        let b = normal_vec(11, 1, 50_000);
        let c = stats::correlation(&a, &b);
        assert!(c.abs() < 0.02, "cross-stream correlation {c}");
    }
}
