//! Data-parallel execution over independent work items.
//!
//! Type-B EEBs are "parallelized by distributing different work units on the
//! available computing nodes … each node computes concurrently average local
//! values, which are then suitably combined" (§III). In-process, the same
//! structure is a parallel map over independent items with a final gather;
//! this module provides it on crossbeam scoped threads with deterministic
//! output order (results are written by index, so the schedule cannot change
//! the result). It is shared by the ALM nested Monte Carlo, Algorithm 1's
//! grid sweep, the predictor retrain loop and the bench campaign driver.

/// The library-wide default worker-thread count: one per core the process
/// may use ([`std::thread::available_parallelism`]), falling back to `1`
/// when the platform cannot report it.
///
/// Every parallel entry point in the workspace is bit-identical for any
/// thread count, so this only changes speed, never results; pass
/// `n_threads = 1` explicitly for the sequential escape hatch.
pub fn default_n_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every index in `0..n_items` using up to `n_threads`
/// worker threads, returning results in index order.
///
/// `n_threads = 1` degrades to a plain sequential map (no threads spawned),
/// which keeps small workloads cheap.
///
/// # Panics
///
/// Panics if `n_threads == 0`, or if `f` panics on any item (the panic is
/// propagated).
///
/// # Example
///
/// ```
/// use disar_math::parallel::parallel_map;
///
/// let squares = parallel_map(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n_items: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(n_threads > 0, "n_threads must be positive");
    if n_items == 0 {
        return Vec::new();
    }
    if n_threads == 1 || n_items == 1 {
        return (0..n_items).map(f).collect();
    }

    let mut results: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let threads = n_threads.min(n_items);
    let chunk = n_items.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let base = t * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("all slots filled by construction"))
        .collect()
}

/// Applies `f` to every element of `items` in place, using up to
/// `n_threads` worker threads, and returns the per-item results in index
/// order.
///
/// This is the mutable companion of [`parallel_map`]: each worker owns a
/// disjoint chunk of `items`, so `f` may freely mutate its element (e.g.
/// fitting one model of an ensemble). Results are written by index, so the
/// output — like the mutations — is independent of the thread schedule as
/// long as `f(i, item)` depends only on `i` and `*item`.
///
/// `n_threads = 1` degrades to a plain sequential loop (no threads
/// spawned).
///
/// # Panics
///
/// Panics if `n_threads == 0`, or if `f` panics on any item (the panic is
/// propagated).
///
/// # Example
///
/// ```
/// use disar_math::parallel::parallel_map_mut;
///
/// let mut xs = vec![1, 2, 3, 4];
/// let old = parallel_map_mut(&mut xs, 2, |i, x| {
///     let before = *x;
///     *x += i as i32;
///     before
/// });
/// assert_eq!(xs, vec![1, 3, 5, 7]);
/// assert_eq!(old, vec![1, 2, 3, 4]);
/// ```
pub fn parallel_map_mut<T, R, F>(items: &mut [T], n_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    assert!(n_threads > 0, "n_threads must be positive");
    let n_items = items.len();
    if n_items == 0 {
        return Vec::new();
    }
    if n_threads == 1 || n_items == 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let mut results: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
    let threads = n_threads.min(n_items);
    let chunk = n_items.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (t, (item_chunk, slot_chunk)) in items
            .chunks_mut(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            s.spawn(move |_| {
                let base = t * chunk;
                for (off, (item, slot)) in
                    item_chunk.iter_mut().zip(slot_chunk.iter_mut()).enumerate()
                {
                    *slot = Some(f(base + off, item));
                }
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("all slots filled by construction"))
        .collect()
}

/// Like [`parallel_map`], but each worker thread first builds a private
/// workspace with `init` and then threads it mutably through every item of
/// its chunk — the zero-allocation companion of [`parallel_map`] for
/// kernels that reuse scratch buffers across items.
///
/// `f(i, ws)` must produce a result that depends only on `i`, treating the
/// workspace as pure scratch (anything it left behind may be observed by
/// the next item of the same chunk, but must not change results). Under
/// that contract the output is bit-identical for every thread count;
/// `n_threads = 1` is the sequential escape hatch (one workspace, no
/// threads spawned).
///
/// # Panics
///
/// Panics if `n_threads == 0`, or if `init` or `f` panics (the panic is
/// propagated).
///
/// # Example
///
/// ```
/// use disar_math::parallel::parallel_map_with;
///
/// // One scratch Vec per worker, reused across its whole chunk.
/// let sums = parallel_map_with(
///     6,
///     3,
///     Vec::new,
///     |i, scratch: &mut Vec<usize>| {
///         scratch.clear();
///         scratch.extend(0..=i);
///         scratch.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(sums, vec![0, 1, 3, 6, 10, 15]);
/// ```
pub fn parallel_map_with<T, W, I, F>(n_items: usize, n_threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(usize, &mut W) -> T + Sync,
{
    assert!(n_threads > 0, "n_threads must be positive");
    if n_items == 0 {
        return Vec::new();
    }
    if n_threads == 1 || n_items == 1 {
        let mut ws = init();
        return (0..n_items).map(|i| f(i, &mut ws)).collect();
    }

    let mut results: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    let threads = n_threads.min(n_items);
    let chunk = n_items.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            s.spawn(move |_| {
                let mut ws = init();
                let base = t * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off, &mut ws));
                }
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("all slots filled by construction"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_threads_is_positive() {
        assert!(default_n_threads() >= 1);
    }

    #[test]
    fn matches_sequential_map() {
        let seq: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 100, 200] {
            let par = parallel_map(100, threads, |i| i * 3 + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn every_item_computed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let v = parallel_map(1000, 7, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        parallel_map(64, 4, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    #[should_panic(expected = "n_threads must be positive")]
    fn zero_threads_panics() {
        let _ = parallel_map(4, 0, |i| i);
    }

    #[test]
    fn map_mut_matches_sequential_for_any_thread_count() {
        let expect_items: Vec<i64> = (0..97).map(|i| i * 2 + 5).collect();
        let expect_results: Vec<i64> = (0..97).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let mut items: Vec<i64> = (0..97).collect();
            let results = parallel_map_mut(&mut items, threads, |i, x| {
                let before = *x;
                *x = *x * 2 + 5;
                debug_assert_eq!(before, i as i64);
                before
            });
            assert_eq!(items, expect_items, "threads = {threads}");
            assert_eq!(results, expect_results, "threads = {threads}");
        }
    }

    #[test]
    fn map_mut_empty_and_singleton() {
        let mut empty: Vec<u8> = Vec::new();
        let r: Vec<u8> = parallel_map_mut(&mut empty, 4, |_, _| unreachable!());
        assert!(r.is_empty());

        let mut one = vec![10u32];
        let r = parallel_map_mut(&mut one, 4, |i, x| {
            *x += 1;
            i
        });
        assert_eq!(one, vec![11]);
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn map_mut_touches_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut items = vec![0usize; 500];
        parallel_map_mut(&mut items, 6, |i, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x = i;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    #[should_panic(expected = "n_threads must be positive")]
    fn map_mut_zero_threads_panics() {
        let mut items = vec![1, 2];
        let _ = parallel_map_mut(&mut items, 0, |_, x| *x);
    }

    #[test]
    fn map_with_matches_sequential_for_any_thread_count() {
        let seq: Vec<usize> = (0..97).map(|i| i * 7 + 2).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let par = parallel_map_with(97, threads, Vec::new, |i, ws: &mut Vec<usize>| {
                ws.clear();
                ws.push(i * 7 + 2);
                ws[0]
            });
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn map_with_builds_at_most_one_workspace_per_worker() {
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 3, 5] {
            inits.store(0, Ordering::Relaxed);
            let v = parallel_map_with(
                50,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |i, _| i,
            );
            assert_eq!(v.len(), 50);
            assert!(
                inits.load(Ordering::Relaxed) <= threads,
                "threads = {threads}: {} workspaces",
                inits.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn map_with_workspace_persists_within_a_chunk() {
        // With one thread the single workspace sees every item in order.
        let trace = parallel_map_with(5, 1, Vec::new, |i, seen: &mut Vec<usize>| {
            seen.push(i);
            seen.clone()
        });
        assert_eq!(trace[4], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn map_with_empty_input() {
        let v: Vec<u32> = parallel_map_with(0, 4, || (), |_, _| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "n_threads must be positive")]
    fn map_with_zero_threads_panics() {
        let _ = parallel_map_with(4, 0, || (), |i, _| i);
    }
}
