//! Numerical substrate for the DISAR reproduction.
//!
//! This crate provides the numerical building blocks that every other crate
//! in the workspace relies on:
//!
//! - [`matrix`]: a small dense linear-algebra kernel (matrix type, Cholesky
//!   factorization, triangular solves, ridge/ordinary least squares) used by
//!   the LSMC regression in `disar-alm` and by the ML models in `disar-ml`;
//! - [`stats`]: descriptive statistics, empirical quantiles, histograms, and
//!   error metrics used throughout the experimental harness;
//! - [`rng`]: deterministic random-number utilities — SplitMix64 stream
//!   derivation so that every Monte Carlo path gets an independent,
//!   reproducible generator, and Gaussian sampling via the Marsaglia polar
//!   method (the workspace deliberately avoids `rand_distr`);
//! - [`parallel`]: deterministic data-parallel maps on crossbeam scoped
//!   threads (results written by index, `n_threads = 1` escape hatch) used
//!   by the ALM nested Monte Carlo, Algorithm 1's configuration sweep, the
//!   predictor retrain loop and the bench campaign driver;
//! - [`poly`]: orthonormal polynomial bases (Laguerre, probabilists' Hermite,
//!   Chebyshev) and multivariate total-degree tensor bases for the
//!   Least-Squares Monte Carlo technique of Bauer, Reuss & Singer (2012)
//!   referenced by the paper;
//! - [`regression`]: convenience wrappers that assemble design matrices and
//!   fit linear models.
//!
//! # Example
//!
//! ```
//! use disar_math::stats::quantile;
//!
//! let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
//! assert_eq!(quantile(&xs, 0.5), 3.0);
//! ```

pub mod matrix;
pub mod parallel;
pub mod poly;
pub mod regression;
pub mod rng;
pub mod stats;

mod error;

pub use error::MathError;
pub use matrix::Matrix;
