//! Linear-model fitting on top of the matrix kernel.
//!
//! [`LinearModel`] assembles a design matrix (with intercept), fits by
//! ordinary or ridge least squares, and predicts. It is the workhorse behind
//! the LSMC conditional-expectation estimator in `disar-alm` and serves as a
//! simple calibration baseline for the ML models in `disar-ml`.

use crate::matrix::{ridge_least_squares, Matrix};
use crate::MathError;
use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ b0 + b · x`.
///
/// # Example
///
/// ```
/// use disar_math::regression::LinearModel;
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0];
/// let model = LinearModel::fit(&xs, &ys, 0.0).unwrap();
/// assert!((model.predict(&[4.0]) - 9.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
}

impl LinearModel {
    /// Fits by (ridge-regularized) least squares; `lambda = 0` is OLS.
    /// The intercept is never regularized.
    ///
    /// # Errors
    ///
    /// - [`MathError::EmptyInput`] if `xs` is empty;
    /// - [`MathError::DimensionMismatch`] if `xs.len() != ys.len()` or the
    ///   feature rows are ragged;
    /// - [`MathError::NotPositiveDefinite`] if the problem is degenerate and
    ///   unregularized.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self, MathError> {
        if xs.is_empty() {
            return Err(MathError::EmptyInput("regression features"));
        }
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                op: "LinearModel::fit",
                lhs: (xs.len(), xs[0].len()),
                rhs: (ys.len(), 1),
            });
        }
        let d = xs[0].len();
        // Center targets and features so the intercept can stay unpenalized.
        let ymean = crate::stats::mean(ys);
        let xmeans: Vec<f64> = (0..d)
            .map(|j| xs.iter().map(|r| r[j]).sum::<f64>() / xs.len() as f64)
            .collect();
        let mut data = Vec::with_capacity(xs.len() * d);
        for row in xs {
            if row.len() != d {
                return Err(MathError::DimensionMismatch {
                    op: "LinearModel::fit",
                    lhs: (xs.len(), d),
                    rhs: (1, row.len()),
                });
            }
            for j in 0..d {
                data.push(row[j] - xmeans[j]);
            }
        }
        let design = Matrix::from_vec(xs.len(), d, data)?;
        let yc: Vec<f64> = ys.iter().map(|y| y - ymean).collect();
        let coefficients = if d == 0 {
            Vec::new()
        } else {
            ridge_least_squares(&design, &yc, lambda)?
        };
        let intercept = ymean
            - coefficients
                .iter()
                .zip(&xmeans)
                .map(|(b, m)| b * m)
                .sum::<f64>();
        Ok(LinearModel {
            intercept,
            coefficients,
        })
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.coefficients.len(),
            "feature dimension mismatch"
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(b, xi)| b * xi)
                .sum::<f64>()
    }

    /// The fitted intercept `b0`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use rand::Rng;

    #[test]
    fn fit_exact_plane() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 - 1.5 * r[0] + 0.25 * r[1]).collect();
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept() - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[0] + 1.5).abs() < 1e-9);
        assert!((m.coefficients()[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fit_noisy_recovers_approximately() {
        let mut rng = stream_rng(3, 0);
        let mut gauss = crate::rng::StandardNormal::new();
        let xs: Vec<Vec<f64>> = (0..5000).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| 4.0 + 3.0 * r[0] + 0.5 * gauss.sample(&mut rng))
            .collect();
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept() - 4.0).abs() < 0.1);
        assert!((m.coefficients()[0] - 3.0).abs() < 0.02);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(LinearModel::fit(&[], &[], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn ridge_handles_duplicate_columns() {
        // Perfectly collinear features break OLS but ridge must survive.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = LinearModel::fit(&xs, &ys, 1e-6).unwrap();
        let pred = m.predict(&[5.0, 5.0]);
        assert!((pred - 5.0).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn predict_wrong_dim_panics() {
        let m = LinearModel::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0], 0.0).unwrap();
        m.predict(&[1.0, 2.0]);
    }
}
