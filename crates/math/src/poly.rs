//! Orthonormal polynomial bases for Least-Squares Monte Carlo.
//!
//! The LSMC technique (Bauer, Reuss & Singer 2012; Longstaff & Schwartz 2001)
//! replaces the inner Monte Carlo valuation by a *truncated series expansion
//! in orthonormal polynomials* of the outer-scenario state variables. This
//! module provides the univariate families used in practice and a
//! multivariate total-degree tensor basis.

use serde::{Deserialize, Serialize};

/// The univariate orthogonal polynomial family to expand in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolyFamily {
    /// Plain monomials `1, x, x², …` (not orthogonal; kept as the naive
    /// baseline the orthonormal families are compared against).
    Monomial,
    /// Laguerre polynomials, orthogonal on `[0, ∞)` w.r.t. `e^{-x}`;
    /// the classical choice of Longstaff & Schwartz.
    Laguerre,
    /// Probabilists' Hermite polynomials, orthogonal w.r.t. the standard
    /// normal density; natural for Gaussian risk drivers.
    Hermite,
    /// Chebyshev polynomials of the first kind on `[-1, 1]`.
    Chebyshev,
}

impl PolyFamily {
    /// Evaluates the degree-`k` member of the family at `x` using the
    /// three-term recurrence.
    ///
    /// # Example
    ///
    /// ```
    /// use disar_math::poly::PolyFamily;
    /// // L_2(x) = (x² - 4x + 2) / 2
    /// let x = 1.5;
    /// let expect = (x * x - 4.0 * x + 2.0) / 2.0;
    /// assert!((PolyFamily::Laguerre.eval(2, x) - expect).abs() < 1e-12);
    /// ```
    pub fn eval(self, k: usize, x: f64) -> f64 {
        match self {
            PolyFamily::Monomial => x.powi(k as i32),
            PolyFamily::Laguerre => {
                // L_0 = 1, L_1 = 1 - x,
                // (n+1) L_{n+1} = (2n+1-x) L_n - n L_{n-1}
                let mut p0 = 1.0;
                if k == 0 {
                    return p0;
                }
                let mut p1 = 1.0 - x;
                for n in 1..k {
                    let p2 = ((2.0 * n as f64 + 1.0 - x) * p1 - n as f64 * p0) / (n as f64 + 1.0);
                    p0 = p1;
                    p1 = p2;
                }
                p1
            }
            PolyFamily::Hermite => {
                // He_0 = 1, He_1 = x, He_{n+1} = x He_n - n He_{n-1}
                let mut p0 = 1.0;
                if k == 0 {
                    return p0;
                }
                let mut p1 = x;
                for n in 1..k {
                    let p2 = x * p1 - n as f64 * p0;
                    p0 = p1;
                    p1 = p2;
                }
                p1
            }
            PolyFamily::Chebyshev => {
                // T_0 = 1, T_1 = x, T_{n+1} = 2x T_n - T_{n-1}
                let mut p0 = 1.0;
                if k == 0 {
                    return p0;
                }
                let mut p1 = x;
                for _ in 1..k {
                    let p2 = 2.0 * x * p1 - p0;
                    p0 = p1;
                    p1 = p2;
                }
                p1
            }
        }
    }

    /// Evaluates degrees `0..=max_degree` at `x` in one pass.
    pub fn eval_all(self, max_degree: usize, x: f64) -> Vec<f64> {
        (0..=max_degree).map(|k| self.eval(k, x)).collect()
    }
}

/// A multivariate polynomial basis with total degree at most `max_degree`
/// over `dim` variables, built as tensor products of a univariate family.
///
/// The basis functions are enumerated in graded order: all multi-indices
/// `(k_1, …, k_dim)` with `k_1 + … + k_dim <= max_degree`.
///
/// # Example
///
/// ```
/// use disar_math::poly::{MultiBasis, PolyFamily};
///
/// let basis = MultiBasis::new(PolyFamily::Monomial, 2, 2);
/// // 1, x, y, x², xy, y² → 6 functions
/// assert_eq!(basis.len(), 6);
/// let row = basis.eval(&[2.0, 3.0]);
/// assert_eq!(row[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBasis {
    family: PolyFamily,
    dim: usize,
    max_degree: usize,
    exponents: Vec<Vec<usize>>,
}

impl MultiBasis {
    /// Builds the graded total-degree basis.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(family: PolyFamily, dim: usize, max_degree: usize) -> Self {
        assert!(dim > 0, "basis dimension must be positive");
        let mut exponents = Vec::new();
        let mut current = vec![0usize; dim];
        enumerate_graded(&mut exponents, &mut current, 0, max_degree);
        // Sort by total degree then lexicographically for a stable order.
        exponents.sort_by(|a, b| {
            let sa: usize = a.iter().sum();
            let sb: usize = b.iter().sum();
            sa.cmp(&sb).then_with(|| a.cmp(b))
        });
        MultiBasis {
            family,
            dim,
            max_degree,
            exponents,
        }
    }

    /// Number of basis functions, `C(dim + max_degree, dim)`.
    pub fn len(&self) -> usize {
        self.exponents.len()
    }

    /// Returns `true` if the basis is empty (never happens for `dim > 0`).
    pub fn is_empty(&self) -> bool {
        self.exponents.is_empty()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum total degree.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Evaluates every basis function at the point `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn eval(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "point dimension mismatch");
        // Precompute univariate values up to max_degree per coordinate.
        let uni: Vec<Vec<f64>> = x
            .iter()
            .map(|&xi| self.family.eval_all(self.max_degree, xi))
            .collect();
        self.exponents
            .iter()
            .map(|ks| ks.iter().zip(&uni).map(|(&k, u)| u[k]).product())
            .collect()
    }

    /// Evaluates the basis on many points, producing the LSMC design matrix
    /// (one row per point).
    pub fn design_matrix(&self, points: &[Vec<f64>]) -> crate::Matrix {
        let mut data = Vec::with_capacity(points.len() * self.len());
        for p in points {
            data.extend(self.eval(p));
        }
        crate::Matrix::from_vec(points.len(), self.len(), data)
            .expect("design matrix dimensions are consistent by construction")
    }
}

fn enumerate_graded(
    out: &mut Vec<Vec<usize>>,
    current: &mut Vec<usize>,
    pos: usize,
    remaining: usize,
) {
    if pos == current.len() {
        out.push(current.clone());
        return;
    }
    for k in 0..=remaining {
        current[pos] = k;
        enumerate_graded(out, current, pos + 1, remaining - k);
    }
    current[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::normal_vec;
    use crate::stats::mean;

    #[test]
    fn laguerre_low_orders() {
        let x = 0.7;
        assert_eq!(PolyFamily::Laguerre.eval(0, x), 1.0);
        assert!((PolyFamily::Laguerre.eval(1, x) - (1.0 - x)).abs() < 1e-12);
        let l2 = (x * x - 4.0 * x + 2.0) / 2.0;
        assert!((PolyFamily::Laguerre.eval(2, x) - l2).abs() < 1e-12);
        let l3 = (-x * x * x + 9.0 * x * x - 18.0 * x + 6.0) / 6.0;
        assert!((PolyFamily::Laguerre.eval(3, x) - l3).abs() < 1e-12);
    }

    #[test]
    fn hermite_low_orders() {
        let x = -1.3;
        assert_eq!(PolyFamily::Hermite.eval(0, x), 1.0);
        assert_eq!(PolyFamily::Hermite.eval(1, x), x);
        assert!((PolyFamily::Hermite.eval(2, x) - (x * x - 1.0)).abs() < 1e-12);
        assert!((PolyFamily::Hermite.eval(3, x) - (x * x * x - 3.0 * x)).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_identity() {
        // T_n(cos θ) = cos(n θ)
        for n in 0..8 {
            for &theta in &[0.1f64, 0.5, 1.2, 2.9] {
                let lhs = PolyFamily::Chebyshev.eval(n, theta.cos());
                let rhs = (n as f64 * theta).cos();
                assert!((lhs - rhs).abs() < 1e-10, "n={n} theta={theta}");
            }
        }
    }

    #[test]
    fn hermite_orthogonality_under_gaussian() {
        // E[He_m(Z) He_n(Z)] = n! δ_{mn} for Z ~ N(0,1).
        let z = normal_vec(77, 0, 400_000);
        let h1h2: Vec<f64> = z
            .iter()
            .map(|&x| PolyFamily::Hermite.eval(1, x) * PolyFamily::Hermite.eval(2, x))
            .collect();
        assert!(mean(&h1h2).abs() < 0.05, "cross moment {}", mean(&h1h2));
        let h2sq: Vec<f64> = z
            .iter()
            .map(|&x| {
                let v = PolyFamily::Hermite.eval(2, x);
                v * v
            })
            .collect();
        assert!((mean(&h2sq) - 2.0).abs() < 0.1, "He_2 norm {}", mean(&h2sq));
    }

    #[test]
    fn multibasis_count_matches_binomial() {
        // C(dim + deg, dim)
        let cases = [(1usize, 3usize, 4usize), (2, 2, 6), (3, 2, 10), (4, 3, 35)];
        for (dim, deg, expect) in cases {
            let b = MultiBasis::new(PolyFamily::Monomial, dim, deg);
            assert_eq!(b.len(), expect, "dim={dim} deg={deg}");
        }
    }

    #[test]
    fn multibasis_first_function_is_constant() {
        let b = MultiBasis::new(PolyFamily::Laguerre, 3, 2);
        let v = b.eval(&[0.3, 1.2, 5.0]);
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn multibasis_monomial_values() {
        let b = MultiBasis::new(PolyFamily::Monomial, 2, 2);
        let v = b.eval(&[2.0, 3.0]);
        // graded order: 1, y, x, y², xy, x²  (lexicographic within degree on
        // exponent vectors (k_x, k_y): (0,0),(0,1),(1,0),(0,2),(1,1),(2,0))
        assert_eq!(v, vec![1.0, 3.0, 2.0, 9.0, 6.0, 4.0]);
    }

    #[test]
    fn design_matrix_shape() {
        let b = MultiBasis::new(PolyFamily::Hermite, 2, 3);
        let pts = vec![vec![0.0, 0.0], vec![1.0, -1.0], vec![0.5, 2.0]];
        let m = b.design_matrix(&pts);
        assert_eq!(m.shape(), (3, b.len()));
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "point dimension mismatch")]
    fn eval_wrong_dim_panics() {
        let b = MultiBasis::new(PolyFamily::Monomial, 2, 1);
        b.eval(&[1.0]);
    }
}
