//! Dense row-major matrices and the factorizations the workspace needs.
//!
//! This is intentionally a *small* kernel, not a general linear-algebra
//! library: the LSMC regression and the correlation machinery only require
//! matrix products, Cholesky factorization, triangular solves and
//! (regularized) least squares. Everything is `f64`.

use crate::MathError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use disar_math::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for an empty row set and
    /// [`MathError::DimensionMismatch`] if rows have uneven lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MathError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MathError::EmptyInput("matrix rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MathError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a column vector (an `n x 1` matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extracts column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when the inner dimensions do
    /// not agree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Gram matrix `self^T * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Cholesky factorization: returns lower-triangular `L` with
    /// `self = L * L^T`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPositiveDefinite`] if the matrix is not
    /// symmetric positive-definite (within a small tolerance), and
    /// [`MathError::DimensionMismatch`] if it is not square.
    pub fn cholesky(&self) -> Result<Matrix, MathError> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch {
                op: "cholesky",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = self[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(MathError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(l)
    }

    /// Solves `L * x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] on shape mismatch and
    /// [`MathError::Singular`] on a zero diagonal element.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                op: "solve_lower",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d == 0.0 {
                return Err(MathError::Singular);
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `U * x = b` for upper-triangular `U` (back substitution).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] on shape mismatch and
    /// [`MathError::Singular`] on a zero diagonal element.
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                op: "solve_upper",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d == 0.0 {
                return Err(MathError::Singular);
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves the symmetric positive-definite system `self * x = b` via
    /// Cholesky factorization.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Matrix::cholesky`] and the triangular
    /// solves.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        let l = self.cholesky()?;
        let y = l.solve_lower(b)?;
        l.transpose().solve_upper(&y)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Scales every entry by `s`, in place, returning `self` for chaining.
    pub fn scale(mut self, s: f64) -> Matrix {
        for x in &mut self.data {
            *x *= s;
        }
        self
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix subtraction shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Ordinary / ridge least squares: minimizes
/// `||X beta - y||^2 + lambda ||beta||^2` via the normal equations solved by
/// Cholesky.
///
/// `lambda = 0` gives OLS; a small positive `lambda` regularizes
/// ill-conditioned design matrices (as happens with high-degree polynomial
/// bases in LSMC).
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if `y.len() != x.rows()`, and
/// [`MathError::NotPositiveDefinite`] if the (regularized) Gram matrix is not
/// positive definite.
///
/// # Example
///
/// ```
/// use disar_math::matrix::{ridge_least_squares, Matrix};
///
/// // y = 2x + 1 exactly.
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let beta = ridge_least_squares(&x, &[1.0, 3.0, 5.0], 0.0).unwrap();
/// assert!((beta[0] - 1.0).abs() < 1e-10);
/// assert!((beta[1] - 2.0).abs() < 1e-10);
/// ```
pub fn ridge_least_squares(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, MathError> {
    if y.len() != x.rows() {
        return Err(MathError::DimensionMismatch {
            op: "ridge_least_squares",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    if lambda < 0.0 {
        return Err(MathError::InvalidArgument("lambda must be >= 0"));
    }
    let mut gram = x.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    // X^T y
    let xty: Vec<f64> = (0..x.cols())
        .map(|j| (0..x.rows()).map(|i| x[(i, j)] * y[i]).sum())
        .collect();
    gram.solve_spd(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert!(close(c[(0, 0)], 58.0));
        assert!(close(c[(0, 1)], 64.0));
        assert!(close(c[(1, 0)], 139.0));
        assert!(close(c[(1, 1)], 154.0));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap();
        let l = a.cholesky().unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(close(recon[(i, j)], a[(i, j)]), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(MathError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn spd_solve_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = vec![1.5, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b).unwrap();
        assert!(close(x[0], x_true[0]));
        assert!(close(x[1], x_true[1]));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = x.gram();
        let g2 = x.transpose().matmul(&x).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn ols_recovers_exact_linear_model() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 2.0],
            &[1.0, 2.0, 1.0],
            &[1.0, 3.0, 5.0],
        ])
        .unwrap();
        // y = 0.5 + 2a - 3b
        let y: Vec<f64> = (0..4)
            .map(|i| 0.5 + 2.0 * x[(i, 1)] - 3.0 * x[(i, 2)])
            .collect();
        let beta = ridge_least_squares(&x, &y, 0.0).unwrap();
        assert!(close(beta[0], 0.5));
        assert!(close(beta[1], 2.0));
        assert!(close(beta[2], -3.0));
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let y = vec![2.0, 4.0, 6.0];
        let b0 = ridge_least_squares(&x, &y, 0.0).unwrap();
        let b1 = ridge_least_squares(&x, &y, 10.0).unwrap();
        assert!(b1[1].abs() < b0[1].abs());
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let x = Matrix::identity(2);
        assert!(matches!(
            ridge_least_squares(&x, &[1.0, 1.0], -1.0),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[3.0];
        assert!(Matrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let c = &(&a + &b) - &b;
        assert_eq!(c, a);
    }
}
