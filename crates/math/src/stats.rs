//! Descriptive statistics, quantiles, histograms and prediction-error
//! metrics.
//!
//! The experimental harness uses these to compute the paper's headline
//! quantities: the signed bias `δ̄` of Table I ([`bias`]), the error
//! histogram of Figure 3 ([`Histogram`]), and the 99.5 % quantile at the
//! heart of the Solvency Capital Requirement ([`quantile`]).

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `0.0` for an empty slice (documented sentinel:
/// the empirical mean of no observations is conventionally zero in the
/// accumulator-style usage throughout this workspace).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n - 1`).
///
/// Returns `0.0` when fewer than two observations are supplied.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean: `std_dev / sqrt(n)`.
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Sample covariance between two equally long series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance requires equal lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient; `0.0` when either series is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Empirical quantile, linear interpolation ("type 7", the R default).
///
/// `p` is clamped to `[0, 1]`. The input need not be sorted.
///
/// # Panics
///
/// Panics on an empty slice.
///
/// # Example
///
/// ```
/// use disar_math::stats::quantile;
/// let xs = vec![3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, p)
}

/// [`quantile`] for data that is already sorted ascending (no copy).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let h = (sorted.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Signed mean prediction error `δ̄ = mean(predicted - real)` — Eq. (6) of
/// the paper. Negative values mean the model *underestimates* execution time
/// (dangerous: deadline violations), positive values mean it overestimates
/// (safe but costly).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bias(predicted: &[f64], real: &[f64]) -> f64 {
    assert_eq!(predicted.len(), real.len(), "bias requires equal lengths");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(real)
        .map(|(p, r)| p - r)
        .sum::<f64>()
        / predicted.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(predicted: &[f64], real: &[f64]) -> f64 {
    assert_eq!(predicted.len(), real.len(), "mae requires equal lengths");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(real)
        .map(|(p, r)| (p - r).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(predicted: &[f64], real: &[f64]) -> f64 {
    assert_eq!(predicted.len(), real.len(), "rmse requires equal lengths");
    if predicted.is_empty() {
        return 0.0;
    }
    (predicted
        .iter()
        .zip(real)
        .map(|(p, r)| (p - r) * (p - r))
        .sum::<f64>()
        / predicted.len() as f64)
        .sqrt()
}

/// Coefficient of determination R². Returns `0.0` when the target is
/// constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r_squared(predicted: &[f64], real: &[f64]) -> f64 {
    assert_eq!(predicted.len(), real.len(), "r_squared requires equal lengths");
    let my = mean(real);
    let ss_tot: f64 = real.iter().map(|y| (y - my) * (y - my)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(real)
        .map(|(p, y)| (y - p) * (y - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Fraction of predictions whose absolute error is within `tol` — the
/// quantity behind the paper's "around 80 % of the predictions have an
/// absolute error smaller than 200 seconds" claim (Figure 3).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fraction_within(predicted: &[f64], real: &[f64], tol: f64) -> f64 {
    assert_eq!(predicted.len(), real.len(), "fraction_within equal lengths");
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(real)
        .filter(|(p, r)| (*p - *r).abs() <= tol)
        .count();
    hits as f64 / predicted.len() as f64
}

/// A fixed-width histogram over a closed range, used to regenerate Figure 3.
///
/// Values outside the range are clamped into the first/last bin so no
/// observation is silently dropped.
///
/// # Example
///
/// ```
/// use disar_math::stats::Histogram;
///
/// let mut h = Histogram::new(-10.0, 10.0, 4).unwrap();
/// h.extend([-9.0, -1.0, 1.0, 9.0, 9.5]);
/// assert_eq!(h.counts(), &[1, 1, 1, 2]);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, crate::MathError> {
        if bins == 0 {
            return Err(crate::MathError::InvalidArgument("bins must be > 0"));
        }
        if !(hi > lo) {
            return Err(crate::MathError::InvalidArgument("hi must exceed lo"));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Adds one observation, clamping out-of-range values into the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        let idx = ((x - self.lo) / w).floor();
        let idx = if idx < 0.0 {
            0
        } else if idx as usize >= bins {
            bins - 1
        } else {
            idx as usize
        };
        self.counts[idx] += 1;
    }

    /// Bin counts, in order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_lo(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * i as f64
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Per-bin relative frequency (percentage in `[0, 100]`).
    pub fn percentages(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / t as f64)
            .collect()
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Online mean/variance accumulator (Welford), handy inside hot Monte Carlo
/// loops where storing every sample would be wasteful.
///
/// # Example
///
/// ```
/// use disar_math::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(std_error(&[]), 0.0);
        assert_eq!(bias(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn quantile_median_even_odd() {
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.5), 2.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.5);
    }

    #[test]
    fn quantile_extremes() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        // clamping
        assert_eq!(quantile(&xs, -0.5), 1.0);
        assert_eq!(quantile(&xs, 1.5), 5.0);
    }

    #[test]
    fn quantile_995_tail() {
        // 1000 points 1..=1000; 99.5% quantile ≈ 995.005 by type-7.
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let q = quantile(&xs, 0.995);
        assert!((q - 995.005).abs() < 1e-9, "got {q}");
    }

    #[test]
    fn bias_sign_convention() {
        // Predictions above reality → positive δ̄ (overestimation).
        assert!(bias(&[10.0, 12.0], &[8.0, 9.0]) > 0.0);
        assert!(bias(&[5.0, 6.0], &[8.0, 9.0]) < 0.0);
    }

    #[test]
    fn metrics_consistency() {
        let p = [1.0, 2.0, 3.0];
        let r = [1.5, 2.5, 3.5];
        assert!((bias(&p, &r) + 0.5).abs() < 1e-12);
        assert!((mae(&p, &r) - 0.5).abs() < 1e-12);
        assert!((rmse(&p, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let r = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&r, &r) - 1.0).abs() < 1e-12);
        let m = mean(&r);
        let pm = [m, m, m, m];
        assert!(r_squared(&pm, &r).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_works() {
        let p = [0.0, 100.0, 250.0, 500.0];
        let r = [0.0, 0.0, 0.0, 0.0];
        assert_eq!(fraction_within(&p, &r, 200.0), 0.5);
    }

    #[test]
    fn correlation_linear_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let yneg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((correlation(&xs, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 2).unwrap();
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_edges_and_width() {
        let h = Histogram::new(-6000.0, 4000.0, 50).unwrap();
        assert_eq!(h.bin_width(), 200.0);
        assert_eq!(h.bin_lo(0), -6000.0);
        assert_eq!(h.bin_lo(30), 0.0);
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([0.1, 0.3, 0.6, 0.9, 0.95]);
        let s: f64 = h.percentages().iter().sum();
        assert!((s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_matches_whole() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert!((a.mean() - mean(&xs)).abs() < 1e-10);
        assert!((a.variance() - variance(&xs)).abs() < 1e-10);
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.add(2.0);
        let b = Accumulator::new();
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.mean(), 2.0);
        let mut d = Accumulator::new();
        d.merge(&a);
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 2.0);
    }
}
