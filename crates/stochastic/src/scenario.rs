//! Time grids, scenario sets and the scenario generator.
//!
//! A *scenario* is a joint path of all risk drivers on a fine time grid.
//! The nested Monte Carlo procedure of the paper needs two kinds:
//!
//! 1. `nP` **outer** paths under the real-world measure `P` from `t = 0` to
//!    `t = 1` (the Solvency II unwinding horizon);
//! 2. for each outer endpoint, `nQ` **inner** paths under the risk-neutral
//!    measure `Q` from `t = 1` to contract maturity, *re-anchored* at the
//!    outer endpoint's state (the `F_1` filtration conditioning).
//!
//! The re-anchoring is expressed through the `initial_overrides` parameter
//! of [`ScenarioGenerator::generate`].
//!
//! # Allocation discipline
//!
//! The nested procedure regenerates an inner scenario set *per outer path*,
//! which made the allocating [`ScenarioGenerator::generate`] the hottest
//! allocation site in the whole engine. The `_into` variants
//! ([`ScenarioGenerator::generate_into`] /
//! [`ScenarioGenerator::generate_antithetic_into`]) fill a caller-owned
//! [`ScenarioBuffer`] instead: after the first fill of a given shape, a
//! reused buffer performs **zero** heap allocations. The allocating entry
//! points are thin allocate-then-fill wrappers over the same core, so their
//! output is bit-identical to what they produced before the buffers existed.
//! [`ScenarioView`] is the read-only window shared by both backings
//! ([`ScenarioSet::view`] / [`ScenarioBuffer::view`]), so valuation kernels
//! are written once against the view.
//!
//! # Block (lane-wise) generation
//!
//! The fill core steps **blocks of `lane` paths in lockstep**: per grid
//! step, each lane draws its own shocks from its own per-path RNG stream,
//! then every driver advances its whole lane of states through one
//! [`crate::drivers::RiskDriver::step_block`] call with per-step
//! coefficients ([`crate::drivers::StepCoeffs`]) hoisted once per fill.
//! This is **bit-identical for every lane width**, by construction: paths
//! share no floating-point state, each path's RNG stream and per-step
//! operation sequence are exactly those of the scalar loop, and only the
//! interleaving *across* independent paths changes. `lane = 1` is the
//! scalar escape hatch; [`DEFAULT_LANE`] is the vector-friendly default.

use crate::correlation::CorrelationMatrix;
use crate::drivers::{RiskDriver, StepCoeffs};
use crate::StochasticError;
use disar_math::rng::{stream_rng, StandardNormal};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Default path-block (lane) width of the block-stepping fill core — wide
/// enough to keep [`crate::drivers::STEP_CHUNK`]-sized chunks full, small
/// enough that the lane-major scratch stays in cache. `lane = 1` recovers
/// the scalar loop bit-for-bit.
pub const DEFAULT_LANE: usize = 8;

/// The probability measure scenarios are generated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Real-world ("natural") measure `P` — outer simulations.
    RealWorld,
    /// Risk-neutral measure `Q` — inner, market-consistent simulations.
    RiskNeutral,
}

/// An evenly spaced time grid from `0` to `horizon` years.
///
/// # Example
///
/// ```
/// use disar_stochastic::scenario::TimeGrid;
///
/// let g = TimeGrid::new(2.0, 12).unwrap();
/// assert_eq!(g.n_steps(), 24);
/// assert!((g.dt() - 1.0 / 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    horizon: f64,
    steps_per_year: usize,
}

impl TimeGrid {
    /// Creates a grid covering `horizon` years with `steps_per_year`
    /// sub-steps ("fine-grained time grid" in the paper's words).
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `horizon <= 0` or
    /// `steps_per_year == 0`.
    pub fn new(horizon: f64, steps_per_year: usize) -> Result<Self, StochasticError> {
        if horizon <= 0.0 {
            return Err(StochasticError::InvalidParameter("horizon must be positive"));
        }
        if steps_per_year == 0 {
            return Err(StochasticError::InvalidParameter(
                "steps_per_year must be > 0",
            ));
        }
        Ok(TimeGrid {
            horizon,
            steps_per_year,
        })
    }

    /// Total number of steps (at least 1; fractional final years round up).
    pub fn n_steps(&self) -> usize {
        ((self.horizon * self.steps_per_year as f64).ceil() as usize).max(1)
    }

    /// Step width in years.
    pub fn dt(&self) -> f64 {
        1.0 / self.steps_per_year as f64
    }

    /// Horizon in years.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Steps per year.
    pub fn steps_per_year(&self) -> usize {
        self.steps_per_year
    }

    /// The grid index closest to calendar time `t` (clamped to the grid).
    pub fn step_at(&self, t: f64) -> usize {
        ((t * self.steps_per_year as f64).round() as usize).min(self.n_steps())
    }
}

/// A set of simulated joint paths: `n_paths × n_drivers × (n_steps + 1)`
/// values (index 0 is the initial state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    grid: TimeGrid,
    measure: Measure,
    driver_names: Vec<String>,
    short_rate_index: Option<usize>,
    n_paths: usize,
    /// Flattened `[path][driver][step]`.
    data: Vec<f64>,
}

impl ScenarioSet {
    /// Number of simulated paths.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// Number of risk drivers.
    pub fn n_drivers(&self) -> usize {
        self.driver_names.len()
    }

    /// The time grid the set was generated on.
    pub fn grid(&self) -> TimeGrid {
        self.grid
    }

    /// The measure the set was generated under.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// Driver names, in driver-index order.
    pub fn driver_names(&self) -> &[String] {
        &self.driver_names
    }

    /// Index of the short-rate driver, if one was configured.
    pub fn short_rate_index(&self) -> Option<usize> {
        self.short_rate_index
    }

    /// A borrowed read-only window over this set — the common currency of
    /// the allocation-free valuation kernels (a [`ScenarioBuffer`] yields
    /// the same view type).
    pub fn view(&self) -> ScenarioView<'_> {
        ScenarioView {
            grid: self.grid,
            measure: self.measure,
            short_rate_index: self.short_rate_index,
            n_paths: self.n_paths,
            n_drivers: self.n_drivers(),
            data: &self.data,
        }
    }

    fn offset(&self, path: usize, driver: usize) -> usize {
        let stride = self.grid.n_steps() + 1;
        (path * self.n_drivers() + driver) * stride
    }

    /// The full path of `driver` on `path` (length `n_steps + 1`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn path(&self, path: usize, driver: usize) -> &[f64] {
        assert!(path < self.n_paths, "path index out of range");
        assert!(driver < self.n_drivers(), "driver index out of range");
        let o = self.offset(path, driver);
        &self.data[o..o + self.grid.n_steps() + 1]
    }

    /// The value of `driver` on `path` at grid `step`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn value(&self, path: usize, driver: usize, step: usize) -> f64 {
        assert!(step <= self.grid.n_steps(), "step index out of range");
        self.path(path, driver)[step]
    }

    /// Money-market discount factor from step 0 to `step` along `path`,
    /// `exp(-∫ r dt)` by trapezoidal integration of the short-rate path.
    ///
    /// Returns `1.0` when no short-rate driver is present (deterministic
    /// zero-rate fallback).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn discount_factor(&self, path: usize, step: usize) -> f64 {
        self.view().discount_factor(path, step)
    }
}

/// A borrowed, read-only window over generated scenario data.
///
/// Both backing stores produce it — [`ScenarioSet::view`] for the owning
/// set and [`ScenarioBuffer::view`] for the reusable workspace — so the
/// valuation kernels in `disar-alm` are written once against this type and
/// stay allocation-free regardless of where the paths live.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioView<'a> {
    grid: TimeGrid,
    measure: Measure,
    short_rate_index: Option<usize>,
    n_paths: usize,
    n_drivers: usize,
    /// Flattened `[path][driver][step]`, same layout as [`ScenarioSet`].
    data: &'a [f64],
}

impl ScenarioView<'_> {
    /// Number of simulated paths.
    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// Number of risk drivers.
    pub fn n_drivers(&self) -> usize {
        self.n_drivers
    }

    /// The time grid the data was generated on.
    pub fn grid(&self) -> TimeGrid {
        self.grid
    }

    /// The measure the data was generated under.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// Index of the short-rate driver, if one was configured.
    pub fn short_rate_index(&self) -> Option<usize> {
        self.short_rate_index
    }

    fn offset(&self, path: usize, driver: usize) -> usize {
        let stride = self.grid.n_steps() + 1;
        (path * self.n_drivers + driver) * stride
    }

    /// The full path of `driver` on `path` (length `n_steps + 1`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn path(&self, path: usize, driver: usize) -> &[f64] {
        assert!(path < self.n_paths, "path index out of range");
        assert!(driver < self.n_drivers, "driver index out of range");
        let o = self.offset(path, driver);
        &self.data[o..o + self.grid.n_steps() + 1]
    }

    /// The value of `driver` on `path` at grid `step`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn value(&self, path: usize, driver: usize, step: usize) -> f64 {
        assert!(step <= self.grid.n_steps(), "step index out of range");
        self.path(path, driver)[step]
    }

    /// Writes all drivers' values on `path` at grid `step` into `out`
    /// (cleared first; used to re-anchor inner simulations at an outer
    /// endpoint without allocating).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn state_into(&self, path: usize, step: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_drivers).map(|d| self.value(path, d, step)));
    }

    /// Money-market discount factor from step 0 to `step` along `path`,
    /// `exp(-∫ r dt)` by trapezoidal integration of the short-rate path.
    ///
    /// Returns `1.0` when no short-rate driver is present (deterministic
    /// zero-rate fallback).
    ///
    /// Each call re-sums the integral from step 0, i.e. costs `O(step)` —
    /// calling it for every step of a path is `O(n_steps²)`. Callers that
    /// need factors at many steps of the same path should use
    /// [`ScenarioView::step_discount_factors_into`] (all steps, one linear
    /// pass) or [`ScenarioView::year_discount_factors_into`] (year
    /// boundaries), both bit-identical to the per-call results.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn discount_factor(&self, path: usize, step: usize) -> f64 {
        let Some(sr) = self.short_rate_index else {
            return 1.0;
        };
        let rates = self.path(path, sr);
        assert!(step < rates.len(), "step index out of range");
        let dt = self.grid.dt();
        let mut integral = 0.0;
        for s in 0..step {
            integral += 0.5 * (rates[s] + rates[s + 1]) * dt;
        }
        (-integral).exp()
    }

    /// Fills `out` (cleared first) with the discount factors at **every**
    /// grid step of `path`: entry `s` is bit-identical to
    /// `discount_factor(path, s)`, for `s` in `0..=n_steps`.
    ///
    /// One running trapezoidal integral serves all steps. The per-step
    /// additions happen in exactly the order of each fresh
    /// [`ScenarioView::discount_factor`] loop, so every partial sum — and
    /// hence every emitted factor — matches the per-call result to the bit,
    /// at `O(n_steps)` total work instead of the `O(n_steps²)` of calling
    /// `discount_factor` once per step.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn step_discount_factors_into(&self, path: usize, out: &mut Vec<f64>) {
        out.clear();
        let n_steps = self.grid.n_steps();
        let Some(sr) = self.short_rate_index else {
            assert!(path < self.n_paths, "path index out of range");
            out.resize(n_steps + 1, 1.0);
            return;
        };
        let rates = self.path(path, sr);
        let dt = self.grid.dt();
        let mut integral = 0.0;
        out.push((-integral).exp());
        for s in 0..n_steps {
            integral += 0.5 * (rates[s] + rates[s + 1]) * dt;
            out.push((-integral).exp());
        }
    }

    /// Fills `out` (cleared first) with the discount factors at the
    /// whole-year boundaries `1..=n_years`: entry `k - 1` is bit-identical
    /// to `discount_factor(path, k * steps_per_year)`.
    ///
    /// One running trapezoidal integral serves all years; because the
    /// per-step additions happen in exactly the same order as each fresh
    /// `discount_factor` loop, every partial sum — and hence every emitted
    /// factor — matches the per-call result to the bit, at `O(n_steps)`
    /// total instead of `O(n_years · n_steps)`.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range or the grid is shorter than
    /// `n_years` years.
    pub fn year_discount_factors_into(&self, path: usize, n_years: usize, out: &mut Vec<f64>) {
        out.clear();
        let Some(sr) = self.short_rate_index else {
            out.resize(n_years, 1.0);
            return;
        };
        let spy = self.grid.steps_per_year();
        let rates = self.path(path, sr);
        assert!(n_years * spy < rates.len(), "year index out of range");
        let dt = self.grid.dt();
        let mut integral = 0.0;
        for k in 1..=n_years {
            for s in (k - 1) * spy..k * spy {
                integral += 0.5 * (rates[s] + rates[s + 1]) * dt;
            }
            out.push((-integral).exp());
        }
    }
}

/// Shape and provenance of the paths currently held by a
/// [`ScenarioBuffer`], stamped by the last `generate_into` fill.
#[derive(Debug, Clone, Copy)]
struct BufferMeta {
    grid: TimeGrid,
    measure: Measure,
    short_rate_index: Option<usize>,
    n_paths: usize,
    n_drivers: usize,
}

/// A reusable, caller-owned workspace for scenario generation.
///
/// [`ScenarioGenerator::generate_into`] and
/// [`ScenarioGenerator::generate_antithetic_into`] fill it in place; after
/// the first fill of a given shape, subsequent fills of the same (or a
/// smaller) shape perform **zero** heap allocations. The buffer also owns
/// the generator's per-path scratch (raw draws, correlated shocks, state
/// vectors), so the whole generation loop runs without touching the
/// allocator.
///
/// Read access goes through [`ScenarioBuffer::view`], which yields the same
/// [`ScenarioView`] as a [`ScenarioSet`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuffer {
    meta: Option<BufferMeta>,
    /// Flattened `[path][driver][step]`, same layout as [`ScenarioSet`].
    data: Vec<f64>,
    initials: Vec<f64>,
    raw: Vec<f64>,
    shocks: Vec<f64>,
    /// Per-step driver coefficients, hoisted once per fill.
    coeffs: Vec<StepCoeffs>,
    /// One `(rng, gaussian cache)` pair per lane of the current block, so
    /// every path keeps exactly the draw sequence of the scalar loop.
    lane_rngs: Vec<(StdRng, StandardNormal)>,
    /// Lane-major state panel, `[driver][lane]`.
    lane_states: Vec<f64>,
    /// Antithetic partner states, `[driver][lane]`.
    lane_states_neg: Vec<f64>,
    /// Lane-major shock panel, `[driver][lane]`.
    lane_shocks: Vec<f64>,
    /// Negated shocks for antithetic partners, `[driver][lane]`.
    lane_shocks_neg: Vec<f64>,
}

impl ScenarioBuffer {
    /// An empty buffer; the first fill sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffer for `n_paths` total paths from `generator` at
    /// lane width 1, so even the *first* `generate_into` of that shape
    /// allocates nothing. See [`ScenarioBuffer::reserve_for_lanes`] for the
    /// block-stepping fills.
    pub fn reserve_for(&mut self, generator: &ScenarioGenerator, n_paths: usize) {
        self.reserve_for_lanes(generator, n_paths, 1);
    }

    /// Pre-sizes the buffer for `n_paths` total paths from `generator`
    /// filled at block width `lane`, covering the lane-major scratch panels
    /// as well, so even the *first* `generate_into_lanes` of that shape
    /// allocates nothing.
    pub fn reserve_for_lanes(
        &mut self,
        generator: &ScenarioGenerator,
        n_paths: usize,
        lane: usize,
    ) {
        let n_drivers = generator.n_drivers();
        let stride = generator.grid().n_steps() + 1;
        let need = n_paths * n_drivers * stride;
        self.data.reserve(need.saturating_sub(self.data.len()));
        for v in [&mut self.initials, &mut self.raw, &mut self.shocks] {
            v.reserve(n_drivers.saturating_sub(v.len()));
        }
        self.coeffs.reserve(n_drivers.saturating_sub(self.coeffs.len()));
        self.lane_rngs.reserve(lane.saturating_sub(self.lane_rngs.len()));
        let panel = n_drivers * lane.max(1);
        for v in [
            &mut self.lane_states,
            &mut self.lane_states_neg,
            &mut self.lane_shocks,
            &mut self.lane_shocks_neg,
        ] {
            v.reserve(panel.saturating_sub(v.len()));
        }
    }

    /// A read-only view over the paths written by the last fill.
    ///
    /// # Panics
    ///
    /// Panics if the buffer has never been filled.
    pub fn view(&self) -> ScenarioView<'_> {
        let meta = self
            .meta
            .expect("ScenarioBuffer::view called before any generate_into fill");
        ScenarioView {
            grid: meta.grid,
            measure: meta.measure,
            short_rate_index: meta.short_rate_index,
            n_paths: meta.n_paths,
            n_drivers: meta.n_drivers,
            data: &self.data,
        }
    }
}

/// Builder-constructed generator of correlated joint scenarios.
pub struct ScenarioGenerator {
    drivers: Vec<Box<dyn RiskDriver>>,
    correlation: CorrelationMatrix,
    grid: TimeGrid,
}

impl ScenarioGenerator {
    /// Starts building a generator.
    pub fn builder() -> ScenarioGeneratorBuilder {
        ScenarioGeneratorBuilder::default()
    }

    /// Number of drivers.
    pub fn n_drivers(&self) -> usize {
        self.drivers.len()
    }

    /// The configured time grid.
    pub fn grid(&self) -> TimeGrid {
        self.grid
    }

    /// Shared validation + setup core of the plain and antithetic
    /// generators: checks the requested count (`count_what` names it in the
    /// error) and the override length, sizes the buffer for `n_paths` total
    /// paths, resolves the `t = 0` state into `buf.initials`, and stamps
    /// the buffer's metadata.
    fn prepare_buffer(
        &self,
        measure: Measure,
        count: usize,
        count_what: &str,
        n_paths: usize,
        initial_overrides: Option<&[f64]>,
        buf: &mut ScenarioBuffer,
    ) -> Result<(), StochasticError> {
        if count == 0 {
            return Err(StochasticError::InvalidConfiguration(format!(
                "{count_what} must be > 0"
            )));
        }
        if let Some(init) = initial_overrides {
            if init.len() != self.drivers.len() {
                return Err(StochasticError::InvalidConfiguration(format!(
                    "{} initial overrides for {} drivers",
                    init.len(),
                    self.drivers.len()
                )));
            }
        }
        let n_drivers = self.drivers.len();
        let stride = self.grid.n_steps() + 1;
        // `resize` without `clear`: on a same-shape refill this neither
        // allocates nor redundantly zero-fills — every slot is overwritten
        // by the fill loop (initial state + all steps of all drivers).
        buf.data.resize(n_paths * n_drivers * stride, 0.0);
        buf.initials.clear();
        match initial_overrides {
            Some(init) => buf.initials.extend_from_slice(init),
            None => buf
                .initials
                .extend(self.drivers.iter().map(|d| d.initial_value())),
        }
        buf.raw.resize(n_drivers, 0.0);
        buf.shocks.resize(n_drivers, 0.0);
        buf.meta = Some(BufferMeta {
            grid: self.grid,
            measure,
            short_rate_index: self.drivers.iter().position(|d| d.is_short_rate()),
            n_paths,
            n_drivers,
        });
        Ok(())
    }

    /// Generates `n_paths` joint paths under `measure` with deterministic
    /// per-path RNG streams derived from `seed`.
    ///
    /// `initial_overrides` replaces the drivers' own `t = 0` values — this is
    /// how inner (risk-neutral) simulations are conditioned on an outer
    /// endpoint state.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidConfiguration`] if `n_paths == 0` or
    /// the override vector has the wrong length.
    pub fn generate(
        &self,
        measure: Measure,
        n_paths: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
    ) -> Result<ScenarioSet, StochasticError> {
        let mut buf = ScenarioBuffer::new();
        self.generate_into(measure, n_paths, seed, initial_overrides, &mut buf)?;
        Ok(self.set_from_buffer(buf))
    }

    /// Fills `buf` with `n_paths` joint paths under `measure` —
    /// bit-identical to [`ScenarioGenerator::generate`] (same RNG stream
    /// derivation `stream_rng(seed, path)`, same per-path operation
    /// sequence), but reusing the buffer's storage: a warm same-shape refill
    /// performs zero heap allocations. Equivalent to
    /// [`ScenarioGenerator::generate_into_lanes`] at `lane = 1`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioGenerator::generate`].
    pub fn generate_into(
        &self,
        measure: Measure,
        n_paths: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
        buf: &mut ScenarioBuffer,
    ) -> Result<(), StochasticError> {
        self.generate_into_lanes(measure, n_paths, seed, initial_overrides, buf, 1)
    }

    /// Fills `buf` with `n_paths` joint paths, stepping blocks of `lane`
    /// paths in lockstep through [`RiskDriver::step_block`] with hoisted
    /// [`StepCoeffs`].
    ///
    /// **Bit-identical for every `lane`** (and to
    /// [`ScenarioGenerator::generate`]): path `p` always consumes the RNG
    /// stream `stream_rng(seed, p)` in the same order (all drivers' draws
    /// for step 1, then step 2, …) and undergoes the same per-step
    /// floating-point operation sequence; only the interleaving across
    /// independent paths changes. `lane = 1` is the scalar escape hatch.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioGenerator::generate`], plus
    /// [`StochasticError::InvalidConfiguration`] when `lane == 0`.
    pub fn generate_into_lanes(
        &self,
        measure: Measure,
        n_paths: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
        buf: &mut ScenarioBuffer,
        lane: usize,
    ) -> Result<(), StochasticError> {
        if lane == 0 {
            return Err(StochasticError::InvalidConfiguration(
                "lane must be > 0".into(),
            ));
        }
        self.prepare_buffer(measure, n_paths, "n_paths", n_paths, initial_overrides, buf)?;
        self.fill_blocks(measure, seed, lane, n_paths, false, buf);
        Ok(())
    }

    /// Generates `2 · n_pairs` paths using **antithetic variates**: paths
    /// `2k` and `2k + 1` share the same Gaussian draws with opposite
    /// signs. The pair-averaged estimator of any monotone payoff has lower
    /// variance than `2 · n_pairs` independent paths at the same cost —
    /// the standard variance-reduction technique for the Monte Carlo loads
    /// this system schedules.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioGenerator::generate`].
    pub fn generate_antithetic(
        &self,
        measure: Measure,
        n_pairs: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
    ) -> Result<ScenarioSet, StochasticError> {
        let mut buf = ScenarioBuffer::new();
        self.generate_antithetic_into(measure, n_pairs, seed, initial_overrides, &mut buf)?;
        Ok(self.set_from_buffer(buf))
    }

    /// Fills `buf` with `2 · n_pairs` antithetic paths — bit-identical to
    /// [`ScenarioGenerator::generate_antithetic`] (same per-pair RNG stream
    /// `stream_rng(seed, pair)`, same per-pair operation sequence), but
    /// reusing the buffer's storage like
    /// [`ScenarioGenerator::generate_into`]. Equivalent to
    /// [`ScenarioGenerator::generate_antithetic_into_lanes`] at `lane = 1`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioGenerator::generate`].
    pub fn generate_antithetic_into(
        &self,
        measure: Measure,
        n_pairs: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
        buf: &mut ScenarioBuffer,
    ) -> Result<(), StochasticError> {
        self.generate_antithetic_into_lanes(measure, n_pairs, seed, initial_overrides, buf, 1)
    }

    /// Fills `buf` with `2 · n_pairs` antithetic paths, stepping blocks of
    /// `lane` *pairs* in lockstep — the antithetic sibling of
    /// [`ScenarioGenerator::generate_into_lanes`], with the same
    /// bit-identity guarantee for every lane width (the partner's shock is
    /// the exact negation, as in the scalar loop).
    ///
    /// # Errors
    ///
    /// Same contract as [`ScenarioGenerator::generate`], plus
    /// [`StochasticError::InvalidConfiguration`] when `lane == 0`.
    pub fn generate_antithetic_into_lanes(
        &self,
        measure: Measure,
        n_pairs: usize,
        seed: u64,
        initial_overrides: Option<&[f64]>,
        buf: &mut ScenarioBuffer,
        lane: usize,
    ) -> Result<(), StochasticError> {
        if lane == 0 {
            return Err(StochasticError::InvalidConfiguration(
                "lane must be > 0".into(),
            ));
        }
        self.prepare_buffer(
            measure,
            n_pairs,
            "n_pairs",
            2 * n_pairs,
            initial_overrides,
            buf,
        )?;
        self.fill_blocks(measure, seed, lane, n_pairs, true, buf);
        Ok(())
    }

    /// The shared block-stepping fill core.
    ///
    /// A *unit* is one path (plain) or one antithetic pair. Per block of up
    /// to `lane` units: every lane re-derives its unit's RNG stream
    /// (`stream_rng(seed, unit)`), then per grid step each lane draws its
    /// drivers' shocks **in path order** (preserving each unit's exact draw
    /// sequence), the shocks are transposed into the lane-major panel, and
    /// each driver advances its whole lane of states through one
    /// [`RiskDriver::step_block`] call using the coefficients hoisted at
    /// the top of the fill. Because no floating-point value ever crosses
    /// between lanes, the per-unit results are bit-identical to the scalar
    /// (`lane = 1`) loop for any lane width.
    fn fill_blocks(
        &self,
        measure: Measure,
        seed: u64,
        lane: usize,
        n_units: usize,
        antithetic: bool,
        buf: &mut ScenarioBuffer,
    ) {
        let n_drivers = self.drivers.len();
        let n_steps = self.grid.n_steps();
        let dt = self.grid.dt();
        let stride = n_steps + 1;
        buf.coeffs.clear();
        buf.coeffs
            .extend(self.drivers.iter().map(|d| d.step_coeffs(dt, measure)));
        buf.lane_states.resize(n_drivers * lane, 0.0);
        buf.lane_shocks.resize(n_drivers * lane, 0.0);
        if antithetic {
            buf.lane_states_neg.resize(n_drivers * lane, 0.0);
            buf.lane_shocks_neg.resize(n_drivers * lane, 0.0);
        }
        let ScenarioBuffer {
            data,
            initials,
            raw,
            shocks,
            coeffs,
            lane_rngs,
            lane_states,
            lane_states_neg,
            lane_shocks,
            lane_shocks_neg,
            ..
        } = buf;
        let mut block = 0usize;
        while block < n_units {
            // `l < lane` only on the final partial block.
            let l = lane.min(n_units - block);
            lane_rngs.clear();
            lane_rngs.extend(
                (0..l).map(|i| (stream_rng(seed, (block + i) as u64), StandardNormal::new())),
            );
            for d in 0..n_drivers {
                let init = initials[d];
                lane_states[d * l..(d + 1) * l].fill(init);
                for i in 0..l {
                    let base = if antithetic { 2 * (block + i) } else { block + i };
                    data[(base * n_drivers + d) * stride] = init;
                    if antithetic {
                        data[((base + 1) * n_drivers + d) * stride] = init;
                    }
                }
            }
            if antithetic {
                let filled = n_drivers * l;
                lane_states_neg[..filled].copy_from_slice(&lane_states[..filled]);
            }
            for step in 1..=n_steps {
                for (i, (rng, gauss)) in lane_rngs.iter_mut().enumerate() {
                    for z in raw.iter_mut() {
                        *z = gauss.sample(rng);
                    }
                    self.correlation.correlate_into(raw, shocks);
                    for d in 0..n_drivers {
                        lane_shocks[d * l + i] = shocks[d];
                        if antithetic {
                            lane_shocks_neg[d * l + i] = -shocks[d];
                        }
                    }
                }
                for d in 0..n_drivers {
                    let states = &mut lane_states[d * l..(d + 1) * l];
                    self.drivers[d].step_block(
                        states,
                        &lane_shocks[d * l..(d + 1) * l],
                        dt,
                        &coeffs[d],
                        measure,
                    );
                    if antithetic {
                        let states_neg = &mut lane_states_neg[d * l..(d + 1) * l];
                        self.drivers[d].step_block(
                            states_neg,
                            &lane_shocks_neg[d * l..(d + 1) * l],
                            dt,
                            &coeffs[d],
                            measure,
                        );
                        for i in 0..l {
                            let p_pos = 2 * (block + i);
                            data[(p_pos * n_drivers + d) * stride + step] = states[i];
                            data[((p_pos + 1) * n_drivers + d) * stride + step] = states_neg[i];
                        }
                    } else {
                        for i in 0..l {
                            data[((block + i) * n_drivers + d) * stride + step] = states[i];
                        }
                    }
                }
            }
            block += l;
        }
    }

    /// Moves a freshly filled buffer's path data into an owning
    /// [`ScenarioSet`] (the allocating wrappers' final step).
    fn set_from_buffer(&self, buf: ScenarioBuffer) -> ScenarioSet {
        let meta = buf.meta.expect("buffer was filled by the caller");
        ScenarioSet {
            grid: meta.grid,
            measure: meta.measure,
            driver_names: self.drivers.iter().map(|d| d.name().to_string()).collect(),
            short_rate_index: meta.short_rate_index,
            n_paths: meta.n_paths,
            data: buf.data,
        }
    }
}

/// Builder for [`ScenarioGenerator`].
#[derive(Default)]
pub struct ScenarioGeneratorBuilder {
    drivers: Vec<Box<dyn RiskDriver>>,
    correlation: Option<CorrelationMatrix>,
    grid: Option<TimeGrid>,
}

impl ScenarioGeneratorBuilder {
    /// Adds a risk driver (order defines the driver index).
    pub fn driver(mut self, driver: Box<dyn RiskDriver>) -> Self {
        self.drivers.push(driver);
        self
    }

    /// Sets the correlation matrix (defaults to identity).
    pub fn correlation(mut self, correlation: CorrelationMatrix) -> Self {
        self.correlation = Some(correlation);
        self
    }

    /// Sets the time grid (required).
    pub fn grid(mut self, grid: TimeGrid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Finalizes the generator.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidConfiguration`] when no drivers were
    /// added, no grid was set, or the correlation dimension does not match
    /// the driver count.
    pub fn build(self) -> Result<ScenarioGenerator, StochasticError> {
        if self.drivers.is_empty() {
            return Err(StochasticError::InvalidConfiguration(
                "at least one driver is required".into(),
            ));
        }
        let grid = self.grid.ok_or_else(|| {
            StochasticError::InvalidConfiguration("a time grid is required".into())
        })?;
        let correlation = self
            .correlation
            .unwrap_or_else(|| CorrelationMatrix::identity(self.drivers.len()));
        if correlation.dim() != self.drivers.len() {
            return Err(StochasticError::InvalidConfiguration(format!(
                "correlation dimension {} != driver count {}",
                correlation.dim(),
                self.drivers.len()
            )));
        }
        Ok(ScenarioGenerator {
            drivers: self.drivers,
            correlation,
            grid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{Gbm, Vasicek};
    use disar_math::stats;

    fn sample_generator() -> ScenarioGenerator {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.2).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.2, 0.02).unwrap()))
            .correlation(
                CorrelationMatrix::new(vec![vec![1.0, -0.3], vec![-0.3, 1.0]]).unwrap(),
            )
            .grid(TimeGrid::new(1.0, 12).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn grid_rounds_fractional_years_up() {
        let g = TimeGrid::new(1.5, 12).unwrap();
        assert_eq!(g.n_steps(), 18);
        let g2 = TimeGrid::new(0.01, 12).unwrap();
        assert_eq!(g2.n_steps(), 1);
    }

    #[test]
    fn grid_step_at() {
        let g = TimeGrid::new(10.0, 12).unwrap();
        assert_eq!(g.step_at(0.0), 0);
        assert_eq!(g.step_at(1.0), 12);
        assert_eq!(g.step_at(99.0), g.n_steps());
    }

    #[test]
    fn set_shape_and_initials() {
        let gen = sample_generator();
        let set = gen.generate(Measure::RealWorld, 25, 3, None).unwrap();
        assert_eq!(set.n_paths(), 25);
        assert_eq!(set.n_drivers(), 2);
        assert_eq!(set.path(0, 0).len(), 13);
        for p in 0..25 {
            assert_eq!(set.value(p, 0, 0), 0.02);
            assert_eq!(set.value(p, 1, 0), 100.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = sample_generator();
        let a = gen.generate(Measure::RiskNeutral, 10, 5, None).unwrap();
        let b = gen.generate(Measure::RiskNeutral, 10, 5, None).unwrap();
        assert_eq!(a, b);
        let c = gen.generate(Measure::RiskNeutral, 10, 6, None).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn initial_overrides_anchor_paths() {
        let gen = sample_generator();
        let init = vec![0.05, 80.0];
        let set = gen
            .generate(Measure::RiskNeutral, 5, 1, Some(&init))
            .unwrap();
        let mut state = Vec::new();
        for p in 0..5 {
            set.view().state_into(p, 0, &mut state);
            assert_eq!(state, init);
        }
    }

    #[test]
    fn override_length_validated() {
        let gen = sample_generator();
        assert!(gen
            .generate(Measure::RiskNeutral, 5, 1, Some(&[0.05]))
            .is_err());
    }

    #[test]
    fn discount_factor_decreases_with_positive_rates() {
        let gen = sample_generator();
        let set = gen.generate(Measure::RiskNeutral, 3, 9, None).unwrap();
        for p in 0..3 {
            let d_half = set.discount_factor(p, 6);
            let d_full = set.discount_factor(p, 12);
            assert!(d_half <= 1.0);
            assert!(d_full <= d_half, "discount must be non-increasing");
            assert!(d_full > 0.8, "rates are small; {d_full}");
        }
    }

    #[test]
    fn discount_factor_without_short_rate_is_one() {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap()))
            .grid(TimeGrid::new(1.0, 4).unwrap())
            .build()
            .unwrap();
        let set = gen.generate(Measure::RiskNeutral, 2, 0, None).unwrap();
        assert_eq!(set.discount_factor(0, 4), 1.0);
        assert_eq!(set.short_rate_index(), None);
    }

    #[test]
    fn empirical_cross_correlation_has_right_sign() {
        let gen = sample_generator();
        let set = gen.generate(Measure::RealWorld, 4000, 13, None).unwrap();
        // One-step increments of rate vs log-equity should correlate ≈ -0.3.
        let mut dr = Vec::new();
        let mut ds = Vec::new();
        for p in 0..set.n_paths() {
            dr.push(set.value(p, 0, 1) - set.value(p, 0, 0));
            ds.push((set.value(p, 1, 1) / set.value(p, 1, 0)).ln());
        }
        let c = stats::correlation(&dr, &ds);
        assert!((c + 0.3).abs() < 0.05, "empirical correlation {c}");
    }

    #[test]
    fn builder_validation() {
        assert!(ScenarioGenerator::builder()
            .grid(TimeGrid::new(1.0, 12).unwrap())
            .build()
            .is_err());
        assert!(ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap()))
            .build()
            .is_err());
        assert!(ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap()))
            .correlation(CorrelationMatrix::identity(3))
            .grid(TimeGrid::new(1.0, 12).unwrap())
            .build()
            .is_err());
    }

    #[test]
    fn zero_paths_rejected() {
        let gen = sample_generator();
        assert!(gen.generate(Measure::RealWorld, 0, 1, None).is_err());
        assert!(gen.generate_antithetic(Measure::RealWorld, 0, 1, None).is_err());
        let mut buf = ScenarioBuffer::new();
        assert!(gen
            .generate_into(Measure::RealWorld, 0, 1, None, &mut buf)
            .is_err());
        assert!(gen
            .generate_antithetic_into(Measure::RealWorld, 0, 1, None, &mut buf)
            .is_err());
    }

    #[test]
    fn antithetic_pairs_mirror_shocks() {
        // With a pure-Gaussian driver (Vasicek), the antithetic partner's
        // first increment is the exact mirror around the deterministic
        // step.
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.01, 0.0).unwrap()))
            .grid(TimeGrid::new(1.0, 12).unwrap())
            .build()
            .unwrap();
        let set = gen
            .generate_antithetic(Measure::RiskNeutral, 10, 3, None)
            .unwrap();
        assert_eq!(set.n_paths(), 20);
        let v = Vasicek::new(0.03, 0.5, 0.03, 0.01, 0.0).unwrap();
        let det = v.step(0.03, 1.0 / 12.0, 0.0, Measure::RiskNeutral);
        for pair in 0..10 {
            let up = set.value(2 * pair, 0, 1) - det;
            let dn = set.value(2 * pair + 1, 0, 1) - det;
            assert!((up + dn).abs() < 1e-12, "pair {pair}: {up} vs {dn}");
        }
    }

    #[test]
    fn antithetic_reduces_variance_of_the_mean() {
        // Estimate E[S_1] for a GBM using pair-averages vs independent
        // paths: the antithetic estimator must have smaller spread.
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(100.0, 0.05, 0.25, 0.03).unwrap()))
            .grid(TimeGrid::new(1.0, 12).unwrap())
            .build()
            .unwrap();
        let n_pairs = 4000;
        let anti = gen
            .generate_antithetic(Measure::RiskNeutral, n_pairs, 5, None)
            .unwrap();
        let indep = gen
            .generate(Measure::RiskNeutral, 2 * n_pairs, 5, None)
            .unwrap();
        let steps = anti.grid().n_steps();
        let pair_means: Vec<f64> = (0..n_pairs)
            .map(|k| {
                0.5 * (anti.value(2 * k, 0, steps) + anti.value(2 * k + 1, 0, steps))
            })
            .collect();
        let indep_pair_means: Vec<f64> = (0..n_pairs)
            .map(|k| 0.5 * (indep.value(2 * k, 0, steps) + indep.value(2 * k + 1, 0, steps)))
            .collect();
        let v_anti = stats::variance(&pair_means);
        let v_indep = stats::variance(&indep_pair_means);
        assert!(
            v_anti < 0.7 * v_indep,
            "antithetic variance {v_anti} vs independent {v_indep}"
        );
        // And the estimator stays unbiased: E_Q[S_1] = S_0 e^{r}.
        let expect = 100.0 * (0.03f64).exp();
        let m = stats::mean(&pair_means);
        assert!((m - expect).abs() < 0.5, "mean {m} vs {expect}");
    }

    #[test]
    fn antithetic_is_deterministic_and_anchored() {
        let gen = sample_generator();
        let init = vec![0.04, 90.0];
        let a = gen
            .generate_antithetic(Measure::RiskNeutral, 6, 9, Some(&init))
            .unwrap();
        let b = gen
            .generate_antithetic(Measure::RiskNeutral, 6, 9, Some(&init))
            .unwrap();
        assert_eq!(a, b);
        let mut state = Vec::new();
        for p in 0..a.n_paths() {
            a.view().state_into(p, 0, &mut state);
            assert_eq!(state, init);
        }
        assert!(gen
            .generate_antithetic(Measure::RiskNeutral, 2, 1, Some(&[0.04]))
            .is_err());
    }

    fn assert_view_matches_set(v: &ScenarioView<'_>, set: &ScenarioSet) {
        assert_eq!(v.n_paths(), set.n_paths());
        assert_eq!(v.n_drivers(), set.n_drivers());
        assert_eq!(v.grid(), set.grid());
        assert_eq!(v.measure(), set.measure());
        assert_eq!(v.short_rate_index(), set.short_rate_index());
        for p in 0..set.n_paths() {
            for d in 0..set.n_drivers() {
                for (a, b) in v.path(p, d).iter().zip(set.path(p, d)) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn generate_into_matches_generate_bitwise() {
        let gen = sample_generator();
        let init = vec![0.045, 110.0];
        for (measure, overrides) in [
            (Measure::RealWorld, None),
            (Measure::RiskNeutral, Some(init.as_slice())),
        ] {
            let mut buf = ScenarioBuffer::new();
            gen.generate_into(measure, 7, 42, overrides, &mut buf).unwrap();
            let set = gen.generate(measure, 7, 42, overrides).unwrap();
            assert_view_matches_set(&buf.view(), &set);

            let mut anti_buf = ScenarioBuffer::new();
            gen.generate_antithetic_into(measure, 7, 42, overrides, &mut anti_buf)
                .unwrap();
            let anti = gen.generate_antithetic(measure, 7, 42, overrides).unwrap();
            assert_view_matches_set(&anti_buf.view(), &anti);
        }
    }

    #[test]
    fn buffer_reuse_does_not_leak_between_fills() {
        let gen = sample_generator();
        let mut buf = ScenarioBuffer::new();
        // Pollute with a larger antithetic fill, then refill smaller: the
        // result must match a fresh generation exactly.
        gen.generate_antithetic_into(Measure::RealWorld, 9, 7, None, &mut buf)
            .unwrap();
        gen.generate_into(Measure::RiskNeutral, 4, 11, Some(&[0.01, 95.0]), &mut buf)
            .unwrap();
        let fresh = gen
            .generate(Measure::RiskNeutral, 4, 11, Some(&[0.01, 95.0]))
            .unwrap();
        assert_view_matches_set(&buf.view(), &fresh);
    }

    #[test]
    fn reserve_for_presizes_without_filling() {
        let gen = sample_generator();
        let mut buf = ScenarioBuffer::new();
        buf.reserve_for(&gen, 10);
        gen.generate_into(Measure::RealWorld, 10, 3, None, &mut buf).unwrap();
        let fresh = gen.generate(Measure::RealWorld, 10, 3, None).unwrap();
        assert_view_matches_set(&buf.view(), &fresh);
    }

    #[test]
    fn year_discount_factors_match_per_step_calls() {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.2).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.2, 0.02).unwrap()))
            .grid(TimeGrid::new(3.0, 12).unwrap())
            .build()
            .unwrap();
        let set = gen.generate(Measure::RiskNeutral, 4, 21, None).unwrap();
        let v = set.view();
        let mut dfs = Vec::new();
        for p in 0..set.n_paths() {
            v.year_discount_factors_into(p, 3, &mut dfs);
            assert_eq!(dfs.len(), 3);
            for (k, df) in dfs.iter().enumerate() {
                let reference = set.discount_factor(p, (k + 1) * 12);
                assert_eq!(df.to_bits(), reference.to_bits(), "path {p} year {}", k + 1);
            }
        }
    }

    #[test]
    fn year_discount_factors_without_short_rate_are_one() {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap()))
            .grid(TimeGrid::new(2.0, 4).unwrap())
            .build()
            .unwrap();
        let set = gen.generate(Measure::RiskNeutral, 2, 0, None).unwrap();
        let mut dfs = vec![0.5; 7];
        set.view().year_discount_factors_into(0, 2, &mut dfs);
        assert_eq!(dfs, vec![1.0, 1.0]);
    }

    #[test]
    fn state_into_matches_per_driver_values() {
        let gen = sample_generator();
        let set = gen.generate(Measure::RealWorld, 3, 17, None).unwrap();
        let v = set.view();
        let mut state = Vec::new();
        for p in 0..3 {
            v.state_into(p, 12, &mut state);
            let expected: Vec<f64> =
                (0..set.n_drivers()).map(|d| set.value(p, d, 12)).collect();
            assert_eq!(state, expected);
        }
    }

    #[test]
    #[should_panic(expected = "before any generate_into fill")]
    fn buffer_view_before_fill_panics() {
        let _ = ScenarioBuffer::new().view();
    }

    #[test]
    fn lane_fills_bitwise_match_lane_one() {
        let gen = sample_generator();
        let init = vec![0.045, 110.0];
        let mut reference = ScenarioBuffer::new();
        let mut buf = ScenarioBuffer::new();
        for (measure, overrides) in [
            (Measure::RealWorld, None),
            (Measure::RiskNeutral, Some(init.as_slice())),
        ] {
            // 11 paths at lanes {2, 4, 8, 16}: exercises full blocks, the
            // final partial block, and lane > n_paths.
            gen.generate_into(measure, 11, 42, overrides, &mut reference)
                .unwrap();
            for lane in [2usize, 4, 8, 16] {
                gen.generate_into_lanes(measure, 11, 42, overrides, &mut buf, lane)
                    .unwrap();
                assert_view_bitwise_eq(&buf.view(), &reference.view());
            }
            gen.generate_antithetic_into(measure, 11, 42, overrides, &mut reference)
                .unwrap();
            for lane in [2usize, 4, 8, 16] {
                gen.generate_antithetic_into_lanes(measure, 11, 42, overrides, &mut buf, lane)
                    .unwrap();
                assert_view_bitwise_eq(&buf.view(), &reference.view());
            }
        }
    }

    fn assert_view_bitwise_eq(a: &ScenarioView<'_>, b: &ScenarioView<'_>) {
        assert_eq!(a.n_paths(), b.n_paths());
        assert_eq!(a.n_drivers(), b.n_drivers());
        for p in 0..a.n_paths() {
            for d in 0..a.n_drivers() {
                for (s, (x, y)) in a.path(p, d).iter().zip(b.path(p, d)).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "path {p} driver {d} step {s}");
                }
            }
        }
    }

    #[test]
    fn zero_lane_rejected() {
        let gen = sample_generator();
        let mut buf = ScenarioBuffer::new();
        assert!(gen
            .generate_into_lanes(Measure::RealWorld, 4, 1, None, &mut buf, 0)
            .is_err());
        assert!(gen
            .generate_antithetic_into_lanes(Measure::RealWorld, 4, 1, None, &mut buf, 0)
            .is_err());
    }

    #[test]
    fn reserve_for_lanes_presizes_without_filling() {
        let gen = sample_generator();
        let mut buf = ScenarioBuffer::new();
        buf.reserve_for_lanes(&gen, 10, 8);
        gen.generate_into_lanes(Measure::RealWorld, 10, 3, None, &mut buf, 8)
            .unwrap();
        let fresh = gen.generate(Measure::RealWorld, 10, 3, None).unwrap();
        assert_view_matches_set(&buf.view(), &fresh);
    }

    #[test]
    fn step_discount_factors_match_per_step_calls() {
        let gen = sample_generator();
        let set = gen.generate(Measure::RiskNeutral, 3, 29, None).unwrap();
        let v = set.view();
        let mut dfs = vec![0.25; 3]; // polluted; must be cleared by the fill
        for p in 0..set.n_paths() {
            v.step_discount_factors_into(p, &mut dfs);
            assert_eq!(dfs.len(), set.grid().n_steps() + 1);
            for (s, df) in dfs.iter().enumerate() {
                let reference = v.discount_factor(p, s);
                assert_eq!(df.to_bits(), reference.to_bits(), "path {p} step {s}");
            }
        }
    }

    #[test]
    fn step_discount_factors_without_short_rate_are_one() {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap()))
            .grid(TimeGrid::new(1.0, 4).unwrap())
            .build()
            .unwrap();
        let set = gen.generate(Measure::RiskNeutral, 2, 0, None).unwrap();
        let mut dfs = Vec::new();
        set.view().step_discount_factors_into(1, &mut dfs);
        assert_eq!(dfs, vec![1.0; 5]);
    }

    #[test]
    fn step_discount_factors_are_linear_not_quadratic() {
        // Regression for the O(steps²) pattern: calling `discount_factor`
        // once per step re-sums the integral from zero each time. On a
        // 4096-step grid that is ~8.4M additions, vs ~4k for the prefix
        // fill — a ~1000× work ratio, so demanding a mere 3× wall-clock win
        // leaves enormous headroom against timer noise in any build mode.
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.2).unwrap()))
            .grid(TimeGrid::new(4096.0 / 12.0, 12).unwrap())
            .build()
            .unwrap();
        let set = gen.generate(Measure::RiskNeutral, 1, 5, None).unwrap();
        let v = set.view();
        let n = set.grid().n_steps();
        assert!(n >= 4096);

        let t_prefix = std::time::Instant::now();
        let mut dfs = Vec::new();
        v.step_discount_factors_into(0, &mut dfs);
        let prefix_elapsed = t_prefix.elapsed();

        let t_percall = std::time::Instant::now();
        let mut acc = 0.0;
        for s in 0..=n {
            acc += v.discount_factor(0, s);
        }
        let percall_elapsed = t_percall.elapsed();

        // Consistency first: same values either way.
        let per_call_sum: f64 = dfs.iter().sum();
        assert!((acc - per_call_sum).abs() < 1e-9);
        assert!(
            prefix_elapsed.as_secs_f64() * 3.0 < percall_elapsed.as_secs_f64(),
            "prefix fill ({prefix_elapsed:?}) should be far cheaper than \
             per-step calls ({percall_elapsed:?})"
        );
    }
}
