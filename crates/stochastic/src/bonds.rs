//! Closed-form zero-coupon bond prices for the affine short-rate models.
//!
//! Both Vasicek and CIR admit exponential-affine bond prices
//! `P(r, τ) = A(τ) · e^{−B(τ) r}`. These formulas serve two purposes in
//! the reproduction:
//!
//! 1. **validation** — the Monte Carlo money-market discount factor
//!    `E_Q[e^{−∫ r}]` must converge to the analytic price, which pins down
//!    the correctness of the whole scenario/discounting pipeline (the
//!    `mc_discount_matches_*` tests below);
//! 2. **asset valuation** — the segregated fund's bond book can be marked
//!    to model at any scenario node.

use crate::drivers::{Cir, Vasicek};
use crate::scenario::Measure;
use crate::StochasticError;

/// Analytic zero-coupon bond prices under a short-rate model.
pub trait BondPricing {
    /// Price at short-rate state `r` of a unit zero-coupon bond maturing
    /// in `maturity` years (risk-neutral measure).
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] for a negative
    /// maturity.
    fn zcb_price(&self, r: f64, maturity: f64) -> Result<f64, StochasticError>;

    /// Continuously-compounded zero yield implied by
    /// [`BondPricing::zcb_price`].
    ///
    /// # Errors
    ///
    /// Propagates [`BondPricing::zcb_price`]; additionally rejects a zero
    /// maturity (the yield is undefined there).
    fn zero_yield(&self, r: f64, maturity: f64) -> Result<f64, StochasticError> {
        if maturity <= 0.0 {
            return Err(StochasticError::InvalidParameter(
                "maturity must be positive for a yield",
            ));
        }
        Ok(-self.zcb_price(r, maturity)?.ln() / maturity)
    }
}

impl BondPricing for Vasicek {
    fn zcb_price(&self, r: f64, maturity: f64) -> Result<f64, StochasticError> {
        if maturity < 0.0 {
            return Err(StochasticError::InvalidParameter("maturity must be >= 0"));
        }
        let a = self.speed();
        let b = self.long_run_mean(Measure::RiskNeutral);
        let sigma = self.sigma();
        let big_b = (1.0 - (-a * maturity).exp()) / a;
        let ln_a = (big_b - maturity) * (a * a * b - sigma * sigma / 2.0) / (a * a)
            - sigma * sigma * big_b * big_b / (4.0 * a);
        Ok((ln_a - big_b * r).exp())
    }
}

impl BondPricing for Cir {
    fn zcb_price(&self, r: f64, maturity: f64) -> Result<f64, StochasticError> {
        if maturity < 0.0 {
            return Err(StochasticError::InvalidParameter("maturity must be >= 0"));
        }
        if maturity == 0.0 {
            return Ok(1.0);
        }
        let a = self.speed();
        let b = self.long_run();
        let sigma = self.sigma();
        let h = (a * a + 2.0 * sigma * sigma).sqrt();
        let e_ht = (h * maturity).exp();
        let denom = 2.0 * h + (a + h) * (e_ht - 1.0);
        let big_a = (2.0 * h * ((a + h) * maturity / 2.0).exp() / denom)
            .powf(2.0 * a * b / (sigma * sigma).max(1e-300));
        let big_b = 2.0 * (e_ht - 1.0) / denom;
        Ok(big_a * (-big_b * r).exp())
    }
}

/// Builds a zero-coupon curve `(maturity, yield)` from any pricing model.
///
/// # Errors
///
/// Propagates pricing failures; rejects an empty maturity list.
pub fn zero_curve<M: BondPricing>(
    model: &M,
    r: f64,
    maturities: &[f64],
) -> Result<Vec<(f64, f64)>, StochasticError> {
    if maturities.is_empty() {
        return Err(StochasticError::InvalidParameter(
            "at least one maturity is required",
        ));
    }
    maturities
        .iter()
        .map(|&t| Ok((t, model.zero_yield(r, t)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioGenerator, TimeGrid};
    use disar_math::stats;

    fn vasicek() -> Vasicek {
        Vasicek::new(0.03, 0.6, 0.04, 0.015, 0.0).expect("valid")
    }

    fn cir() -> Cir {
        Cir::short_rate(0.03, 0.6, 0.04, 0.08, 0.0).expect("valid")
    }

    #[test]
    fn zero_maturity_is_par() {
        assert!((vasicek().zcb_price(0.03, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((cir().zcb_price(0.03, 0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prices_decrease_with_maturity_at_positive_rates() {
        for model in [&vasicek() as &dyn BondPricing, &cir()] {
            let mut prev = 1.0;
            for t in 1..=30 {
                let p = model.zcb_price(0.03, t as f64).unwrap();
                assert!(p < prev, "P({t}) = {p} >= P({}) = {prev}", t - 1);
                assert!(p > 0.0);
                prev = p;
            }
        }
    }

    #[test]
    fn higher_rate_lower_price() {
        for model in [&vasicek() as &dyn BondPricing, &cir()] {
            let lo = model.zcb_price(0.01, 10.0).unwrap();
            let hi = model.zcb_price(0.06, 10.0).unwrap();
            assert!(hi < lo);
        }
    }

    #[test]
    fn negative_maturity_rejected() {
        assert!(vasicek().zcb_price(0.03, -1.0).is_err());
        assert!(cir().zcb_price(0.03, -1.0).is_err());
        assert!(vasicek().zero_yield(0.03, 0.0).is_err());
    }

    #[test]
    fn long_yield_approaches_asymptote_direction() {
        // Vasicek long-maturity yield tends to b − σ²/(2a²); check the
        // 30y yield is between r0-side and the asymptote neighbourhood.
        let v = vasicek();
        let y30 = v.zero_yield(0.03, 30.0).unwrap();
        let asymptote = 0.04 - 0.015f64.powi(2) / (2.0 * 0.6 * 0.6);
        assert!((y30 - asymptote).abs() < 0.01, "y30 {y30} vs {asymptote}");
    }

    #[test]
    fn mc_discount_matches_vasicek_analytic() {
        // The pipeline test: E_Q[exp(-∫ r dt)] from simulated paths must
        // converge to the closed-form bond price.
        let v = vasicek();
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(v.clone()))
            .grid(TimeGrid::new(5.0, 24).unwrap())
            .build()
            .unwrap();
        let set = gen
            .generate(Measure::RiskNeutral, 20_000, 42, None)
            .unwrap();
        let steps = set.grid().n_steps();
        let dfs: Vec<f64> = (0..set.n_paths())
            .map(|p| set.discount_factor(p, steps))
            .collect();
        let mc = stats::mean(&dfs);
        let analytic = v.zcb_price(0.03, 5.0).unwrap();
        let rel = (mc - analytic).abs() / analytic;
        assert!(rel < 0.005, "MC {mc} vs analytic {analytic} ({rel:.4} rel)");
    }

    #[test]
    fn mc_discount_matches_cir_analytic() {
        let c = cir();
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(c.clone()))
            .grid(TimeGrid::new(5.0, 48).unwrap()) // finer grid: Euler bias
            .build()
            .unwrap();
        let set = gen
            .generate(Measure::RiskNeutral, 20_000, 7, None)
            .unwrap();
        let steps = set.grid().n_steps();
        let dfs: Vec<f64> = (0..set.n_paths())
            .map(|p| set.discount_factor(p, steps))
            .collect();
        let mc = stats::mean(&dfs);
        let analytic = c.zcb_price(0.03, 5.0).unwrap();
        let rel = (mc - analytic).abs() / analytic;
        assert!(rel < 0.01, "MC {mc} vs analytic {analytic} ({rel:.4} rel)");
    }

    #[test]
    fn curve_is_well_formed() {
        let curve = zero_curve(&vasicek(), 0.03, &[1.0, 5.0, 10.0, 30.0]).unwrap();
        assert_eq!(curve.len(), 4);
        for (t, y) in curve {
            assert!(t > 0.0);
            assert!(y.is_finite());
            assert!(y > -0.05 && y < 0.2, "implausible yield {y} at {t}");
        }
        assert!(zero_curve(&vasicek(), 0.03, &[]).is_err());
    }
}
