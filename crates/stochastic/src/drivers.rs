//! Risk-driver models.
//!
//! Each driver evolves one state variable on a discrete time grid given a
//! standard-normal shock per step. Models know both probability measures:
//!
//! - under the **real-world measure `P`** the drift contains risk premia —
//!   this is what the paper's *outer* (natural) simulations use;
//! - under the **risk-neutral measure `Q`** the drift is the risk-free one —
//!   used by the *inner* simulations for market-consistent valuation.

use crate::scenario::Measure;
use crate::StochasticError;
use serde::{Deserialize, Serialize};

/// Lane width of the unrolled bodies in [`StepCoeffs::apply`]: blocks are
/// processed in chunks of this many paths so the compiler can autovectorize
/// the arithmetic, with a scalar remainder loop for the tail.
pub const STEP_CHUNK: usize = 8;

/// Per-`(grid step, measure)` coefficients of a driver's transition,
/// hoisted out of the per-path loop by [`RiskDriver::step_coeffs`].
///
/// Every variant's element operation reproduces the corresponding
/// [`RiskDriver::step`] **to the bit**: only subexpressions that the scalar
/// step recomputes identically on every call (e.g. GBM's
/// `(μ − σ²/2)·dt` and `σ·√dt`) are precomputed — no association or
/// evaluation order of the remaining per-element arithmetic is changed.
/// The safety line matters: CIR's `a·(b − x⁺)·dt` is kept in exactly that
/// association (folding `a·dt` would reassociate and change bits), which is
/// why the variant stores `speed` and `dt` separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepCoeffs {
    /// Exact lognormal step `s ← s · exp(log_drift + vol_sqrt_dt · z)`
    /// ([`Gbm`] and [`FxRate`]); `log_drift = (drift − σ²/2)·dt`,
    /// `vol_sqrt_dt = σ·√dt`.
    Lognormal {
        /// `(drift − σ²/2)·dt` under the requested measure.
        log_drift: f64,
        /// `σ·√dt`.
        vol_sqrt_dt: f64,
    },
    /// Exact Ornstein–Uhlenbeck step
    /// `s ← (mean_level + (s − mean_level)·decay) + vol·z` ([`Vasicek`]);
    /// `decay = e^{−a·dt}`, `vol = √(σ²/(2a)·(1 − decay²))`.
    OrnsteinUhlenbeck {
        /// Measure-adjusted long-run mean `b`.
        mean_level: f64,
        /// `e^{−a·dt}`.
        decay: f64,
        /// Conditional standard deviation of one step.
        vol: f64,
    },
    /// Full-truncation Euler step of [`Cir`]:
    /// `s ← (s + speed·(mean_level − s⁺)·dt + sigma·√s⁺·sqrt_dt·z)⁺`.
    /// `speed` and `dt` stay separate factors on purpose — see the type-level
    /// docs on reassociation.
    CirFullTruncation {
        /// Mean-reversion speed `a`.
        speed: f64,
        /// Measure-adjusted long-run level `b`.
        mean_level: f64,
        /// Step width.
        dt: f64,
        /// Volatility `σ`.
        sigma: f64,
        /// `√dt`, hoisted (the scalar step calls `dt.sqrt()` each time —
        /// same bits, deterministic).
        sqrt_dt: f64,
    },
    /// No specialized block body; [`RiskDriver::step_block`] falls back to
    /// the scalar [`RiskDriver::step`] loop.
    Generic,
}

impl StepCoeffs {
    /// Advances a block of `states` in place given one standard-normal
    /// shock per lane. Returns `false` for [`StepCoeffs::Generic`] (nothing
    /// written); the caller then loops the scalar step.
    ///
    /// Bodies are unrolled in [`STEP_CHUNK`]-wide chunks with a scalar
    /// remainder, so any block length is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `shocks` have different lengths.
    pub fn apply(&self, states: &mut [f64], shocks: &[f64]) -> bool {
        assert_eq!(
            states.len(),
            shocks.len(),
            "state/shock block length mismatch"
        );
        match *self {
            StepCoeffs::Lognormal {
                log_drift,
                vol_sqrt_dt,
            } => {
                let mut s_chunks = states.chunks_exact_mut(STEP_CHUNK);
                let mut z_chunks = shocks.chunks_exact(STEP_CHUNK);
                for (ss, zs) in (&mut s_chunks).zip(&mut z_chunks) {
                    for (s, z) in ss.iter_mut().zip(zs) {
                        *s *= (log_drift + vol_sqrt_dt * z).exp();
                    }
                }
                for (s, z) in s_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(z_chunks.remainder())
                {
                    *s *= (log_drift + vol_sqrt_dt * z).exp();
                }
                true
            }
            StepCoeffs::OrnsteinUhlenbeck {
                mean_level,
                decay,
                vol,
            } => {
                let mut s_chunks = states.chunks_exact_mut(STEP_CHUNK);
                let mut z_chunks = shocks.chunks_exact(STEP_CHUNK);
                for (ss, zs) in (&mut s_chunks).zip(&mut z_chunks) {
                    for (s, z) in ss.iter_mut().zip(zs) {
                        *s = (mean_level + (*s - mean_level) * decay) + vol * z;
                    }
                }
                for (s, z) in s_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(z_chunks.remainder())
                {
                    *s = (mean_level + (*s - mean_level) * decay) + vol * z;
                }
                true
            }
            StepCoeffs::CirFullTruncation {
                speed,
                mean_level,
                dt,
                sigma,
                sqrt_dt,
            } => {
                let cir = |s: &mut f64, z: &f64| {
                    let xp = s.max(0.0);
                    let next = *s + speed * (mean_level - xp) * dt + sigma * xp.sqrt() * sqrt_dt * z;
                    *s = next.max(0.0);
                };
                let mut s_chunks = states.chunks_exact_mut(STEP_CHUNK);
                let mut z_chunks = shocks.chunks_exact(STEP_CHUNK);
                for (ss, zs) in (&mut s_chunks).zip(&mut z_chunks) {
                    for (s, z) in ss.iter_mut().zip(zs) {
                        cir(s, z);
                    }
                }
                for (s, z) in s_chunks
                    .into_remainder()
                    .iter_mut()
                    .zip(z_chunks.remainder())
                {
                    cir(s, z);
                }
                true
            }
            StepCoeffs::Generic => false,
        }
    }
}

/// A one-dimensional stochastic risk driver.
///
/// Implementations must be deterministic functions of `(state, dt, shock,
/// measure)` so that scenario generation is reproducible.
///
/// # Block stepping
///
/// [`RiskDriver::step_block`] advances a whole block (lane) of independent
/// paths at once. The contract is **bit-identity with the scalar path**:
/// for every lane `i`, the written value equals
/// `self.step(states[i], dt, shocks[i], measure)` to the bit. Paths share no
/// floating-point state, so processing them in lockstep only changes the
/// iteration order *across* paths — never the operation sequence *within*
/// one — which is what makes vectorization free of reassociation. The
/// built-in drivers override [`RiskDriver::step_coeffs`] to hoist per-step
/// constants once per `(grid, measure)` instead of recomputing them per
/// path×step.
pub trait RiskDriver: Send + Sync {
    /// The driver's value at `t = 0`.
    fn initial_value(&self) -> f64;

    /// Advances the state by one step of length `dt` (in years) given a
    /// standard-normal `shock`.
    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64;

    /// Hoisted per-step coefficients for [`RiskDriver::step_block`],
    /// computed once per `(dt, measure)` rather than per path×step.
    ///
    /// The default returns [`StepCoeffs::Generic`], which makes
    /// `step_block` fall back to a scalar [`RiskDriver::step`] loop — a
    /// custom driver is block-correct without overriding anything.
    fn step_coeffs(&self, dt: f64, measure: Measure) -> StepCoeffs {
        let _ = (dt, measure);
        StepCoeffs::Generic
    }

    /// Advances a block of independent paths by one step, bit-identical to
    /// calling [`RiskDriver::step`] per lane.
    ///
    /// `coeffs` must be the result of `self.step_coeffs(dt, measure)` —
    /// passing another driver's coefficients is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `shocks` have different lengths.
    fn step_block(
        &self,
        states: &mut [f64],
        shocks: &[f64],
        dt: f64,
        coeffs: &StepCoeffs,
        measure: Measure,
    ) {
        if !coeffs.apply(states, shocks) {
            for (s, z) in states.iter_mut().zip(shocks) {
                *s = self.step(*s, dt, *z, measure);
            }
        }
    }

    /// Short human-readable name, e.g. `"equity"`.
    fn name(&self) -> &str;

    /// `true` when this driver is a short rate usable for discounting.
    fn is_short_rate(&self) -> bool {
        false
    }
}

/// Geometric Brownian motion — the classical equity model.
///
/// Under `P`: `dS = μ S dt + σ S dW`; under `Q`: `dS = r S dt + σ S dW`.
/// The step is exact (lognormal), so no discretization bias is introduced.
///
/// # Example
///
/// ```
/// use disar_stochastic::drivers::{Gbm, RiskDriver};
/// use disar_stochastic::scenario::Measure;
///
/// let gbm = Gbm::new(100.0, 0.08, 0.2, 0.03).unwrap();
/// let s1 = gbm.step(100.0, 1.0, 0.0, Measure::RiskNeutral);
/// // With zero shock the exact step is S exp((r - σ²/2) dt).
/// assert!((s1 - 100.0 * (0.03f64 - 0.02).exp()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbm {
    s0: f64,
    mu: f64,
    sigma: f64,
    risk_free: f64,
    name: String,
}

impl Gbm {
    /// Creates a GBM with initial value `s0`, real-world drift `mu`,
    /// volatility `sigma` and risk-free rate `risk_free` (the `Q` drift).
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `s0 <= 0` or
    /// `sigma < 0`.
    pub fn new(s0: f64, mu: f64, sigma: f64, risk_free: f64) -> Result<Self, StochasticError> {
        if s0 <= 0.0 {
            return Err(StochasticError::InvalidParameter("s0 must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Gbm {
            s0,
            mu,
            sigma,
            risk_free,
            name: "equity".to_string(),
        })
    }

    /// Renames the driver (useful with several equity indices).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Volatility parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Gbm {
    fn initial_value(&self) -> f64 {
        self.s0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.risk_free,
        };
        state * ((drift - 0.5 * self.sigma * self.sigma) * dt + self.sigma * dt.sqrt() * shock)
            .exp()
    }

    fn step_coeffs(&self, dt: f64, measure: Measure) -> StepCoeffs {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.risk_free,
        };
        // Same expressions, same association, as the scalar `step` — the
        // hoisted values are bit-identical to what every per-path call
        // recomputed.
        StepCoeffs::Lognormal {
            log_drift: (drift - 0.5 * self.sigma * self.sigma) * dt,
            vol_sqrt_dt: self.sigma * dt.sqrt(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Vasicek short-rate model: `dr = a (b − r) dt + σ dW`.
///
/// Under `P` the long-run level is shifted by the market price of risk
/// `λ`: `b_P = b_Q + λ σ / a`. The transition is exact (Ornstein–Uhlenbeck
/// Gaussian step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vasicek {
    r0: f64,
    a: f64,
    b: f64,
    sigma: f64,
    lambda: f64,
    name: String,
}

impl Vasicek {
    /// Creates a Vasicek model with initial rate `r0`, mean-reversion speed
    /// `a`, risk-neutral long-run mean `b`, volatility `sigma` and market
    /// price of risk `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `a <= 0` or
    /// `sigma < 0`.
    pub fn new(r0: f64, a: f64, b: f64, sigma: f64, lambda: f64) -> Result<Self, StochasticError> {
        if a <= 0.0 {
            return Err(StochasticError::InvalidParameter("a must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Vasicek {
            r0,
            a,
            b,
            sigma,
            lambda,
            name: "short-rate".to_string(),
        })
    }

    /// The effective long-run mean under the given measure.
    pub fn long_run_mean(&self, measure: Measure) -> f64 {
        match measure {
            Measure::RiskNeutral => self.b,
            Measure::RealWorld => self.b + self.lambda * self.sigma / self.a,
        }
    }

    /// Mean-reversion speed `a`.
    pub fn speed(&self) -> f64 {
        self.a
    }

    /// Volatility `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Vasicek {
    fn initial_value(&self) -> f64 {
        self.r0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let b = self.long_run_mean(measure);
        let e = (-self.a * dt).exp();
        let mean = b + (state - b) * e;
        let var = self.sigma * self.sigma / (2.0 * self.a) * (1.0 - e * e);
        mean + var.sqrt() * shock
    }

    fn step_coeffs(&self, dt: f64, measure: Measure) -> StepCoeffs {
        let e = (-self.a * dt).exp();
        let var = self.sigma * self.sigma / (2.0 * self.a) * (1.0 - e * e);
        StepCoeffs::OrnsteinUhlenbeck {
            mean_level: self.long_run_mean(measure),
            decay: e,
            vol: var.sqrt(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_short_rate(&self) -> bool {
        true
    }
}

/// Cox–Ingersoll–Ross process: `dx = a (b − x) dt + σ √x dW`, kept
/// non-negative with the full-truncation Euler scheme.
///
/// Used both as an alternative short-rate model and as a default-intensity
/// (credit) driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cir {
    x0: f64,
    a: f64,
    b: f64,
    sigma: f64,
    lambda: f64,
    short_rate: bool,
    name: String,
}

impl Cir {
    /// Creates a CIR short-rate model.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `x0 < 0`, `a <= 0`,
    /// `b < 0` or `sigma < 0`.
    pub fn short_rate(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
        lambda: f64,
    ) -> Result<Self, StochasticError> {
        Self::validated(x0, a, b, sigma, lambda, true, "short-rate-cir")
    }

    /// Creates a CIR default-intensity (credit-spread) driver.
    ///
    /// # Errors
    ///
    /// Same domain checks as [`Cir::short_rate`].
    pub fn default_intensity(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
    ) -> Result<Self, StochasticError> {
        Self::validated(x0, a, b, sigma, 0.0, false, "default-intensity")
    }

    fn validated(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
        lambda: f64,
        short_rate: bool,
        name: &str,
    ) -> Result<Self, StochasticError> {
        if x0 < 0.0 {
            return Err(StochasticError::InvalidParameter("x0 must be >= 0"));
        }
        if a <= 0.0 {
            return Err(StochasticError::InvalidParameter("a must be positive"));
        }
        if b < 0.0 {
            return Err(StochasticError::InvalidParameter("b must be >= 0"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Cir {
            x0,
            a,
            b,
            sigma,
            lambda,
            short_rate,
            name: name.to_string(),
        })
    }

    /// `true` when `2ab ≥ σ²` (the Feller condition: the exact process
    /// never touches zero).
    pub fn feller_condition(&self) -> bool {
        2.0 * self.a * self.b >= self.sigma * self.sigma
    }

    /// Mean-reversion speed `a`.
    pub fn speed(&self) -> f64 {
        self.a
    }

    /// Risk-neutral long-run level `b`.
    pub fn long_run(&self) -> f64 {
        self.b
    }

    /// Volatility `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Cir {
    fn initial_value(&self) -> f64 {
        self.x0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let b = match measure {
            Measure::RiskNeutral => self.b,
            Measure::RealWorld => self.b + self.lambda * self.sigma / self.a,
        };
        let xp = state.max(0.0);
        let next = state + self.a * (b - xp) * dt + self.sigma * xp.sqrt() * dt.sqrt() * shock;
        next.max(0.0)
    }

    fn step_coeffs(&self, dt: f64, measure: Measure) -> StepCoeffs {
        let b = match measure {
            Measure::RiskNeutral => self.b,
            Measure::RealWorld => self.b + self.lambda * self.sigma / self.a,
        };
        StepCoeffs::CirFullTruncation {
            speed: self.a,
            mean_level: b,
            dt,
            sigma: self.sigma,
            sqrt_dt: dt.sqrt(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_short_rate(&self) -> bool {
        self.short_rate
    }
}

/// Lognormal FX-rate driver: like GBM but with the interest-rate
/// differential as the risk-neutral drift (covered interest parity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FxRate {
    x0: f64,
    mu: f64,
    sigma: f64,
    rate_differential: f64,
    name: String,
}

impl FxRate {
    /// Creates an FX driver with spot `x0`, real-world drift `mu`,
    /// volatility `sigma` and domestic-minus-foreign rate differential.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `x0 <= 0` or
    /// `sigma < 0`.
    pub fn new(
        x0: f64,
        mu: f64,
        sigma: f64,
        rate_differential: f64,
    ) -> Result<Self, StochasticError> {
        if x0 <= 0.0 {
            return Err(StochasticError::InvalidParameter("x0 must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(FxRate {
            x0,
            mu,
            sigma,
            rate_differential,
            name: "fx".to_string(),
        })
    }
}

impl RiskDriver for FxRate {
    fn initial_value(&self) -> f64 {
        self.x0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.rate_differential,
        };
        state * ((drift - 0.5 * self.sigma * self.sigma) * dt + self.sigma * dt.sqrt() * shock)
            .exp()
    }

    fn step_coeffs(&self, dt: f64, measure: Measure) -> StepCoeffs {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.rate_differential,
        };
        StepCoeffs::Lognormal {
            log_drift: (drift - 0.5 * self.sigma * self.sigma) * dt,
            vol_sqrt_dt: self.sigma * dt.sqrt(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_math::rng::{stream_rng, StandardNormal};
    use disar_math::stats;

    fn simulate<D: RiskDriver>(
        d: &D,
        measure: Measure,
        t: f64,
        steps: usize,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let dt = t / steps as f64;
        (0..n)
            .map(|i| {
                let mut rng = stream_rng(seed, i as u64);
                let mut g = StandardNormal::new();
                let mut x = d.initial_value();
                for _ in 0..steps {
                    x = d.step(x, dt, g.sample(&mut rng), measure);
                }
                x
            })
            .collect()
    }

    #[test]
    fn gbm_risk_neutral_martingale() {
        // E_Q[S_T e^{-rT}] = S_0.
        let gbm = Gbm::new(100.0, 0.1, 0.25, 0.02).unwrap();
        let finals = simulate(&gbm, Measure::RiskNeutral, 1.0, 12, 50_000, 7);
        let disc = (-0.02f64).exp();
        let m = stats::mean(&finals) * disc;
        assert!((m - 100.0).abs() < 0.7, "martingale mean {m}");
    }

    #[test]
    fn gbm_real_world_drift_higher() {
        let gbm = Gbm::new(100.0, 0.10, 0.2, 0.02).unwrap();
        let p = simulate(&gbm, Measure::RealWorld, 1.0, 12, 20_000, 3);
        let q = simulate(&gbm, Measure::RiskNeutral, 1.0, 12, 20_000, 3);
        assert!(stats::mean(&p) > stats::mean(&q) + 4.0);
    }

    #[test]
    fn gbm_lognormal_variance() {
        // Var[ln S_T] = σ² T.
        let gbm = Gbm::new(1.0, 0.0, 0.3, 0.0).unwrap();
        let finals = simulate(&gbm, Measure::RiskNeutral, 2.0, 24, 40_000, 11);
        let logs: Vec<f64> = finals.iter().map(|s| s.ln()).collect();
        let v = stats::variance(&logs);
        assert!((v - 0.18).abs() < 0.01, "log variance {v}");
    }

    #[test]
    fn gbm_rejects_bad_params() {
        assert!(Gbm::new(0.0, 0.0, 0.1, 0.0).is_err());
        assert!(Gbm::new(1.0, 0.0, -0.1, 0.0).is_err());
    }

    #[test]
    fn vasicek_mean_reverts() {
        let v = Vasicek::new(0.10, 0.8, 0.03, 0.01, 0.0).unwrap();
        let finals = simulate(&v, Measure::RiskNeutral, 10.0, 120, 5_000, 5);
        let m = stats::mean(&finals);
        assert!((m - 0.03).abs() < 0.003, "long-run mean {m}");
    }

    #[test]
    fn vasicek_stationary_variance() {
        // Var_∞ = σ² / (2a).
        let v = Vasicek::new(0.03, 0.5, 0.03, 0.02, 0.0).unwrap();
        let finals = simulate(&v, Measure::RiskNeutral, 30.0, 360, 20_000, 9);
        let var = stats::variance(&finals);
        let expect = 0.02 * 0.02 / (2.0 * 0.5);
        assert!((var - expect).abs() < 0.1 * expect, "stationary var {var} vs {expect}");
    }

    #[test]
    fn vasicek_market_price_of_risk_shifts_p_mean() {
        let v = Vasicek::new(0.03, 0.5, 0.03, 0.02, 0.5).unwrap();
        assert!(v.long_run_mean(Measure::RealWorld) > v.long_run_mean(Measure::RiskNeutral));
        let p = simulate(&v, Measure::RealWorld, 20.0, 240, 10_000, 1);
        let q = simulate(&v, Measure::RiskNeutral, 20.0, 240, 10_000, 1);
        assert!(stats::mean(&p) > stats::mean(&q));
    }

    #[test]
    fn cir_stays_non_negative() {
        // Aggressive volatility, Feller violated — truncation must still
        // keep the path at or above zero.
        let c = Cir::short_rate(0.01, 0.3, 0.02, 0.5, 0.0).unwrap();
        assert!(!c.feller_condition());
        let mut rng = stream_rng(13, 0);
        let mut g = StandardNormal::new();
        let mut x = c.initial_value();
        for _ in 0..10_000 {
            x = c.step(x, 1.0 / 12.0, g.sample(&mut rng), Measure::RiskNeutral);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn cir_mean_reverts() {
        let c = Cir::short_rate(0.08, 1.0, 0.03, 0.05, 0.0).unwrap();
        assert!(c.feller_condition());
        let finals = simulate(&c, Measure::RiskNeutral, 10.0, 120, 10_000, 21);
        let m = stats::mean(&finals);
        assert!((m - 0.03).abs() < 0.003, "CIR mean {m}");
    }

    #[test]
    fn cir_rejects_bad_params() {
        assert!(Cir::short_rate(-0.01, 1.0, 0.03, 0.05, 0.0).is_err());
        assert!(Cir::short_rate(0.01, 0.0, 0.03, 0.05, 0.0).is_err());
        assert!(Cir::default_intensity(0.01, 1.0, -0.1, 0.05).is_err());
    }

    #[test]
    fn fx_parity_drift() {
        let fx = FxRate::new(1.1, 0.02, 0.1, 0.015).unwrap();
        let finals = simulate(&fx, Measure::RiskNeutral, 1.0, 12, 40_000, 17);
        let m = stats::mean(&finals);
        let expect = 1.1 * (0.015f64).exp();
        assert!((m - expect).abs() < 0.005, "fx mean {m} vs {expect}");
    }

    #[test]
    fn short_rate_flags() {
        assert!(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.0).unwrap().is_short_rate());
        assert!(Cir::short_rate(0.02, 0.5, 0.03, 0.01, 0.0).unwrap().is_short_rate());
        assert!(!Cir::default_intensity(0.02, 0.5, 0.03, 0.01).unwrap().is_short_rate());
        assert!(!Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap().is_short_rate());
    }

    /// A driver that deliberately keeps the default `Generic` coefficients,
    /// exercising `step_block`'s scalar fallback loop.
    struct Drifting;

    impl RiskDriver for Drifting {
        fn initial_value(&self) -> f64 {
            1.0
        }
        fn step(&self, state: f64, dt: f64, shock: f64, _measure: Measure) -> f64 {
            state + dt * 0.01 + shock * 0.1
        }
        fn name(&self) -> &str {
            "drifting"
        }
    }

    fn assert_block_matches_scalar<D: RiskDriver>(d: &D, dt: f64, lo: f64, hi: f64) {
        // Block lengths straddling the STEP_CHUNK boundary exercise both the
        // unrolled chunks and the scalar remainder.
        for measure in [Measure::RealWorld, Measure::RiskNeutral] {
            let coeffs = d.step_coeffs(dt, measure);
            for len in [1usize, 2, 7, 8, 9, 16, 19] {
                let mut rng = stream_rng(97, len as u64);
                let mut g = StandardNormal::new();
                let states: Vec<f64> = (0..len)
                    .map(|i| lo + (hi - lo) * (i as f64 / len.max(1) as f64))
                    .collect();
                let shocks: Vec<f64> = (0..len).map(|_| g.sample(&mut rng)).collect();
                let expect: Vec<f64> = states
                    .iter()
                    .zip(&shocks)
                    .map(|(s, z)| d.step(*s, dt, *z, measure))
                    .collect();
                let mut block = states.clone();
                d.step_block(&mut block, &shocks, dt, &coeffs, measure);
                for (i, (a, b)) in block.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} lane {i} of {len}: {a} vs {b}",
                        d.name()
                    );
                }
            }
        }
    }

    #[test]
    fn step_block_bitwise_matches_scalar_all_drivers() {
        assert_block_matches_scalar(&Gbm::new(100.0, 0.07, 0.2, 0.02).unwrap(), 1.0 / 12.0, 50.0, 150.0);
        assert_block_matches_scalar(
            &Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.2).unwrap(),
            1.0 / 12.0,
            -0.05,
            0.10,
        );
        // Negative states exercise CIR's full-truncation branch.
        assert_block_matches_scalar(
            &Cir::short_rate(0.02, 0.8, 0.03, 0.4, 0.1).unwrap(),
            1.0 / 12.0,
            -0.02,
            0.12,
        );
        assert_block_matches_scalar(&FxRate::new(1.1, 0.02, 0.1, 0.015).unwrap(), 1.0 / 12.0, 0.8, 1.4);
        assert_block_matches_scalar(&Drifting, 1.0 / 12.0, -1.0, 1.0);
    }

    #[test]
    fn generic_coeffs_apply_writes_nothing() {
        let mut states = [1.0, 2.0];
        assert!(!StepCoeffs::Generic.apply(&mut states, &[0.3, -0.4]));
        assert_eq!(states, [1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_block_lengths_panic() {
        let gbm = Gbm::new(100.0, 0.07, 0.2, 0.02).unwrap();
        let coeffs = gbm.step_coeffs(1.0 / 12.0, Measure::RealWorld);
        let mut states = [100.0, 101.0];
        coeffs.apply(&mut states, &[0.1]);
    }
}
