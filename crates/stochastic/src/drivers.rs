//! Risk-driver models.
//!
//! Each driver evolves one state variable on a discrete time grid given a
//! standard-normal shock per step. Models know both probability measures:
//!
//! - under the **real-world measure `P`** the drift contains risk premia —
//!   this is what the paper's *outer* (natural) simulations use;
//! - under the **risk-neutral measure `Q`** the drift is the risk-free one —
//!   used by the *inner* simulations for market-consistent valuation.

use crate::scenario::Measure;
use crate::StochasticError;
use serde::{Deserialize, Serialize};

/// A one-dimensional stochastic risk driver.
///
/// Implementations must be deterministic functions of `(state, dt, shock,
/// measure)` so that scenario generation is reproducible.
pub trait RiskDriver: Send + Sync {
    /// The driver's value at `t = 0`.
    fn initial_value(&self) -> f64;

    /// Advances the state by one step of length `dt` (in years) given a
    /// standard-normal `shock`.
    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64;

    /// Short human-readable name, e.g. `"equity"`.
    fn name(&self) -> &str;

    /// `true` when this driver is a short rate usable for discounting.
    fn is_short_rate(&self) -> bool {
        false
    }
}

/// Geometric Brownian motion — the classical equity model.
///
/// Under `P`: `dS = μ S dt + σ S dW`; under `Q`: `dS = r S dt + σ S dW`.
/// The step is exact (lognormal), so no discretization bias is introduced.
///
/// # Example
///
/// ```
/// use disar_stochastic::drivers::{Gbm, RiskDriver};
/// use disar_stochastic::scenario::Measure;
///
/// let gbm = Gbm::new(100.0, 0.08, 0.2, 0.03).unwrap();
/// let s1 = gbm.step(100.0, 1.0, 0.0, Measure::RiskNeutral);
/// // With zero shock the exact step is S exp((r - σ²/2) dt).
/// assert!((s1 - 100.0 * (0.03f64 - 0.02).exp()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbm {
    s0: f64,
    mu: f64,
    sigma: f64,
    risk_free: f64,
    name: String,
}

impl Gbm {
    /// Creates a GBM with initial value `s0`, real-world drift `mu`,
    /// volatility `sigma` and risk-free rate `risk_free` (the `Q` drift).
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `s0 <= 0` or
    /// `sigma < 0`.
    pub fn new(s0: f64, mu: f64, sigma: f64, risk_free: f64) -> Result<Self, StochasticError> {
        if s0 <= 0.0 {
            return Err(StochasticError::InvalidParameter("s0 must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Gbm {
            s0,
            mu,
            sigma,
            risk_free,
            name: "equity".to_string(),
        })
    }

    /// Renames the driver (useful with several equity indices).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Volatility parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Gbm {
    fn initial_value(&self) -> f64 {
        self.s0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.risk_free,
        };
        state * ((drift - 0.5 * self.sigma * self.sigma) * dt + self.sigma * dt.sqrt() * shock)
            .exp()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Vasicek short-rate model: `dr = a (b − r) dt + σ dW`.
///
/// Under `P` the long-run level is shifted by the market price of risk
/// `λ`: `b_P = b_Q + λ σ / a`. The transition is exact (Ornstein–Uhlenbeck
/// Gaussian step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vasicek {
    r0: f64,
    a: f64,
    b: f64,
    sigma: f64,
    lambda: f64,
    name: String,
}

impl Vasicek {
    /// Creates a Vasicek model with initial rate `r0`, mean-reversion speed
    /// `a`, risk-neutral long-run mean `b`, volatility `sigma` and market
    /// price of risk `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `a <= 0` or
    /// `sigma < 0`.
    pub fn new(r0: f64, a: f64, b: f64, sigma: f64, lambda: f64) -> Result<Self, StochasticError> {
        if a <= 0.0 {
            return Err(StochasticError::InvalidParameter("a must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Vasicek {
            r0,
            a,
            b,
            sigma,
            lambda,
            name: "short-rate".to_string(),
        })
    }

    /// The effective long-run mean under the given measure.
    pub fn long_run_mean(&self, measure: Measure) -> f64 {
        match measure {
            Measure::RiskNeutral => self.b,
            Measure::RealWorld => self.b + self.lambda * self.sigma / self.a,
        }
    }

    /// Mean-reversion speed `a`.
    pub fn speed(&self) -> f64 {
        self.a
    }

    /// Volatility `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Vasicek {
    fn initial_value(&self) -> f64 {
        self.r0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let b = self.long_run_mean(measure);
        let e = (-self.a * dt).exp();
        let mean = b + (state - b) * e;
        let var = self.sigma * self.sigma / (2.0 * self.a) * (1.0 - e * e);
        mean + var.sqrt() * shock
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_short_rate(&self) -> bool {
        true
    }
}

/// Cox–Ingersoll–Ross process: `dx = a (b − x) dt + σ √x dW`, kept
/// non-negative with the full-truncation Euler scheme.
///
/// Used both as an alternative short-rate model and as a default-intensity
/// (credit) driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cir {
    x0: f64,
    a: f64,
    b: f64,
    sigma: f64,
    lambda: f64,
    short_rate: bool,
    name: String,
}

impl Cir {
    /// Creates a CIR short-rate model.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `x0 < 0`, `a <= 0`,
    /// `b < 0` or `sigma < 0`.
    pub fn short_rate(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
        lambda: f64,
    ) -> Result<Self, StochasticError> {
        Self::validated(x0, a, b, sigma, lambda, true, "short-rate-cir")
    }

    /// Creates a CIR default-intensity (credit-spread) driver.
    ///
    /// # Errors
    ///
    /// Same domain checks as [`Cir::short_rate`].
    pub fn default_intensity(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
    ) -> Result<Self, StochasticError> {
        Self::validated(x0, a, b, sigma, 0.0, false, "default-intensity")
    }

    fn validated(
        x0: f64,
        a: f64,
        b: f64,
        sigma: f64,
        lambda: f64,
        short_rate: bool,
        name: &str,
    ) -> Result<Self, StochasticError> {
        if x0 < 0.0 {
            return Err(StochasticError::InvalidParameter("x0 must be >= 0"));
        }
        if a <= 0.0 {
            return Err(StochasticError::InvalidParameter("a must be positive"));
        }
        if b < 0.0 {
            return Err(StochasticError::InvalidParameter("b must be >= 0"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(Cir {
            x0,
            a,
            b,
            sigma,
            lambda,
            short_rate,
            name: name.to_string(),
        })
    }

    /// `true` when `2ab ≥ σ²` (the Feller condition: the exact process
    /// never touches zero).
    pub fn feller_condition(&self) -> bool {
        2.0 * self.a * self.b >= self.sigma * self.sigma
    }

    /// Mean-reversion speed `a`.
    pub fn speed(&self) -> f64 {
        self.a
    }

    /// Risk-neutral long-run level `b`.
    pub fn long_run(&self) -> f64 {
        self.b
    }

    /// Volatility `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl RiskDriver for Cir {
    fn initial_value(&self) -> f64 {
        self.x0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let b = match measure {
            Measure::RiskNeutral => self.b,
            Measure::RealWorld => self.b + self.lambda * self.sigma / self.a,
        };
        let xp = state.max(0.0);
        let next = state + self.a * (b - xp) * dt + self.sigma * xp.sqrt() * dt.sqrt() * shock;
        next.max(0.0)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn is_short_rate(&self) -> bool {
        self.short_rate
    }
}

/// Lognormal FX-rate driver: like GBM but with the interest-rate
/// differential as the risk-neutral drift (covered interest parity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FxRate {
    x0: f64,
    mu: f64,
    sigma: f64,
    rate_differential: f64,
    name: String,
}

impl FxRate {
    /// Creates an FX driver with spot `x0`, real-world drift `mu`,
    /// volatility `sigma` and domestic-minus-foreign rate differential.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidParameter`] if `x0 <= 0` or
    /// `sigma < 0`.
    pub fn new(
        x0: f64,
        mu: f64,
        sigma: f64,
        rate_differential: f64,
    ) -> Result<Self, StochasticError> {
        if x0 <= 0.0 {
            return Err(StochasticError::InvalidParameter("x0 must be positive"));
        }
        if sigma < 0.0 {
            return Err(StochasticError::InvalidParameter("sigma must be >= 0"));
        }
        Ok(FxRate {
            x0,
            mu,
            sigma,
            rate_differential,
            name: "fx".to_string(),
        })
    }
}

impl RiskDriver for FxRate {
    fn initial_value(&self) -> f64 {
        self.x0
    }

    fn step(&self, state: f64, dt: f64, shock: f64, measure: Measure) -> f64 {
        let drift = match measure {
            Measure::RealWorld => self.mu,
            Measure::RiskNeutral => self.rate_differential,
        };
        state * ((drift - 0.5 * self.sigma * self.sigma) * dt + self.sigma * dt.sqrt() * shock)
            .exp()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_math::rng::{stream_rng, StandardNormal};
    use disar_math::stats;

    fn simulate<D: RiskDriver>(
        d: &D,
        measure: Measure,
        t: f64,
        steps: usize,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let dt = t / steps as f64;
        (0..n)
            .map(|i| {
                let mut rng = stream_rng(seed, i as u64);
                let mut g = StandardNormal::new();
                let mut x = d.initial_value();
                for _ in 0..steps {
                    x = d.step(x, dt, g.sample(&mut rng), measure);
                }
                x
            })
            .collect()
    }

    #[test]
    fn gbm_risk_neutral_martingale() {
        // E_Q[S_T e^{-rT}] = S_0.
        let gbm = Gbm::new(100.0, 0.1, 0.25, 0.02).unwrap();
        let finals = simulate(&gbm, Measure::RiskNeutral, 1.0, 12, 50_000, 7);
        let disc = (-0.02f64).exp();
        let m = stats::mean(&finals) * disc;
        assert!((m - 100.0).abs() < 0.7, "martingale mean {m}");
    }

    #[test]
    fn gbm_real_world_drift_higher() {
        let gbm = Gbm::new(100.0, 0.10, 0.2, 0.02).unwrap();
        let p = simulate(&gbm, Measure::RealWorld, 1.0, 12, 20_000, 3);
        let q = simulate(&gbm, Measure::RiskNeutral, 1.0, 12, 20_000, 3);
        assert!(stats::mean(&p) > stats::mean(&q) + 4.0);
    }

    #[test]
    fn gbm_lognormal_variance() {
        // Var[ln S_T] = σ² T.
        let gbm = Gbm::new(1.0, 0.0, 0.3, 0.0).unwrap();
        let finals = simulate(&gbm, Measure::RiskNeutral, 2.0, 24, 40_000, 11);
        let logs: Vec<f64> = finals.iter().map(|s| s.ln()).collect();
        let v = stats::variance(&logs);
        assert!((v - 0.18).abs() < 0.01, "log variance {v}");
    }

    #[test]
    fn gbm_rejects_bad_params() {
        assert!(Gbm::new(0.0, 0.0, 0.1, 0.0).is_err());
        assert!(Gbm::new(1.0, 0.0, -0.1, 0.0).is_err());
    }

    #[test]
    fn vasicek_mean_reverts() {
        let v = Vasicek::new(0.10, 0.8, 0.03, 0.01, 0.0).unwrap();
        let finals = simulate(&v, Measure::RiskNeutral, 10.0, 120, 5_000, 5);
        let m = stats::mean(&finals);
        assert!((m - 0.03).abs() < 0.003, "long-run mean {m}");
    }

    #[test]
    fn vasicek_stationary_variance() {
        // Var_∞ = σ² / (2a).
        let v = Vasicek::new(0.03, 0.5, 0.03, 0.02, 0.0).unwrap();
        let finals = simulate(&v, Measure::RiskNeutral, 30.0, 360, 20_000, 9);
        let var = stats::variance(&finals);
        let expect = 0.02 * 0.02 / (2.0 * 0.5);
        assert!((var - expect).abs() < 0.1 * expect, "stationary var {var} vs {expect}");
    }

    #[test]
    fn vasicek_market_price_of_risk_shifts_p_mean() {
        let v = Vasicek::new(0.03, 0.5, 0.03, 0.02, 0.5).unwrap();
        assert!(v.long_run_mean(Measure::RealWorld) > v.long_run_mean(Measure::RiskNeutral));
        let p = simulate(&v, Measure::RealWorld, 20.0, 240, 10_000, 1);
        let q = simulate(&v, Measure::RiskNeutral, 20.0, 240, 10_000, 1);
        assert!(stats::mean(&p) > stats::mean(&q));
    }

    #[test]
    fn cir_stays_non_negative() {
        // Aggressive volatility, Feller violated — truncation must still
        // keep the path at or above zero.
        let c = Cir::short_rate(0.01, 0.3, 0.02, 0.5, 0.0).unwrap();
        assert!(!c.feller_condition());
        let mut rng = stream_rng(13, 0);
        let mut g = StandardNormal::new();
        let mut x = c.initial_value();
        for _ in 0..10_000 {
            x = c.step(x, 1.0 / 12.0, g.sample(&mut rng), Measure::RiskNeutral);
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn cir_mean_reverts() {
        let c = Cir::short_rate(0.08, 1.0, 0.03, 0.05, 0.0).unwrap();
        assert!(c.feller_condition());
        let finals = simulate(&c, Measure::RiskNeutral, 10.0, 120, 10_000, 21);
        let m = stats::mean(&finals);
        assert!((m - 0.03).abs() < 0.003, "CIR mean {m}");
    }

    #[test]
    fn cir_rejects_bad_params() {
        assert!(Cir::short_rate(-0.01, 1.0, 0.03, 0.05, 0.0).is_err());
        assert!(Cir::short_rate(0.01, 0.0, 0.03, 0.05, 0.0).is_err());
        assert!(Cir::default_intensity(0.01, 1.0, -0.1, 0.05).is_err());
    }

    #[test]
    fn fx_parity_drift() {
        let fx = FxRate::new(1.1, 0.02, 0.1, 0.015).unwrap();
        let finals = simulate(&fx, Measure::RiskNeutral, 1.0, 12, 40_000, 17);
        let m = stats::mean(&finals);
        let expect = 1.1 * (0.015f64).exp();
        assert!((m - expect).abs() < 0.005, "fx mean {m} vs {expect}");
    }

    #[test]
    fn short_rate_flags() {
        assert!(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.0).unwrap().is_short_rate());
        assert!(Cir::short_rate(0.02, 0.5, 0.03, 0.01, 0.0).unwrap().is_short_rate());
        assert!(!Cir::default_intensity(0.02, 0.5, 0.03, 0.01).unwrap().is_short_rate());
        assert!(!Gbm::new(1.0, 0.0, 0.1, 0.0).unwrap().is_short_rate());
    }
}
