//! Stochastic risk-driver models and scenario generation for the DISAR
//! reproduction.
//!
//! DISAR values profit-sharing life policies "using a stochastic model
//! considering several sources of financial uncertainty such as interest
//! rate, equity, currency and credit/default risk" (§II of the paper), with
//! financial risks possibly correlated. This crate provides:
//!
//! - [`drivers`]: the individual risk-driver models — geometric Brownian
//!   motion for equity, Vasicek and Cox–Ingersoll–Ross for the short rate,
//!   lognormal FX, and a CIR default intensity — each aware of the
//!   real-world measure `P` (with risk premia) and the risk-neutral measure
//!   `Q` used for market-consistent valuation;
//! - [`correlation`]: a validated correlation matrix that turns independent
//!   Gaussian shocks into correlated ones via Cholesky;
//! - [`scenario`]: the time grid, the scenario generator, and the
//!   [`scenario::ScenarioSet`] container holding simulated paths. The
//!   generator supports the *nested* setup of the paper: outer paths under
//!   `P` from `t = 0` to `t = 1`, then inner paths under `Q` from `t = 1`
//!   to maturity, re-anchored at each outer endpoint.
//!
//! # Example
//!
//! ```
//! use disar_stochastic::drivers::Gbm;
//! use disar_stochastic::scenario::{Measure, ScenarioGenerator, TimeGrid};
//!
//! let gen = ScenarioGenerator::builder()
//!     .driver(Box::new(Gbm::new(100.0, 0.05, 0.2, 0.02).unwrap()))
//!     .grid(TimeGrid::new(1.0, 12).unwrap())
//!     .build()
//!     .unwrap();
//! let set = gen.generate(Measure::RealWorld, 100, 42, None).unwrap();
//! assert_eq!(set.n_paths(), 100);
//! ```

pub mod bonds;
pub mod correlation;
pub mod drivers;
pub mod scenario;

mod error;

pub use bonds::BondPricing;
pub use correlation::CorrelationMatrix;
pub use error::StochasticError;
