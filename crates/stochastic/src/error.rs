use std::error::Error;
use std::fmt;

/// Error type for model construction and scenario generation.
#[derive(Debug, Clone, PartialEq)]
pub enum StochasticError {
    /// A model parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The correlation matrix was malformed (not square / not symmetric /
    /// diagonal not one / not positive definite).
    InvalidCorrelation(String),
    /// The generator was configured inconsistently (e.g. correlation
    /// dimension does not match the driver count, or no drivers at all).
    InvalidConfiguration(String),
    /// A request referenced a path/driver/time index outside the set.
    IndexOutOfRange(&'static str),
}

impl fmt::Display for StochasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StochasticError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StochasticError::InvalidCorrelation(what) => {
                write!(f, "invalid correlation matrix: {what}")
            }
            StochasticError::InvalidConfiguration(what) => {
                write!(f, "invalid generator configuration: {what}")
            }
            StochasticError::IndexOutOfRange(what) => write!(f, "index out of range: {what}"),
        }
    }
}

impl Error for StochasticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = StochasticError::InvalidParameter("sigma must be positive");
        assert!(e.to_string().contains("sigma"));
    }
}
