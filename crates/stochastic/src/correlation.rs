//! Correlated Gaussian shocks.
//!
//! "Actuarial risks are assumed to be mutually independent, while financial
//! risks are possibly correlated" (§II). A [`CorrelationMatrix`] validates a
//! user-supplied correlation structure and exposes the Cholesky factor that
//! turns i.i.d. standard normals into correlated ones.

use crate::StochasticError;
use disar_math::Matrix;
use serde::{Deserialize, Serialize};

/// A validated correlation matrix with a precomputed Cholesky factor.
///
/// # Example
///
/// ```
/// use disar_stochastic::CorrelationMatrix;
///
/// let c = CorrelationMatrix::new(vec![
///     vec![1.0, 0.5],
///     vec![0.5, 1.0],
/// ]).unwrap();
/// let z = c.correlate(&[1.0, 0.0]);
/// assert_eq!(z[0], 1.0);
/// assert!((z[1] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    dim: usize,
    chol: Matrix,
}

impl CorrelationMatrix {
    /// Validates and factorizes a correlation matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StochasticError::InvalidCorrelation`] unless the input is
    /// square, symmetric, has a unit diagonal, entries in `[-1, 1]`, and is
    /// positive definite.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self, StochasticError> {
        let n = rows.len();
        if n == 0 {
            return Err(StochasticError::InvalidCorrelation("empty matrix".into()));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.len() != n {
                return Err(StochasticError::InvalidCorrelation(format!(
                    "row {i} has length {} but the matrix has {n} rows",
                    r.len()
                )));
            }
            if (r[i] - 1.0).abs() > 1e-12 {
                return Err(StochasticError::InvalidCorrelation(format!(
                    "diagonal element ({i},{i}) is {} (must be 1)",
                    r[i]
                )));
            }
            for (j, &v) in r.iter().enumerate() {
                if !(-1.0..=1.0).contains(&v) {
                    return Err(StochasticError::InvalidCorrelation(format!(
                        "entry ({i},{j}) = {v} outside [-1, 1]"
                    )));
                }
                if (v - rows[j][i]).abs() > 1e-12 {
                    return Err(StochasticError::InvalidCorrelation(format!(
                        "matrix not symmetric at ({i},{j})"
                    )));
                }
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&refs)
            .map_err(|e| StochasticError::InvalidCorrelation(e.to_string()))?;
        let chol = m
            .cholesky()
            .map_err(|e| StochasticError::InvalidCorrelation(e.to_string()))?;
        Ok(CorrelationMatrix { dim: n, chol })
    }

    /// The identity correlation (independent drivers) of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "dimension must be positive");
        CorrelationMatrix {
            dim: n,
            chol: Matrix::identity(n),
        }
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maps a vector of independent N(0,1) draws to correlated ones
    /// (`L · z`).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim, "shock dimension mismatch");
        (0..self.dim)
            .map(|i| (0..=i).map(|j| self.chol[(i, j)] * z[j]).sum())
            .collect()
    }

    /// In-place variant of [`CorrelationMatrix::correlate`] writing into
    /// `out` (hot-loop friendly).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the dimension.
    pub fn correlate_into(&self, z: &[f64], out: &mut [f64]) {
        assert_eq!(z.len(), self.dim, "shock dimension mismatch");
        assert_eq!(out.len(), self.dim, "output dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, zj) in z.iter().enumerate().take(i + 1) {
                s += self.chol[(i, j)] * zj;
            }
            *o = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_math::rng::{stream_rng, StandardNormal};
    use disar_math::stats;

    #[test]
    fn rejects_malformed_matrices() {
        assert!(CorrelationMatrix::new(vec![]).is_err());
        assert!(CorrelationMatrix::new(vec![vec![1.0, 0.5]]).is_err());
        assert!(CorrelationMatrix::new(vec![vec![0.9]]).is_err());
        assert!(
            CorrelationMatrix::new(vec![vec![1.0, 0.7], vec![0.2, 1.0]]).is_err(),
            "asymmetric"
        );
        assert!(
            CorrelationMatrix::new(vec![vec![1.0, 1.5], vec![1.5, 1.0]]).is_err(),
            "out of range"
        );
        // Not positive definite: |rho|=1 with 3 vars inconsistent.
        assert!(CorrelationMatrix::new(vec![
            vec![1.0, 0.9, -0.9],
            vec![0.9, 1.0, 0.9],
            vec![-0.9, 0.9, 1.0],
        ])
        .is_err());
    }

    #[test]
    fn identity_passes_through() {
        let c = CorrelationMatrix::identity(3);
        let z = vec![0.3, -1.2, 2.0];
        assert_eq!(c.correlate(&z), z);
    }

    #[test]
    fn empirical_correlation_matches_target() {
        let rho = 0.65;
        let c = CorrelationMatrix::new(vec![vec![1.0, rho], vec![rho, 1.0]]).unwrap();
        let mut rng = stream_rng(2, 0);
        let mut g = StandardNormal::new();
        let n = 100_000;
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut out = vec![0.0; 2];
        for _ in 0..n {
            let z = [g.sample(&mut rng), g.sample(&mut rng)];
            c.correlate_into(&z, &mut out);
            a.push(out[0]);
            b.push(out[1]);
        }
        let emp = stats::correlation(&a, &b);
        assert!((emp - rho).abs() < 0.01, "empirical rho {emp}");
        // Marginals stay standard normal.
        assert!(stats::std_dev(&b) - 1.0 < 0.01);
    }

    #[test]
    fn correlate_into_matches_correlate() {
        let c = CorrelationMatrix::new(vec![
            vec![1.0, 0.3, 0.1],
            vec![0.3, 1.0, -0.2],
            vec![0.1, -0.2, 1.0],
        ])
        .unwrap();
        let z = [0.5, -0.7, 1.1];
        let v1 = c.correlate(&z);
        let mut v2 = vec![0.0; 3];
        c.correlate_into(&z, &mut v2);
        assert_eq!(v1, v2);
    }
}
