//! Property-based tests of the stochastic substrate.

use disar_stochastic::drivers::{Cir, FxRate, Gbm, RiskDriver, Vasicek};
use disar_stochastic::scenario::{
    Measure, ScenarioBuffer, ScenarioGenerator, ScenarioSet, ScenarioView, TimeGrid,
};
use disar_stochastic::CorrelationMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GBM paths stay strictly positive whatever the shocks.
    #[test]
    fn gbm_positive(
        s0 in 0.1f64..1000.0,
        mu in -0.5f64..0.5,
        sigma in 0.0f64..1.0,
        shock in -6.0f64..6.0,
        dt in 0.001f64..1.0,
    ) {
        let g = Gbm::new(s0, mu, sigma, 0.02).expect("valid");
        let next = g.step(s0, dt, shock, Measure::RealWorld);
        prop_assert!(next > 0.0);
        prop_assert!(next.is_finite());
    }

    /// CIR full-truncation never goes negative.
    #[test]
    fn cir_non_negative(
        x0 in 0.0f64..0.5,
        a in 0.01f64..3.0,
        b in 0.0f64..0.3,
        sigma in 0.0f64..1.0,
        shock in -6.0f64..6.0,
        state in -0.1f64..0.5, // even a (numerically) negative incoming state
    ) {
        let c = Cir::short_rate(x0, a, b, sigma, 0.0).expect("valid");
        let next = c.step(state, 1.0 / 12.0, shock, Measure::RiskNeutral);
        prop_assert!(next >= 0.0);
    }

    /// Vasicek's exact step is linear in the shock with the documented
    /// conditional moments.
    #[test]
    fn vasicek_conditional_moments(
        r in -0.05f64..0.15,
        a in 0.05f64..2.0,
        b in 0.0f64..0.1,
        sigma in 0.0001f64..0.05,
        dt in 0.01f64..1.0,
    ) {
        let v = Vasicek::new(r, a, b, sigma, 0.0).expect("valid");
        let at_zero = v.step(r, dt, 0.0, Measure::RiskNeutral);
        let e = (-a * dt).exp();
        prop_assert!((at_zero - (b + (r - b) * e)).abs() < 1e-12);
        let plus = v.step(r, dt, 1.0, Measure::RiskNeutral);
        let sd = (sigma * sigma / (2.0 * a) * (1.0 - e * e)).sqrt();
        prop_assert!((plus - at_zero - sd).abs() < 1e-12);
    }

    /// FX under parity with zero shock compounds at the rate differential.
    #[test]
    fn fx_parity_deterministic_step(
        x0 in 0.1f64..10.0,
        diff in -0.05f64..0.05,
        dt in 0.01f64..1.0,
    ) {
        let f = FxRate::new(x0, 0.0, 0.0, diff).expect("valid");
        let next = f.step(x0, dt, 0.0, Measure::RiskNeutral);
        prop_assert!((next - x0 * (diff * dt).exp()).abs() < 1e-12);
    }

    /// Any correlation matrix built as ρ on the off-diagonal with |ρ| < 1
    /// is valid for dimension 2, and correlate preserves the first shock.
    #[test]
    fn two_dim_correlation_valid(rho in -0.99f64..0.99, z0 in -3.0f64..3.0, z1 in -3.0f64..3.0) {
        let c = CorrelationMatrix::new(vec![vec![1.0, rho], vec![rho, 1.0]]).expect("PD for |rho|<1");
        let out = c.correlate(&[z0, z1]);
        prop_assert!((out[0] - z0).abs() < 1e-12);
        // Cholesky row: out[1] = rho z0 + sqrt(1-rho²) z1.
        let expect = rho * z0 + (1.0 - rho * rho).sqrt() * z1;
        prop_assert!((out[1] - expect).abs() < 1e-12);
    }

    /// Generated scenario sets are reproducible and respect anchoring.
    #[test]
    fn generation_reproducible_and_anchored(
        seed in 0u64..500,
        n_paths in 1usize..10,
        r0 in 0.0f64..0.08,
        s0 in 10.0f64..500.0,
    ) {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.0).expect("valid")))
            .driver(Box::new(Gbm::new(100.0, 0.05, 0.2, 0.02).expect("valid")))
            .grid(TimeGrid::new(2.0, 4).expect("valid"))
            .build()
            .expect("valid");
        let anchor = vec![r0, s0];
        let a = gen.generate(Measure::RiskNeutral, n_paths, seed, Some(&anchor)).expect("ok");
        let b = gen.generate(Measure::RiskNeutral, n_paths, seed, Some(&anchor)).expect("ok");
        prop_assert_eq!(&a, &b);
        for p in 0..n_paths {
            prop_assert_eq!(a.value(p, 0, 0), r0);
            prop_assert_eq!(a.value(p, 1, 0), s0);
        }
    }

    /// Discount factors are in (0, 1] for non-negative-rate models and
    /// non-increasing along the grid.
    #[test]
    fn discount_factors_monotone(seed in 0u64..300) {
        let gen = ScenarioGenerator::builder()
            .driver(Box::new(Cir::short_rate(0.03, 0.5, 0.03, 0.05, 0.0).expect("valid")))
            .grid(TimeGrid::new(5.0, 12).expect("valid"))
            .build()
            .expect("valid");
        let set = gen.generate(Measure::RiskNeutral, 2, seed, None).expect("ok");
        for p in 0..2 {
            let mut prev = 1.0;
            for step in 0..=set.grid().n_steps() {
                let df = set.discount_factor(p, step);
                prop_assert!(df > 0.0 && df <= 1.0 + 1e-12);
                prop_assert!(df <= prev + 1e-12);
                prev = df;
            }
        }
    }
}

/// The rate + equity generator the buffer-reuse properties run against.
fn buffered_generator() -> ScenarioGenerator {
    ScenarioGenerator::builder()
        .driver(Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.1).expect("valid")))
        .driver(Box::new(Gbm::new(100.0, 0.05, 0.2, 0.02).expect("valid")))
        .correlation(
            CorrelationMatrix::new(vec![vec![1.0, -0.3], vec![-0.3, 1.0]]).expect("valid"),
        )
        .grid(TimeGrid::new(2.0, 4).expect("valid"))
        .build()
        .expect("valid")
}

/// Every value, the layout metadata, and the per-step discount factors of a
/// buffer view must match the allocating reference set bit-for-bit.
fn assert_view_bitwise(view: &ScenarioView<'_>, reference: &ScenarioSet) -> Result<(), TestCaseError> {
    prop_assert_eq!(view.n_paths(), reference.n_paths());
    prop_assert_eq!(view.n_drivers(), reference.n_drivers());
    prop_assert_eq!(view.measure(), reference.measure());
    for p in 0..view.n_paths() {
        for d in 0..view.n_drivers() {
            for step in 0..=view.grid().n_steps() {
                prop_assert_eq!(
                    view.value(p, d, step).to_bits(),
                    reference.value(p, d, step).to_bits()
                );
            }
        }
        prop_assert_eq!(
            view.discount_factor(p, view.grid().n_steps()).to_bits(),
            reference.discount_factor(p, reference.grid().n_steps()).to_bits()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `generate_into` is bit-identical to the allocating `generate` for
    /// arbitrary measures, seeds and overrides — even when the buffer is
    /// polluted by a previous, differently-shaped antithetic fill.
    #[test]
    fn generate_into_bitwise_matches_generate(
        seed in 0u64..1000,
        pollute_seed in 0u64..1000,
        n_paths in 1usize..8,
        pollute_pairs in 1usize..7,
        risk_neutral in proptest::bool::ANY,
        with_override in proptest::bool::ANY,
        r0 in 0.0f64..0.08,
        s0 in 10.0f64..500.0,
    ) {
        let gen = buffered_generator();
        let measure = if risk_neutral { Measure::RiskNeutral } else { Measure::RealWorld };
        let overrides = [r0, s0];
        let ov = with_override.then_some(&overrides[..]);
        let reference = gen.generate(measure, n_paths, seed, ov).expect("ok");
        let mut buf = ScenarioBuffer::new();
        gen.generate_antithetic_into(Measure::RealWorld, pollute_pairs, pollute_seed, None, &mut buf)
            .expect("ok");
        gen.generate_into(measure, n_paths, seed, ov, &mut buf).expect("ok");
        assert_view_bitwise(&buf.view(), &reference)?;
    }

    /// Antithetic counterpart: `generate_antithetic_into` matches
    /// `generate_antithetic` bit-for-bit through a polluted buffer.
    #[test]
    fn generate_antithetic_into_bitwise_matches(
        seed in 0u64..1000,
        pollute_seed in 0u64..1000,
        n_pairs in 1usize..6,
        pollute_paths in 1usize..13,
        risk_neutral in proptest::bool::ANY,
        with_override in proptest::bool::ANY,
        r0 in 0.0f64..0.08,
        s0 in 10.0f64..500.0,
    ) {
        let gen = buffered_generator();
        let measure = if risk_neutral { Measure::RiskNeutral } else { Measure::RealWorld };
        let overrides = [r0, s0];
        let ov = with_override.then_some(&overrides[..]);
        let reference = gen.generate_antithetic(measure, n_pairs, seed, ov).expect("ok");
        let mut buf = ScenarioBuffer::new();
        gen.generate_into(Measure::RiskNeutral, pollute_paths, pollute_seed, None, &mut buf)
            .expect("ok");
        gen.generate_antithetic_into(measure, n_pairs, seed, ov, &mut buf).expect("ok");
        assert_view_bitwise(&buf.view(), &reference)?;
    }
}

// ---------------------------------------------------------------------------
// Block-kernel identity: step_block vs scalar step, and the lane-wise fill
// vs a frozen reimplementation of the scalar (pre-block) generation loop.
// ---------------------------------------------------------------------------

/// The lane widths every block-kernel identity property sweeps, chosen to
/// cover the scalar escape hatch, sub-chunk blocks, the exact `STEP_CHUNK`
/// width, and multi-chunk blocks.
const LANES: [usize; 5] = [1, 2, 4, 8, 16];

/// One of each built-in driver, with spiky parameters (CIR violating the
/// Feller condition) so the truncation branches get exercised.
fn kernel_drivers() -> Vec<Box<dyn RiskDriver>> {
    vec![
        Box::new(Vasicek::new(0.02, 0.5, 0.03, 0.01, 0.1).expect("valid")),
        Box::new(Gbm::new(100.0, 0.05, 0.2, 0.02).expect("valid")),
        Box::new(FxRate::new(1.1, 0.02, 0.1, 0.015).expect("valid")),
        Box::new(Cir::default_intensity(0.01, 0.3, 0.02, 0.5).expect("valid")),
    ]
}

fn kernel_correlation() -> CorrelationMatrix {
    CorrelationMatrix::new(vec![
        vec![1.0, -0.3, 0.1, 0.0],
        vec![-0.3, 1.0, 0.2, 0.0],
        vec![0.1, 0.2, 1.0, 0.0],
        vec![0.0, 0.0, 0.0, 1.0],
    ])
    .expect("valid")
}

fn kernel_generator() -> ScenarioGenerator {
    let mut b = ScenarioGenerator::builder();
    for d in kernel_drivers() {
        b = b.driver(d);
    }
    b.correlation(kernel_correlation())
        .grid(TimeGrid::new(1.5, 4).expect("valid"))
        .build()
        .expect("valid")
}

/// Frozen reimplementation of the scalar generation loop as it existed
/// before the block kernels: path-major iteration, one `RiskDriver::step`
/// call per `(path, step, driver)`. The lane-wise fill must reproduce this
/// to the bit for every lane width — this test pins the *old* semantics
/// rather than comparing the new code with itself.
#[allow(clippy::too_many_arguments)]
fn reference_scalar_paths(
    drivers: &[Box<dyn RiskDriver>],
    corr: &CorrelationMatrix,
    grid: TimeGrid,
    measure: Measure,
    n_units: usize,
    seed: u64,
    overrides: Option<&[f64]>,
    antithetic: bool,
) -> Vec<f64> {
    let n_drivers = drivers.len();
    let n_steps = grid.n_steps();
    let dt = grid.dt();
    let stride = n_steps + 1;
    let n_paths = if antithetic { 2 * n_units } else { n_units };
    let initials: Vec<f64> = match overrides {
        Some(o) => o.to_vec(),
        None => drivers.iter().map(|d| d.initial_value()).collect(),
    };
    let mut data = vec![0.0; n_paths * n_drivers * stride];
    let mut raw = vec![0.0; n_drivers];
    let mut shocks = vec![0.0; n_drivers];
    for unit in 0..n_units {
        let mut rng = disar_math::rng::stream_rng(seed, unit as u64);
        let mut gauss = disar_math::rng::StandardNormal::new();
        let mut state_pos = initials.clone();
        let mut state_neg = initials.clone();
        let p_pos = if antithetic { 2 * unit } else { unit };
        for d in 0..n_drivers {
            data[(p_pos * n_drivers + d) * stride] = initials[d];
            if antithetic {
                data[((p_pos + 1) * n_drivers + d) * stride] = initials[d];
            }
        }
        for step in 1..=n_steps {
            for z in raw.iter_mut() {
                *z = gauss.sample(&mut rng);
            }
            corr.correlate_into(&raw, &mut shocks);
            for d in 0..n_drivers {
                state_pos[d] = drivers[d].step(state_pos[d], dt, shocks[d], measure);
                data[(p_pos * n_drivers + d) * stride + step] = state_pos[d];
                if antithetic {
                    state_neg[d] = drivers[d].step(state_neg[d], dt, -shocks[d], measure);
                    data[((p_pos + 1) * n_drivers + d) * stride + step] = state_neg[d];
                }
            }
        }
    }
    data
}

fn assert_view_matches_flat(
    view: &ScenarioView<'_>,
    flat: &[f64],
    stride: usize,
) -> Result<(), TestCaseError> {
    for p in 0..view.n_paths() {
        for d in 0..view.n_drivers() {
            for step in 0..stride {
                let reference = flat[(p * view.n_drivers() + d) * stride + step];
                prop_assert_eq!(
                    view.value(p, d, step).to_bits(),
                    reference.to_bits(),
                    "path {} driver {} step {}",
                    p,
                    d,
                    step
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `step_block` is bit-identical to a per-lane scalar `step` loop for
    /// every built-in driver, arbitrary block lengths (chunk remainders
    /// included), states, shocks, step widths and measures.
    #[test]
    fn step_block_bitwise_matches_scalar(
        len in 1usize..40,
        dt in 0.001f64..1.0,
        risk_neutral in proptest::bool::ANY,
        state_seed in 0u64..1000,
        shock_seed in 0u64..1000,
    ) {
        let measure = if risk_neutral { Measure::RiskNeutral } else { Measure::RealWorld };
        // Shocks and (possibly negative) states from dedicated streams.
        let shocks = disar_math::rng::normal_vec(shock_seed, 0, len);
        let raw_states = disar_math::rng::normal_vec(state_seed, 1, len);
        for d in kernel_drivers() {
            let scale = d.initial_value();
            let states: Vec<f64> = raw_states.iter().map(|z| scale * (1.0 + 0.3 * z)).collect();
            let coeffs = d.step_coeffs(dt, measure);
            let expect: Vec<f64> = states
                .iter()
                .zip(&shocks)
                .map(|(s, z)| d.step(*s, dt, *z, measure))
                .collect();
            let mut block = states.clone();
            d.step_block(&mut block, &shocks, dt, &coeffs, measure);
            for (i, (a, b)) in block.iter().zip(&expect).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} lane {}", d.name(), i);
            }
        }
    }

    /// The lane-wise fill reproduces the frozen scalar reference loop to
    /// the bit for every lane width in {1, 2, 4, 8, 16} — plain and
    /// antithetic, with and without re-anchoring overrides.
    #[test]
    fn lane_fill_bitwise_matches_scalar_reference(
        seed in 0u64..1000,
        n_units in 1usize..12,
        risk_neutral in proptest::bool::ANY,
        with_override in proptest::bool::ANY,
        antithetic in proptest::bool::ANY,
        r0 in 0.0f64..0.08,
        s0 in 10.0f64..500.0,
        fx0 in 0.5f64..2.0,
        c0 in 0.0f64..0.05,
    ) {
        let gen = kernel_generator();
        let drivers = kernel_drivers();
        let corr = kernel_correlation();
        let measure = if risk_neutral { Measure::RiskNeutral } else { Measure::RealWorld };
        let overrides = [r0, s0, fx0, c0];
        let ov = with_override.then_some(&overrides[..]);
        let reference = reference_scalar_paths(
            &drivers, &corr, gen.grid(), measure, n_units, seed, ov, antithetic,
        );
        let stride = gen.grid().n_steps() + 1;
        let mut buf = ScenarioBuffer::new();
        for lane in LANES {
            if antithetic {
                gen.generate_antithetic_into_lanes(measure, n_units, seed, ov, &mut buf, lane)
                    .expect("ok");
            } else {
                gen.generate_into_lanes(measure, n_units, seed, ov, &mut buf, lane)
                    .expect("ok");
            }
            assert_view_matches_flat(&buf.view(), &reference, stride)?;
        }
    }

    /// Lane-width changes between fills never leak state: a buffer polluted
    /// by a fill at one lane width refilled at another matches a fresh
    /// fill exactly (metadata, values and discount factors).
    #[test]
    fn lane_refill_never_leaks_between_lane_widths(
        seed in 0u64..1000,
        pollute_seed in 0u64..1000,
        n_paths in 1usize..10,
        pollute_units in 1usize..10,
        lane_a in proptest::sample::select(LANES.to_vec()),
        lane_b in proptest::sample::select(LANES.to_vec()),
        pollute_antithetic in proptest::bool::ANY,
    ) {
        let gen = buffered_generator();
        let reference = gen.generate(Measure::RiskNeutral, n_paths, seed, None).expect("ok");
        let mut buf = ScenarioBuffer::new();
        if pollute_antithetic {
            gen.generate_antithetic_into_lanes(
                Measure::RealWorld, pollute_units, pollute_seed, None, &mut buf, lane_a,
            ).expect("ok");
        } else {
            gen.generate_into_lanes(
                Measure::RealWorld, pollute_units, pollute_seed, None, &mut buf, lane_a,
            ).expect("ok");
        }
        gen.generate_into_lanes(Measure::RiskNeutral, n_paths, seed, None, &mut buf, lane_b)
            .expect("ok");
        assert_view_bitwise(&buf.view(), &reference)?;
    }
}
