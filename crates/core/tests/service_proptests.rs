//! Property-based tests of the concurrent multi-tenant deploy service.
//!
//! The contract under test:
//!
//! 1. **per-tenant bit-identity** — for 1–8 concurrently submitting
//!    tenants under [`TransferPolicy::Isolated`], every tenant's outcome
//!    stream and final shard contents through [`DeployService`] equal
//!    that tenant running *alone*, sequentially, through
//!    [`TenantShardedDeployer`] — for any pipeline depth, queue capacity,
//!    ingest batch size, retrain cadence and auto/forced job mix;
//! 2. **backpressure** — a full submission queue rejects with
//!    [`disar_core::CoreError::Backpressure`], deterministically, and the
//!    admitted prefix still lands bit-identically;
//! 3. **snapshot-swap linearizability** — concurrent observers only ever
//!    see whole snapshots: generations monotone, families never
//!    half-rebuilt (each family's `trained_on` is per-key monotone across
//!    observed generations and never exceeds the records landed).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};
use disar_core::deploy::{DeployOutcome, DeployPolicy};
use disar_core::pipeline::PipelineJob;
use disar_core::service::{DeployService, ServiceConfig};
use disar_core::tenant::{TenantId, TenantShardedDeployer, TransferPolicy};
use disar_core::{CoreError, JobProfile};
use disar_engine::EebCharacteristics;
use proptest::prelude::*;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

fn workload(contracts: usize) -> Workload {
    Workload::new(
        30.0 * contracts as f64,
        0.02 * contracts as f64,
        0.8 * contracts as f64,
        0.05,
    )
    .expect("valid workload")
}

fn policy(min_kb_samples: usize, retrain_every: usize) -> DeployPolicy {
    DeployPolicy::builder(50_000.0)
        .max_nodes(4)
        .min_kb_samples(min_kb_samples)
        .retrain_every(retrain_every)
        .n_threads(1)
        .transfer(TransferPolicy::Isolated)
        .build()
}

fn tenant_seed(base_seed: u64, ix: usize) -> u64 {
    base_seed.wrapping_mul(1_000_003).wrapping_add(ix as u64)
}

/// Tenant `ix`'s job schedule: a deterministic auto/forced mix unique to
/// the tenant, so concurrent schedules never coincide.
fn schedule(ix: usize, n_jobs: usize, forced_every: usize) -> Vec<PipelineJob> {
    let names = InstanceCatalog::paper_catalog().names();
    (0..n_jobs)
        .map(|i| {
            let c = 60 + (i * 37 + ix * 13) % 320;
            if forced_every > 0 && i % forced_every == forced_every - 1 {
                PipelineJob::forced(
                    profile(c),
                    workload(c),
                    &names[(i + ix) % names.len()],
                    1 + i % 3,
                )
            } else {
                PipelineJob::auto(profile(c), workload(c))
            }
        })
        .collect()
}

/// Ground truth: the tenant alone, sequentially, through the solo two-key
/// deployer (fresh provider from the same seed).
fn solo_run(
    seed: u64,
    tenant: &TenantId,
    jobs: &[PipelineJob],
    pol: &DeployPolicy,
) -> (Vec<DeployOutcome>, TenantShardedDeployer) {
    let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
    let mut solo =
        TenantShardedDeployer::new(provider, *pol, seed).with_tenant(tenant.clone());
    let outcomes = jobs
        .iter()
        .map(|j| match &j.forced {
            Some((instance, n_nodes)) => solo
                .deploy_manual(&j.profile, &j.workload, instance, *n_nodes)
                .expect("solo deploys succeed"),
            None => solo
                .deploy(&j.profile, &j.workload)
                .expect("solo deploys succeed"),
        })
        .collect();
    (outcomes, solo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1: per-tenant bit-identity under concurrency. N tenants
    /// submit interleaved schedules; each tenant's outcomes and final
    /// shards equal its solo run.
    #[test]
    fn concurrent_tenants_bit_identical_to_solo(
        base_seed in 0u64..300,
        n_tenants in 1usize..=8,
        n_jobs in 8usize..16,
        min_kb_samples in 4usize..8,
        retrain_every in 1usize..4,
        forced_every in 0usize..5,
        depth in 1usize..4,
        batch_max in 1usize..9,
    ) {
        let pol = policy(min_kb_samples, retrain_every);
        let tenants: Vec<TenantId> =
            (0..n_tenants).map(|i| TenantId::new(format!("company-{i}"))).collect();
        let schedules: Vec<Vec<PipelineJob>> =
            (0..n_tenants).map(|i| schedule(i, n_jobs, forced_every)).collect();

        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            pol,
            ServiceConfig { depth, queue_capacity: n_jobs + 1, batch_max },
        ).expect("valid service");
        let handles: Vec<_> = tenants.iter().enumerate()
            .map(|(i, t)| service.register(t.clone(), tenant_seed(base_seed, i)).unwrap())
            .collect();
        service.start().expect("service starts");
        // Round-robin interleave so every tenant is genuinely concurrent.
        for j in 0..n_jobs {
            for (i, h) in handles.iter().enumerate() {
                h.submit(schedules[i][j].clone()).expect("queue sized for the schedule");
            }
        }
        for (i, h) in handles.into_iter().enumerate() {
            let run = h.finish().expect("tenant stream succeeds");
            let (expected, solo) =
                solo_run(tenant_seed(base_seed, i), &tenants[i], &schedules[i], &pol);
            prop_assert_eq!(
                &run.outcomes, &expected,
                "tenant {} diverged from its solo run", i
            );
            prop_assert_eq!(run.stats.jobs, n_jobs);
            // Final shard contents match the solo base shard-for-shard.
            for (key, shard) in solo.knowledge_base().shards() {
                let got = service.shard(&key.0, &key.1)
                    .expect("service holds every solo shard");
                prop_assert_eq!(got.records(), shard.records());
            }
        }
        let stats = service.join().expect("clean shutdown");
        prop_assert_eq!(stats.admitted, n_tenants * n_jobs);
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.pipeline.jobs, n_tenants * n_jobs);
    }

    /// Property 2: a full queue rejects deterministically with
    /// `Backpressure`, and the admitted prefix still lands bit-identically
    /// to the solo run over that prefix.
    #[test]
    fn backpressure_rejects_overflow_and_keeps_prefix_identity(
        base_seed in 0u64..300,
        queue_capacity in 1usize..6,
        overflow in 1usize..4,
        retrain_every in 1usize..3,
    ) {
        let pol = policy(4, retrain_every);
        let tenant = TenantId::new("company-0");
        let jobs = schedule(0, queue_capacity + overflow, 0);
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            pol,
            ServiceConfig { depth: 2, queue_capacity, batch_max: 4 },
        ).expect("valid service");
        let handle = service.register(tenant.clone(), tenant_seed(base_seed, 0)).unwrap();
        // The service is not started: nothing drains, so exactly
        // `queue_capacity` jobs fit and the rest bounce.
        for j in &jobs[..queue_capacity] {
            prop_assert!(handle.submit(j.clone()).is_ok());
        }
        for j in &jobs[queue_capacity..] {
            match handle.submit(j.clone()) {
                Err(CoreError::Backpressure { capacity }) => {
                    prop_assert_eq!(capacity, queue_capacity);
                }
                other => prop_assert!(false, "expected Backpressure, got {:?}", other),
            }
        }
        service.start().expect("service starts");
        let run = handle.finish().expect("admitted prefix succeeds");
        let (expected, _) = solo_run(
            tenant_seed(base_seed, 0), &tenant, &jobs[..queue_capacity], &pol,
        );
        prop_assert_eq!(run.outcomes, expected);
        let stats = service.join().expect("clean shutdown");
        prop_assert_eq!(stats.submitted, queue_capacity + overflow);
        prop_assert_eq!(stats.admitted, queue_capacity);
        prop_assert_eq!(stats.rejected, overflow);
        prop_assert_eq!(stats.max_queue_depth, queue_capacity);
    }

    /// Property 3: snapshot swaps are linearizable from a concurrent
    /// observer's point of view — generations move forward only, and a
    /// family observed at a later generation was trained on at least as
    /// many records as at any earlier one (no half-rebuilt snapshot is
    /// ever visible).
    #[test]
    fn snapshot_swaps_are_linearizable(
        base_seed in 0u64..300,
        n_tenants in 2usize..5,
        n_jobs in 8usize..14,
        batch_max in 1usize..6,
    ) {
        let pol = policy(4, 1);
        let tenants: Vec<TenantId> =
            (0..n_tenants).map(|i| TenantId::new(format!("company-{i}"))).collect();
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            pol,
            ServiceConfig { depth: 2, queue_capacity: n_jobs + 1, batch_max },
        ).expect("valid service");
        let handles: Vec<_> = tenants.iter().enumerate()
            .map(|(i, t)| service.register(t.clone(), tenant_seed(base_seed, i)).unwrap())
            .collect();
        service.start().expect("service starts");

        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut watermarks: BTreeMap<(String, TenantId), usize> = BTreeMap::new();
                let mut observations = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    assert!(
                        snap.generation() >= last_generation,
                        "snapshot generation went backwards: {} < {}",
                        snap.generation(), last_generation,
                    );
                    last_generation = snap.generation();
                    for (key, family) in snap.families() {
                        assert!(family.is_trained(), "published family untrained");
                        let seen = watermarks.entry(key.clone()).or_insert(0);
                        assert!(
                            family.trained_on() >= *seen,
                            "family {:?} shrank: {} < {}",
                            key, family.trained_on(), *seen,
                        );
                        *seen = family.trained_on();
                    }
                    observations += 1;
                    std::thread::yield_now();
                }
                observations
            })
        };

        for j in 0..n_jobs {
            for (i, h) in handles.iter().enumerate() {
                h.submit(schedule(i, n_jobs, 0)[j].clone()).unwrap();
            }
        }
        for h in handles {
            h.finish().expect("tenant stream succeeds");
        }
        stop.store(true, Ordering::Relaxed);
        let observations = observer.join().expect("observer clean");
        prop_assert!(observations > 0);

        let final_snap = service.snapshot();
        // Every tenant landed n_jobs records, so no family can claim more.
        for ((_, tenant), family) in final_snap.families() {
            prop_assert!(family.trained_on() <= n_jobs, "tenant {:?}", tenant);
        }
        let service = Arc::try_unwrap(service).ok().expect("observer released the service");
        let stats = service.join().expect("clean shutdown");
        prop_assert!(stats.snapshot_generation > 0);
        prop_assert!(stats.retrains > 0);
    }
}
