//! Counting-allocator regression test for the Algorithm 1 grid sweep.
//!
//! The batched selection layer promises that a deployer holding a warm
//! [`SelectionWorkspace`] performs (amortized) no per-cell heap
//! allocations: featurization writes into a retained [`FeatureMatrix`],
//! every member kernel runs out of a retained scratch, and the mean /
//! Conservative folds read one member-major block. What legitimately still
//! allocates per *selection* is size-independent bookkeeping — the
//! instance list, the result vector, the feasible set's `CandidateConfig`
//! strings — so the gate has two prongs: a comparative one (growing the
//! grid 8× must not grow the allocation count with it) and an absolute one
//! (a realistic selection stays under 0.05 allocations per grid cell, the
//! ISSUE budget).
//!
//! This file deliberately holds a single `#[test]`: the counter is a
//! process-global and concurrently running tests would pollute it.

use disar_cloudsim::InstanceCatalog;
use disar_core::{
    select_configuration_with_workspace, CoreError, JobProfile, KnowledgeBase, PredictorFamily,
    RetrainMode, RunRecord, SelectionWorkspace, TimeEstimate,
};
use disar_engine::EebCharacteristics;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that counts every allocation-producing call.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

fn trained_family() -> (PredictorFamily, InstanceCatalog) {
    let cat = InstanceCatalog::paper_catalog();
    let names = cat.names();
    let mut kb = KnowledgeBase::new();
    for i in 0..300 {
        let inst = cat.get(&names[i % names.len()]).expect("known");
        let nodes = i % 6 + 1;
        let contracts = 50 + (i * 53) % 400;
        let time = 40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
        kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
    }
    let mut fam = PredictorFamily::new(5, 2);
    fam.retrain(&kb, RetrainMode::Full, 1).expect("large enough");
    (fam, cat)
}

#[test]
fn steady_state_selection_is_allocation_free_per_cell() {
    let (fam, cat) = trained_family();
    let p = profile(200);
    let n_types = cat.iter().count();
    let mut ws = SelectionWorkspace::new();

    let mut select = |ws: &mut SelectionWorkspace, t_max: f64, max_nodes: usize| {
        select_configuration_with_workspace(
            &fam,
            &cat,
            &p,
            t_max,
            max_nodes,
            0.0,
            11,
            TimeEstimate::EnsembleMean,
            1,
            ws,
        )
    };

    // Prong 1 — comparative: with an unattainable deadline the sweep runs
    // every cell but builds no candidates, so the count isolates the grid
    // hot path. Growing the grid from 8 to 64 node counts (8× the cells)
    // must leave the warm-workspace allocation count flat.
    let (small_cells, large_cells) = (8 * n_types, 64 * n_types);
    // Warm-up: both shapes size every buffer once.
    for max_nodes in [8, 64, 8, 64] {
        assert!(matches!(
            select(&mut ws, 1e-3, max_nodes),
            Err(CoreError::NoFeasibleConfiguration { .. })
        ));
    }
    let (res_small, small_allocs) = count_allocations(|| select(&mut ws, 1e-3, 8));
    let (res_large, large_allocs) = count_allocations(|| select(&mut ws, 1e-3, 64));
    assert!(res_small.is_err() && res_large.is_err(), "deadline unattainable by design");
    let leaked = large_allocs.saturating_sub(small_allocs);
    let extra_cells = (large_cells - small_cells) as f64;
    assert!(
        (leaked as f64) / extra_cells < 0.05,
        "{leaked} extra allocations across {extra_cells} extra grid cells \
         (small grid: {small_allocs}, large grid: {large_allocs})"
    );

    // Prong 2 — absolute: a realistic selection (feasible set nonempty but
    // modest) on the 384-cell grid stays under the ISSUE budget of 0.05
    // allocations per cell. The deadline is derived from the model's own
    // predictions so roughly the 8 fastest cells pass the filter,
    // whatever the fitted surface looks like.
    let all = select(&mut ws, 1e12, 64).expect("everything feasible");
    let mut secs: Vec<f64> = all.feasible.iter().map(|c| c.predicted_secs).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let t_max = secs[7.min(secs.len() - 1)];
    // Warm-up at this shape, then measure.
    select(&mut ws, t_max, 64).expect("kth-smallest time is feasible");
    let (sel, allocs) = count_allocations(|| select(&mut ws, t_max, 64));
    let sel = sel.expect("kth-smallest time is feasible");
    assert!(!sel.feasible.is_empty() && sel.feasible.len() <= 12);
    let budget = 0.05 * large_cells as f64;
    assert!(
        (allocs as f64) < budget,
        "warm selection allocated {allocs} times over {large_cells} cells \
         (budget {budget}, feasible set {})",
        sel.feasible.len()
    );
}
