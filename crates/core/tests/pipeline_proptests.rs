//! Property-based determinism tests of the deploy pipeline: for any depth
//! ≥ 1, [`DeployPipeline`] must produce bit-identical per-job outcomes and
//! final knowledge-base contents to the sequential loop, over both
//! deployer backends.

use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};
use disar_core::deploy::{DeployOutcome, DeployPolicy, Deployer, ShardedDeployer, TransparentDeployer};
use disar_core::{DeployPipeline, JobProfile, PipelineJob};
use disar_engine::EebCharacteristics;
use proptest::prelude::*;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

fn workload(contracts: usize) -> Workload {
    Workload::new(
        30.0 * contracts as f64,
        0.02 * contracts as f64,
        0.8 * contracts as f64,
        0.05,
    )
    .expect("valid workload")
}

/// A mixed job list: mostly auto (deployer-chosen) jobs with a sprinkle of
/// operator-forced ones, like a real campaign's manual training phase.
fn jobs(n_jobs: usize, forced_every: usize) -> Vec<PipelineJob> {
    let names = InstanceCatalog::paper_catalog().names();
    (0..n_jobs)
        .map(|i| {
            let c = 60 + (i * 37) % 320;
            if forced_every > 0 && i % forced_every == forced_every - 1 {
                PipelineJob::forced(
                    profile(c),
                    workload(c),
                    &names[i % names.len()],
                    1 + i % 3,
                )
            } else {
                PipelineJob::auto(profile(c), workload(c))
            }
        })
        .collect()
}

fn policy(min_kb_samples: usize, retrain_every: usize) -> DeployPolicy {
    DeployPolicy::builder(50_000.0)
        .max_nodes(4)
        .min_kb_samples(min_kb_samples)
        .retrain_every(retrain_every)
        .n_threads(1)
        .build()
}

/// The pre-existing sequential loop, as the reference implementation.
fn sequential<D: Deployer>(mut d: D, jobs: &[PipelineJob]) -> (Vec<DeployOutcome>, D) {
    let outs = jobs
        .iter()
        .map(|j| match &j.forced {
            Some((instance, n_nodes)) => d
                .deploy_manual(&j.profile, &j.workload, instance, *n_nodes)
                .expect("deploys succeed"),
            None => d.deploy(&j.profile, &j.workload).expect("deploys succeed"),
        })
        .collect();
    (outs, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Monolithic backend: any pipeline depth replays the sequential loop
    /// bit for bit — same per-job outcomes, same final knowledge base.
    #[test]
    fn monolithic_pipeline_matches_sequential(
        seed in 0u64..1_000,
        depth in 1usize..6,
        n_jobs in 6usize..22,
        min_kb_samples in 4usize..10,
        retrain_every in 1usize..4,
        forced_every in 0usize..6,
    ) {
        let jobs = jobs(n_jobs, forced_every);
        let mk = || TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(min_kb_samples, retrain_every),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(), &jobs);
        let mut pipe = DeployPipeline::new(mk(), depth).expect("depth >= 1");
        let outs = pipe.run(&jobs).expect("pipeline deploys succeed");
        prop_assert_eq!(&outs, &seq_outs);
        prop_assert!(pipe.stats().max_in_flight <= depth);
        prop_assert_eq!(
            pipe.into_deployer().knowledge_base(),
            seq_d.knowledge_base()
        );
    }

    /// Sharded backend: the per-shard retrain gates make the readiness
    /// rule instance-dependent; the pipeline must still replay the
    /// sequential loop exactly.
    #[test]
    fn sharded_pipeline_matches_sequential(
        seed in 0u64..1_000,
        depth in 1usize..6,
        n_jobs in 6usize..22,
        min_kb_samples in 4usize..10,
        retrain_every in 1usize..4,
        forced_every in 0usize..6,
    ) {
        let jobs = jobs(n_jobs, forced_every);
        let mk = || ShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(min_kb_samples, retrain_every),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(), &jobs);
        let mut pipe = DeployPipeline::new(mk(), depth).expect("depth >= 1");
        let outs = pipe.run(&jobs).expect("pipeline deploys succeed");
        prop_assert_eq!(&outs, &seq_outs);
        prop_assert_eq!(
            pipe.into_deployer().knowledge_base(),
            seq_d.knowledge_base()
        );
    }

    /// Both backends leave the provider's noise stream at the sequential
    /// position: a follow-up run observes identical cloud conditions.
    #[test]
    fn pipeline_leaves_the_noise_stream_in_sequential_position(
        seed in 0u64..500,
        depth in 2usize..6,
        n_jobs in 4usize..14,
    ) {
        let jobs = jobs(n_jobs, 4);
        let wl = workload(100);
        let mk = || TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(6, 2),
            seed,
        );
        let (_, seq_d) = sequential(mk(), &jobs);
        let mut pipe = DeployPipeline::new(mk(), depth).expect("depth >= 1");
        pipe.run(&jobs).expect("pipeline deploys succeed");
        let a = seq_d.provider().run_job("c3.4xlarge", 2, &wl).expect("runs");
        let b = pipe
            .deployer()
            .provider()
            .run_job("c3.4xlarge", 2, &wl)
            .expect("runs");
        prop_assert_eq!(a, b);
    }
}
