//! Property-based tests of the tenant-aware two-key layer.
//!
//! The contract under test:
//!
//! 1. with a single tenant, [`TenantShardedDeployer`] is bit-identical —
//!    selections, realized runs and knowledge-base contents — to the
//!    instance-sharded [`ShardedDeployer`] over full auto campaigns, and
//!    to **both** single-tenant backends (including the monolithic
//!    [`TransparentDeployer`]) over operator-forced streams;
//! 2. under [`TransferPolicy::Isolated`], tenant A's predictions are
//!    invariant under arbitrary tenant-B insertions;
//! 3. [`TransferPolicy::BorrowUntil`] crossovers are deterministic: the
//!    pooled→local flip happens exactly at the threshold and replays
//!    bit-identically.

use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};
use disar_core::deploy::{DeployOutcome, DeployPolicy, Deployer, ShardedDeployer, TransparentDeployer};
use disar_core::tenant::{
    TenantId, TenantShardedDeployer, TenantShardedKnowledgeBase, TenantShardedPredictor,
    TransferPolicy,
};
use disar_core::{JobProfile, RetrainMode, RunRecord, TimePredictor};
use disar_engine::EebCharacteristics;
use proptest::prelude::*;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

fn workload(contracts: usize) -> Workload {
    Workload::new(
        30.0 * contracts as f64,
        0.02 * contracts as f64,
        0.8 * contracts as f64,
        0.05,
    )
    .expect("valid workload")
}

fn policy(min_kb_samples: usize, retrain_every: usize, transfer: TransferPolicy) -> DeployPolicy {
    DeployPolicy::builder(50_000.0)
        .max_nodes(4)
        .min_kb_samples(min_kb_samples)
        .retrain_every(retrain_every)
        .n_threads(1)
        .transfer(transfer)
        .build()
}

/// Drives one deployer through a mixed auto/forced campaign.
fn campaign<D: Deployer>(d: &mut D, n_jobs: usize, forced_every: usize) -> Vec<DeployOutcome> {
    let names = InstanceCatalog::paper_catalog().names();
    (0..n_jobs)
        .map(|i| {
            let c = 60 + (i * 37) % 320;
            if forced_every > 0 && i % forced_every == forced_every - 1 {
                d.deploy_manual(&profile(c), &workload(c), &names[i % names.len()], 1 + i % 3)
                    .expect("deploys succeed")
            } else {
                d.deploy(&profile(c), &workload(c)).expect("deploys succeed")
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Single tenant, Isolated or Pooled: the tenant-aware backend replays
    /// the instance-sharded backend bit for bit across the full bootstrap →
    /// ML campaign — selections, realized runs and the canonical record
    /// stream. (Under one tenant the two-key partition and the pooled
    /// partition both collapse to the per-instance partition.)
    #[test]
    fn single_tenant_matches_sharded_deployer(
        seed in 0u64..500,
        n_jobs in 20usize..45,
        min_kb_samples in 4usize..10,
        retrain_every in 1usize..4,
        forced_every in 0usize..6,
        pooled in proptest::bool::ANY,
    ) {
        let transfer = if pooled { TransferPolicy::Pooled } else { TransferPolicy::Isolated };
        let mut tenant_d = TenantShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(min_kb_samples, retrain_every, transfer),
            seed,
        );
        let mut sharded_d = ShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(min_kb_samples, retrain_every, transfer),
            seed,
        );
        let t_outs = campaign(&mut tenant_d, n_jobs, forced_every);
        let s_outs = campaign(&mut sharded_d, n_jobs, forced_every);
        prop_assert_eq!(&t_outs, &s_outs);
        prop_assert_eq!(
            tenant_d.knowledge_base().to_monolithic(),
            sharded_d.knowledge_base().to_monolithic()
        );
    }

    /// Operator-forced streams never consult a predictor, so all three
    /// backends — monolithic, instance-sharded and tenant-aware — must
    /// produce identical outcomes and identical canonical record streams.
    #[test]
    fn all_backends_agree_on_forced_streams(
        seed in 0u64..500,
        n_jobs in 4usize..16,
    ) {
        let mk_policy = || policy(6, 1, TransferPolicy::Isolated);
        let mut mono = TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            mk_policy(),
            seed,
        );
        let mut sharded = ShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            mk_policy(),
            seed,
        );
        let mut tenant = TenantShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            mk_policy(),
            seed,
        );
        let m_outs = campaign(&mut mono, n_jobs, 1);
        let s_outs = campaign(&mut sharded, n_jobs, 1);
        let t_outs = campaign(&mut tenant, n_jobs, 1);
        prop_assert_eq!(&m_outs, &s_outs);
        prop_assert_eq!(&m_outs, &t_outs);
        let m_kb = mono.into_knowledge_base();
        prop_assert_eq!(&sharded.into_knowledge_base().to_monolithic(), &m_kb);
        prop_assert_eq!(&tenant.into_knowledge_base().to_monolithic(), &m_kb);
    }

    /// Isolation: under [`TransferPolicy::Isolated`], tenant A's
    /// predictions do not move — to the bit — no matter what tenant B
    /// records (arbitrary instances, node counts and volumes).
    #[test]
    fn isolated_predictions_invariant_under_foreign_insertions(
        seed in 0u64..500,
        b_inserts in proptest::collection::vec((0usize..6, 1usize..4, 50usize..400), 1..12),
    ) {
        let a = TenantId::new("acme-life");
        let mut d = TenantShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(6, 1, TransferPolicy::Isolated),
            seed,
        )
        .with_tenant(a.clone());
        // Drive tenant A through a fixed campaign (long enough to train
        // every local shard).
        campaign(&mut d, 30, 3);

        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let probe = |d: &TenantShardedDeployer| -> Vec<Vec<(&'static str, f64)>> {
            let view = d
                .predictor()
                .view(&a, d.knowledge_base().local_lens(&a));
            names
                .iter()
                .filter(|n| d.predictor().is_trained_local(n.as_str(), &a))
                .map(|n| {
                    view.predict_each(&profile(150), cat.get(n).expect("known"), 2)
                        .expect("trained local shard answers")
                })
                .collect()
        };
        let before = probe(&d);
        prop_assert!(!before.is_empty(), "no local shard trained after 30 runs");

        // Tenant B lands arbitrary runs.
        d.set_tenant(TenantId::new("bolt-re"));
        for &(inst_idx, n_nodes, contracts) in &b_inserts {
            d.deploy_manual(
                &profile(contracts),
                &workload(contracts),
                &names[inst_idx % names.len()],
                n_nodes,
            )
            .expect("deploys succeed");
        }
        d.set_tenant(a.clone());

        let after = probe(&d);
        prop_assert_eq!(before.len(), after.len());
        for (b, aft) in before.iter().zip(&after) {
            for ((mb, vb), (ma, va)) in b.iter().zip(aft) {
                prop_assert_eq!(mb, ma);
                prop_assert_eq!(
                    vb.to_bits(), va.to_bits(),
                    "{} moved after tenant-B insertions", mb
                );
            }
        }
    }

    /// BorrowUntil crossover: the pooled→local flip happens exactly at the
    /// threshold, and both the flip point and the predictions on each side
    /// replay bit-identically.
    #[test]
    fn borrow_until_crossover_is_deterministic(
        seed in 0u64..500,
        threshold in 1usize..12,
    ) {
        let a = TenantId::new("acme-life");
        let b = TenantId::new("bolt-re");
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let build = || {
            let mut kb = TenantShardedKnowledgeBase::new();
            for i in 0..48 {
                let tenant = if i % 2 == 0 { a.clone() } else { b.clone() };
                let inst = cat.get(&names[i % names.len()]).expect("known");
                let contracts = 50 + (i * 53 + seed as usize) % 400;
                let time = 40_000.0 * contracts as f64
                    / 100.0
                    / (inst.compute_power() * (i % 4 + 1) as f64);
                kb.record(
                    RunRecord::new(profile(contracts), inst, i % 4 + 1, time, 0.0)
                        .with_tenant(tenant),
                );
            }
            let mut p =
                TenantShardedPredictor::new(seed, 2, TransferPolicy::BorrowUntil(threshold));
            p.retrain_all(&kb, RetrainMode::Full, 1).expect("large enough shards");
            (kb, p)
        };
        let (kb, p) = build();
        let (kb2, p2) = build();
        prop_assert_eq!(&kb, &kb2);

        let instance = &names[0];
        let inst = cat.get(instance).expect("known");
        let predict = |p: &TenantShardedPredictor, lens: usize| {
            let view = p.view(&a, std::collections::BTreeMap::from([(instance.clone(), lens)]));
            view.predict_each(&profile(150), inst, 2).expect("trained")
        };
        for lens in 0..(2 * threshold) {
            let flipped = lens >= threshold;
            // The routed family is the pooled one below the threshold and
            // the local one at/after it.
            let want = if flipped {
                p.local_family(instance, &a).expect("trained")
            } else {
                p.pooled_family(instance).expect("trained")
            };
            let got = p.route(instance, &a, lens).expect("routes");
            let got_pred = got.predict_each(&profile(150), inst, 2).expect("trained");
            let want_pred = want.predict_each(&profile(150), inst, 2).expect("trained");
            prop_assert_eq!(&got_pred, &want_pred);
            // And the whole view replays bit-identically across builds.
            let (aa, bb) = (predict(&p, lens), predict(&p2, lens));
            for ((ma, va), (mb, vb)) in aa.iter().zip(&bb) {
                prop_assert_eq!(ma, mb);
                prop_assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
