//! Property-based tests of the provisioning layer.

use disar_cloudsim::{CloudProvider, DriftModel, InstanceCatalog, Workload};
use disar_core::deploy::{DeployPolicy, TransparentDeployer};
use disar_core::{
    select_configuration, select_configuration_with_rule, select_hetero_configuration,
    CoreError, JobProfile, KnowledgeBase, PredictorFamily, RetrainMode, RunRecord,
    ShardedKnowledgeBase, TimeEstimate,
};
use disar_engine::EebCharacteristics;
use proptest::prelude::*;
use std::sync::OnceLock;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

/// One shared trained family (training is the slow part).
fn family() -> &'static (PredictorFamily, InstanceCatalog) {
    static CELL: OnceLock<(PredictorFamily, InstanceCatalog)> = OnceLock::new();
    CELL.get_or_init(|| {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..300 {
            let inst = cat.get(&names[i % names.len()]).expect("known");
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).expect("large enough");
        (fam, cat)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 1's feasible set is monotone in the deadline: relaxing
    /// `T_max` never removes a candidate.
    #[test]
    fn feasible_set_monotone_in_deadline(
        contracts in 60usize..420,
        t1 in 200.0f64..5_000.0,
        extra in 100.0f64..20_000.0,
    ) {
        let (fam, cat) = family();
        let p = profile(contracts);
        let tight = select_configuration(fam, cat, &p, t1, 6, 0.0, 1);
        let loose = select_configuration(fam, cat, &p, t1 + extra, 6, 0.0, 1)
            .expect("looser deadline at least as feasible");
        if let Ok(tight) = tight {
            prop_assert!(tight.feasible.len() <= loose.feasible.len());
            for c in &tight.feasible {
                prop_assert!(
                    loose
                        .feasible
                        .iter()
                        .any(|l| l.instance == c.instance && l.n_nodes == c.n_nodes),
                    "tight candidate lost on relaxation"
                );
            }
            // Cheapest pick can only get (weakly) cheaper with more slack.
            prop_assert!(loose.chosen.predicted_cost <= tight.chosen.predicted_cost + 1e-9);
        }
    }

    /// The greedy choice is always the cost-minimum of the feasible set,
    /// and every feasible candidate honours the deadline.
    #[test]
    fn greedy_optimality(
        contracts in 60usize..420,
        t_max in 500.0f64..50_000.0,
        max_nodes in 1usize..8,
    ) {
        let (fam, cat) = family();
        let Ok(sel) = select_configuration(fam, cat, &profile(contracts), t_max, max_nodes, 0.0, 1)
        else {
            return Ok(());
        };
        for c in &sel.feasible {
            prop_assert!(c.predicted_secs <= t_max);
            prop_assert!(c.n_nodes >= 1 && c.n_nodes <= max_nodes);
            prop_assert!(c.predicted_cost >= sel.chosen.predicted_cost - 1e-9);
        }
    }

    /// The conservative rule's feasible set is a subset of the mean
    /// rule's, for any deadline.
    #[test]
    fn conservative_subset(contracts in 60usize..420, t_max in 500.0f64..20_000.0) {
        let (fam, cat) = family();
        let p = profile(contracts);
        let mean = select_configuration(fam, cat, &p, t_max, 5, 0.0, 1);
        let cons = select_configuration_with_rule(
            fam, cat, &p, t_max, 5, 0.0, 1, TimeEstimate::Conservative,
        );
        match (mean, cons) {
            (Ok(m), Ok(c)) => {
                prop_assert!(c.feasible.len() <= m.feasible.len());
            }
            (Err(_), Ok(_)) => prop_assert!(false, "conservative feasible but mean not"),
            _ => {}
        }
    }

    /// Hetero selection dominates homogeneous selection on predicted cost
    /// whenever both succeed.
    #[test]
    fn hetero_weakly_dominates(contracts in 60usize..420, t_max in 500.0f64..20_000.0) {
        let (fam, cat) = family();
        let p = profile(contracts);
        let homo = select_configuration(fam, cat, &p, t_max, 4, 0.0, 1);
        let hetero = select_hetero_configuration(fam, cat, &p, t_max, 4, 0.0, 1);
        if let Ok(h) = &homo {
            let het = hetero.as_ref().expect("superset feasibility");
            prop_assert!(het.chosen.predicted_cost <= h.chosen.predicted_cost + 1e-9);
        }
        if homo.is_err() {
            // Hetero may still succeed (mixes are faster) — and when it
            // fails too, the reported best prediction must exceed t_max.
            if let Err(CoreError::NoFeasibleConfiguration { best_predicted, .. }) = hetero {
                prop_assert!(best_predicted > t_max);
            }
        }
    }

    /// Sharding is presentation-invariant: the shards reassemble to the
    /// monolithic record stream, every shard equals the monolithic
    /// per-instance filter, and a family trained on a shard is bit-identical
    /// to one trained on that filter.
    #[test]
    fn sharded_kb_bit_identical_to_monolithic(seed in 0u64..200, n in 12usize..40) {
        use disar_math::rng::stream_rng;
        use rand::Rng;
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut rng = stream_rng(seed, 0x5AD);
        let mut mono = KnowledgeBase::new();
        let mut skb = ShardedKnowledgeBase::new();
        for i in 0..n {
            let name = &names[rng.gen_range(0..names.len())];
            let inst = cat.get(name).expect("known");
            let nodes = rng.gen_range(1..5);
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            let rec = RunRecord::new(profile(contracts), inst, nodes, time, 0.0);
            mono.record(rec.clone());
            skb.record(rec);
        }
        prop_assert_eq!(&skb.to_monolithic(), &mono);
        prop_assert_eq!(skb.len(), mono.len());
        for (name, shard) in skb.shards() {
            prop_assert_eq!(shard, &mono.for_instance(name));
            if shard.len() < 2 {
                continue;
            }
            let mut from_shard = PredictorFamily::new(9, 2);
            from_shard
                .retrain(shard, RetrainMode::Full, 1)
                .expect("enough records");
            let mut from_filter = PredictorFamily::new(9, 2);
            from_filter
                .retrain(&mono.for_instance(name), RetrainMode::Full, 1)
                .expect("enough records");
            let inst = cat.get(name).expect("known");
            for nodes in 1..3usize {
                let a = from_shard
                    .predict_each(&profile(150), inst, nodes)
                    .expect("trained");
                let b = from_filter
                    .predict_each(&profile(150), inst, nodes)
                    .expect("trained");
                for ((ma, va), (mb, vb)) in a.iter().zip(&b) {
                    prop_assert_eq!(ma, mb);
                    prop_assert_eq!(va.to_bits(), vb.to_bits(), "{} diverges on {}", ma, name);
                }
            }
        }
    }

    /// The deployer's knowledge base grows by exactly one per deploy and
    /// deploys are deterministic per seed.
    #[test]
    fn deployer_accounting(seed in 0u64..50, deploys in 1usize..8) {
        let run = |seed: u64| {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
            let policy = DeployPolicy::builder(1e6)
                .epsilon(0.1)
                .max_nodes(4)
                .min_kb_samples(3)
                .retrain_every(2)
                .n_threads(1)
                .build();
            let mut d = TransparentDeployer::new(provider, policy, seed);
            let wl = Workload::new(5_000.0, 4.0, 40.0, 0.05).expect("valid");
            let mut picks = Vec::new();
            for i in 0..deploys {
                let out = d.deploy(&profile(100 + i * 31), &wl).expect("deploys");
                picks.push((out.report.instance.clone(), out.report.n_nodes));
            }
            (picks, d.knowledge_base().len())
        };
        let (picks_a, len_a) = run(seed);
        let (picks_b, len_b) = run(seed);
        prop_assert_eq!(len_a, deploys);
        prop_assert_eq!(len_b, deploys);
        prop_assert_eq!(picks_a, picks_b);
    }

    /// A stationary cloud is the bit-identical default: deploying against
    /// a provider carrying an explicit [`DriftModel::None`] reproduces the
    /// no-drift provider's decisions, realized reports, and costs bit for
    /// bit under the default (drift-off) policy.
    #[test]
    fn stationary_drift_model_is_bit_identical(seed in 0u64..50, deploys in 1usize..8) {
        let run = |drifted: bool| {
            let mut provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
            if drifted {
                provider = provider.with_drift(DriftModel::None);
            }
            let policy = DeployPolicy::builder(1e6)
                .epsilon(0.1)
                .max_nodes(4)
                .min_kb_samples(3)
                .retrain_every(2)
                .n_threads(1)
                .build();
            let mut d = TransparentDeployer::new(provider, policy, seed);
            let wl = Workload::new(5_000.0, 4.0, 40.0, 0.05).expect("valid");
            let mut outs = Vec::new();
            for i in 0..deploys {
                let out = d.deploy(&profile(100 + i * 31), &wl).expect("deploys");
                outs.push((
                    out.decision.instance.clone(),
                    out.decision.n_nodes,
                    out.decision.predicted_secs.map(f64::to_bits),
                    out.report.duration_secs.to_bits(),
                    out.report.prorated_cost.to_bits(),
                ));
            }
            (outs, d.drift_fires())
        };
        let (plain, fires_plain) = run(false);
        let (stationary, fires_stationary) = run(true);
        prop_assert_eq!(plain, stationary);
        // The default policy keeps the detector off entirely.
        prop_assert_eq!(fires_plain, 0u64);
        prop_assert_eq!(fires_stationary, 0u64);
    }
}
