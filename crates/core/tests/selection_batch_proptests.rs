//! Selection-level bit-identity of the batched grid sweep.
//!
//! The member-level property (`predict_batch == predict`, see disar-ml's
//! `batch_proptests`) lifts to Algorithm 1: running the sweep through
//! [`PredictorFamily::predict_grid`]'s batched kernels must return the
//! *same* [`Selection`] — same chosen cell, same feasible ordering, same
//! costs bit for bit — as the per-cell scalar `predict_each` path. The
//! scalar baseline is recovered by hiding the family behind a wrapper that
//! only implements `predict_each`, so the trait's default `predict_grid`
//! (a per-cell scalar loop) kicks in.

use disar_cloudsim::{InstanceCatalog, InstanceType};
use disar_core::{
    select_configuration_with_workspace, CoreError, GridScratch, JobProfile, KnowledgeBase,
    PredictorFamily, RetrainMode, RunRecord, SelectionWorkspace, TimeEstimate, TimePredictor,
};
use disar_engine::EebCharacteristics;
use proptest::prelude::*;
use std::sync::OnceLock;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

/// One shared trained family (training is the slow part).
fn family() -> &'static (PredictorFamily, InstanceCatalog) {
    static CELL: OnceLock<(PredictorFamily, InstanceCatalog)> = OnceLock::new();
    CELL.get_or_init(|| {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..300 {
            let inst = cat.get(&names[i % names.len()]).expect("known");
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).expect("large enough");
        (fam, cat)
    })
}

/// A [`PredictorFamily`] with its batched `predict_grid` override hidden:
/// only `predict_each` is implemented, so every grid query runs the
/// trait's default per-cell scalar loop.
struct ScalarOnly<'a>(&'a PredictorFamily);

impl TimePredictor for ScalarOnly<'_> {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        self.0.predict_each(profile, instance, n_nodes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random jobs, deadlines, grids, rules and thread counts, the
    /// batched sweep's Selection equals the scalar sweep's bit for bit —
    /// including with a warm workspace left over from a *different*
    /// previous selection.
    #[test]
    fn batched_selection_is_bit_identical_to_scalar(
        contracts in 60usize..420,
        t_max in 200.0f64..50_000.0,
        max_nodes in 1usize..8,
        epsilon in 0.0f64..1.0,
        seed in 0u64..500,
        conservative in any::<bool>(),
        n_threads in 1usize..5,
    ) {
        let (fam, cat) = family();
        let p = profile(contracts);
        let rule = if conservative {
            TimeEstimate::Conservative
        } else {
            TimeEstimate::EnsembleMean
        };
        let mut ws = SelectionWorkspace::new();
        // Dirty the workspace with an unrelated selection so the property
        // also covers warm-buffer reuse, the deployer's steady state.
        let _ = select_configuration_with_workspace(
            fam, cat, &profile(100), 1e9, 3, 0.0, 7, TimeEstimate::EnsembleMean, 1, &mut ws,
        );
        let batched = select_configuration_with_workspace(
            fam, cat, &p, t_max, max_nodes, epsilon, seed, rule, n_threads, &mut ws,
        );
        let scalar = select_configuration_with_workspace(
            &ScalarOnly(fam), cat, &p, t_max, max_nodes, epsilon, seed, rule, n_threads,
            &mut SelectionWorkspace::new(),
        );
        match (batched, scalar) {
            (Ok(b), Ok(s)) => {
                prop_assert_eq!(&b, &s);
                // `==` on f64 admits 0.0 == -0.0; pin the exact bits too.
                prop_assert_eq!(
                    b.chosen.predicted_secs.to_bits(),
                    s.chosen.predicted_secs.to_bits()
                );
                prop_assert_eq!(
                    b.chosen.predicted_cost.to_bits(),
                    s.chosen.predicted_cost.to_bits()
                );
                for (x, y) in b.feasible.iter().zip(&s.feasible) {
                    prop_assert_eq!(x.predicted_secs.to_bits(), y.predicted_secs.to_bits());
                    prop_assert_eq!(x.predicted_cost.to_bits(), y.predicted_cost.to_bits());
                }
            }
            (
                Err(CoreError::NoFeasibleConfiguration { t_max: tb, best_predicted: bb }),
                Err(CoreError::NoFeasibleConfiguration { t_max: ts, best_predicted: bs }),
            ) => {
                prop_assert_eq!(tb.to_bits(), ts.to_bits());
                prop_assert_eq!(bb.to_bits(), bs.to_bits());
            }
            (b, s) => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", b, s),
        }
    }

    /// The grid kernel itself: `predict_grid`'s member-major block equals
    /// per-cell `predict_each` bitwise for arbitrary node runs.
    #[test]
    fn predict_grid_matches_predict_each(
        contracts in 60usize..420,
        max_nodes in 1usize..9,
    ) {
        let (fam, cat) = family();
        let p = profile(contracts);
        let nodes: Vec<usize> = (1..=max_nodes).collect();
        let mut block = Vec::new();
        let mut scratch = GridScratch::new();
        for inst in cat.iter() {
            let members = fam
                .predict_grid(&p, inst, &nodes, &mut block, &mut scratch)
                .expect("trained");
            prop_assert_eq!(block.len(), members * nodes.len());
            for (i, &n) in nodes.iter().enumerate() {
                let each = fam.predict_each(&p, inst, n).expect("trained");
                prop_assert_eq!(each.len(), members);
                for (m, (_, want)) in each.iter().enumerate() {
                    prop_assert_eq!(
                        block[m * nodes.len() + i].to_bits(),
                        want.to_bits(),
                        "member {} diverges at n = {} on {}",
                        m,
                        n,
                        &inst.name
                    );
                }
            }
        }
    }
}
