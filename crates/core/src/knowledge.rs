//! The knowledge base.
//!
//! "This information is stored in a database which is then coupled with
//! runtime data. Whenever a new simulation is run, the system stores the
//! execution time into the database" (§III). Each record pairs the job's
//! characteristic parameters and the deploy configuration with the
//! *measured* execution time; the base is replayed into [`Dataset`]s for
//! (re)training, and is serializable to a human-inspectable JSON file.
//!
//! Machine capabilities enter the feature vector numerically (vCPUs,
//! per-core speed, RAM) rather than as an opaque name, so knowledge
//! transfers across instance types — and, as the paper notes, across
//! companies: the parameters "are not necessarily bound to a specific one".

use crate::profile::JobProfile;
use crate::tenant::TenantId;
use crate::CoreError;
use disar_cloudsim::InstanceType;
use disar_ml::Dataset;
use serde::{Deserialize, Serialize};
use std::cell::{Ref, RefCell};
use std::fmt;
use std::path::Path;

/// Version stamp of a persisted artifact's JSON layout.
///
/// Every knowledge-base layout (and the result registry's rows) carries
/// one, `#[serde(default)]`-ed so pre-version files load as version
/// [`SchemaVersion::CURRENT`] — the layout they were in fact written in.
/// Loads reject versions *newer* than this build supports
/// ([`CoreError::UnsupportedSchema`]) instead of silently misreading a
/// future format; older versions are the serde defaults' job to upgrade.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SchemaVersion(pub u32);

impl SchemaVersion {
    /// The layout this build writes. History: `1` = first stamped layout
    /// (identical to the pre-version layout except for the stamp itself).
    pub const CURRENT: SchemaVersion = SchemaVersion(1);

    /// `true` when this build can read the version.
    pub fn is_supported(self) -> bool {
        self <= Self::CURRENT
    }
}

impl Default for SchemaVersion {
    fn default() -> Self {
        Self::CURRENT
    }
}

impl fmt::Display for SchemaVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Shared load-time gate: every layout's `load` rejects files stamped by
/// a newer build the same way.
pub(crate) fn check_schema(version: SchemaVersion) -> Result<(), CoreError> {
    if version.is_supported() {
        Ok(())
    } else {
        Err(CoreError::UnsupportedSchema {
            found: version.0,
            supported: SchemaVersion::CURRENT.0,
        })
    }
}

/// One executed simulation: the ML training row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The job's characteristic parameters.
    pub profile: JobProfile,
    /// Instance-type name the job ran on.
    pub instance: String,
    /// Machine capability features at run time (vCPUs, per-core speed,
    /// memory GiB) — duplicated from the catalog so old records survive
    /// catalog changes.
    pub vcpus: u32,
    /// Per-core speed of the instance.
    pub per_core_speed: f64,
    /// Memory (GiB) of the instance.
    pub memory_gib: f64,
    /// Number of nodes of the deploy.
    pub n_nodes: usize,
    /// Measured execution time in seconds (the ML target Θ).
    pub duration_secs: f64,
    /// Realized prorated cost in USD.
    pub cost: f64,
    /// Owning company (tenant) of the run. Deliberately *not* part of the
    /// feature vector — the paper's transfer argument is that the job and
    /// machine parameters "are not necessarily bound to a specific"
    /// company, so the tenant key only routes records into shards and
    /// never biases predictions. Defaults (also for pre-tenancy JSON via
    /// serde) to [`TenantId::default`].
    #[serde(default)]
    pub tenant: TenantId,
}

impl RunRecord {
    /// Builds a record from a job profile, the instance it ran on and the
    /// realized measurements.
    pub fn new(
        profile: JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
        duration_secs: f64,
        cost: f64,
    ) -> Self {
        RunRecord {
            profile,
            instance: instance.name.clone(),
            vcpus: instance.vcpus,
            per_core_speed: instance.per_core_speed,
            memory_gib: instance.memory_gib,
            n_nodes,
            duration_secs,
            cost,
            tenant: TenantId::default(),
        }
    }

    /// Tags the record with its owning tenant (builder-style).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The full ML feature vector: job profile + machine capabilities +
    /// node count. The tenant tag is intentionally excluded.
    pub fn features(&self) -> Vec<f64> {
        let mut f = self.profile.to_features();
        f.push(self.vcpus as f64);
        f.push(self.per_core_speed);
        f.push(self.memory_gib);
        f.push(self.n_nodes as f64);
        f
    }

    /// Assembles the feature vector for a *hypothetical* configuration —
    /// what Algorithm 1 evaluates predictions on.
    pub fn features_for(profile: &JobProfile, instance: &InstanceType, n_nodes: usize) -> Vec<f64> {
        let mut f = Vec::new();
        Self::features_into(profile, instance, n_nodes, &mut f);
        f
    }

    /// Appends the features of [`RunRecord::features_for`] onto `out` in the
    /// same push order — the allocation-free variant the batched grid sweep
    /// uses to fill a feature matrix in place.
    pub fn features_into(
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
        out: &mut Vec<f64>,
    ) {
        profile.features_into(out);
        out.push(instance.vcpus as f64);
        out.push(instance.per_core_speed);
        out.push(instance.memory_gib);
        out.push(n_nodes as f64);
    }

    /// Names matching [`RunRecord::features`].
    pub fn feature_names() -> Vec<String> {
        let mut names = JobProfile::feature_names();
        names.push("vcpus".to_string());
        names.push("per_core_speed".to_string());
        names.push("memory_gib".to_string());
        names.push("n_nodes".to_string());
        names
    }
}

/// The one API every knowledge-base layout speaks.
///
/// Three layouts store the same append-only record stream with different
/// partitioning: the monolithic [`KnowledgeBase`] (one flat vector), the
/// per-instance [`ShardedKnowledgeBase`], and the two-key
/// per-(instance, tenant) [`crate::tenant::TenantShardedKnowledgeBase`].
/// Code that only appends runs, replays the stream, or persists the base
/// can be written once against this trait; layout-specific accessors
/// (per-shard views, pooled views) stay inherent on each type.
///
/// Every implementation preserves the *global arrival order*:
/// [`KnowledgeStore::records_in_arrival_order`] yields the exact stream a
/// monolithic base fed the same runs would hold, which is what the
/// sharding bit-identity proofs replay.
pub trait KnowledgeStore {
    /// Appends one executed run.
    fn record(&mut self, record: RunRecord);

    /// Total number of stored runs across all partitions.
    fn len(&self) -> usize;

    /// `true` when no runs are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every record in global arrival order, regardless of the
    /// physical partitioning.
    fn records_in_arrival_order(&self) -> Box<dyn Iterator<Item = &RunRecord> + '_>;

    /// Reconstructs the equivalent monolithic base (records in arrival
    /// order) — the layout-independent canonical form.
    fn to_monolithic(&self) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for r in self.records_in_arrival_order() {
            kb.record(r.clone());
        }
        kb
    }

    /// Saves the base as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    fn save(&self, path: &Path) -> Result<(), CoreError>;
}

/// The persistent store of executed runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeBase {
    /// JSON layout version (serde-defaulted so pre-version files load).
    #[serde(default)]
    pub schema_version: SchemaVersion,
    records: Vec<RunRecord>,
    /// Featurized view of `records`, built lazily by [`KnowledgeBase::dataset`]
    /// and kept in sync incrementally by [`KnowledgeBase::record`], so one
    /// retrain featurizes the base once instead of once per model. Never
    /// serialized; rebuilt on demand after a load.
    #[serde(skip)]
    cache: RefCell<Option<Dataset>>,
}

/// Equality is over the stored records only — the lazily built dataset
/// cache is derived state and must not distinguish two bases (e.g. one
/// freshly loaded from JSON from the original that already featurized).
/// The schema version is metadata about the *file*, not the knowledge, so
/// a base loaded from an old stamp equals the freshly built one.
impl PartialEq for KnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one run.
    pub fn record(&mut self, record: RunRecord) {
        let cache = self.cache.get_mut();
        if let Some(d) = cache.as_mut() {
            let in_sync = d.len() == self.records.len();
            if !in_sync || d.push(record.features(), record.duration_secs).is_err() {
                *cache = None;
            }
        }
        self.records.push(record);
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The stored records, oldest first.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Converts the whole base into an ML training set (target: measured
    /// execution time in seconds).
    ///
    /// Clones out of the shared cache; callers that only need to read the
    /// rows should prefer [`KnowledgeBase::dataset`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientKnowledge`] when empty.
    pub fn to_dataset(&self) -> Result<Dataset, CoreError> {
        Ok(self.dataset()?.clone())
    }

    /// A shared view of the featurized base, built at most once per batch
    /// of appended records.
    ///
    /// The first call (or the first call after a [`KnowledgeBase::load`] or
    /// a cache invalidation) featurizes every record; subsequent calls and
    /// records appended through [`KnowledgeBase::record`] reuse the cached
    /// rows. Records are append-only, so a length match means the cache is
    /// current.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientKnowledge`] when empty.
    pub fn dataset(&self) -> Result<Ref<'_, Dataset>, CoreError> {
        if self.records.is_empty() {
            return Err(CoreError::InsufficientKnowledge { have: 0, need: 1 });
        }
        let stale = match &*self.cache.borrow() {
            Some(d) => d.len() != self.records.len(),
            None => true,
        };
        if stale {
            let mut d = Dataset::new(RunRecord::feature_names());
            for r in &self.records {
                d.push(r.features(), r.duration_secs)
                    .map_err(CoreError::from)?;
            }
            *self.cache.borrow_mut() = Some(d);
        }
        Ok(Ref::map(self.cache.borrow(), |c| {
            c.as_ref().expect("cache populated above")
        }))
    }

    /// Subset of records executed on the named instance type (per-instance
    /// Table I columns).
    pub fn for_instance(&self, instance: &str) -> KnowledgeBase {
        KnowledgeBase {
            schema_version: SchemaVersion::CURRENT,
            records: self
                .records
                .iter()
                .filter(|r| r.instance == instance)
                .cloned()
                .collect(),
            cache: RefCell::new(None),
        }
    }

    /// Saves the base as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let json = serde_json::to_string_pretty(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a base previously written with [`KnowledgeBase::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures; rejects files stamped
    /// with a newer [`SchemaVersion`] than this build supports.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path)?;
        let kb: KnowledgeBase = serde_json::from_str(&json)?;
        check_schema(kb.schema_version)?;
        Ok(kb)
    }
}

impl KnowledgeStore for KnowledgeBase {
    fn record(&mut self, record: RunRecord) {
        KnowledgeBase::record(self, record);
    }

    fn len(&self) -> usize {
        KnowledgeBase::len(self)
    }

    fn records_in_arrival_order(&self) -> Box<dyn Iterator<Item = &RunRecord> + '_> {
        Box::new(self.records.iter())
    }

    /// A monolithic base is already its own canonical form.
    fn to_monolithic(&self) -> KnowledgeBase {
        self.clone()
    }

    fn save(&self, path: &Path) -> Result<(), CoreError> {
        KnowledgeBase::save(self, path)
    }
}

/// A knowledge base partitioned by instance type — the million-record-scale
/// layout of the self-optimizing loop.
///
/// Each shard is a plain [`KnowledgeBase`] holding the records of one
/// instance type (with its own incrementally maintained featurized
/// [`Dataset`] cache), so `record()` touches exactly one shard and a
/// per-shard retrain scales with that shard's size, not the total base.
/// The global arrival order is kept alongside the shards, so the exact
/// monolithic record stream can always be reconstructed
/// ([`ShardedKnowledgeBase::to_monolithic`]) — sharding never loses or
/// reorders information.
///
/// Equality (like [`KnowledgeBase`]'s) is over records and arrival order
/// only, never over derived caches or the file-metadata schema stamp.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardedKnowledgeBase {
    /// JSON layout version (serde-defaulted so pre-version files load).
    #[serde(default)]
    pub schema_version: SchemaVersion,
    names: Vec<String>,
    shards: Vec<KnowledgeBase>,
    /// Shard slot of each record, in global arrival order.
    arrival: Vec<u32>,
}

impl PartialEq for ShardedKnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
            && self.shards == other.shards
            && self.arrival == other.arrival
    }
}

impl ShardedKnowledgeBase {
    /// Creates an empty sharded base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sharded base holding the same record stream as `kb`.
    pub fn from_monolithic(kb: &KnowledgeBase) -> Self {
        let mut sharded = ShardedKnowledgeBase::new();
        for r in kb.records() {
            sharded.record(r.clone());
        }
        sharded
    }

    /// Appends one run to the shard owning its instance type (creating the
    /// shard on first sight of the type). Only that shard's dataset cache
    /// is touched.
    pub fn record(&mut self, record: RunRecord) {
        let slot = match self.names.iter().position(|n| *n == record.instance) {
            Some(slot) => slot,
            None => {
                self.names.push(record.instance.clone());
                self.shards.push(KnowledgeBase::new());
                self.names.len() - 1
            }
        };
        self.arrival.push(slot as u32);
        self.shards[slot].record(record);
    }

    /// Total number of stored runs across all shards.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// `true` when no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Number of shards (distinct instance types seen).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Instance-type names with a shard, in first-seen order.
    pub fn shard_names(&self) -> &[String] {
        &self.names
    }

    /// The shard holding the named instance type's records.
    pub fn shard(&self, instance: &str) -> Option<&KnowledgeBase> {
        self.names
            .iter()
            .position(|n| n == instance)
            .map(|slot| &self.shards[slot])
    }

    /// Iterates `(instance name, shard)` pairs in first-seen order.
    pub fn shards(&self) -> impl Iterator<Item = (&str, &KnowledgeBase)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.shards.iter())
    }

    /// Iterates every record in global arrival order — the exact stream a
    /// monolithic [`KnowledgeBase`] fed the same runs would hold.
    pub fn records_in_arrival_order(&self) -> impl Iterator<Item = &RunRecord> + '_ {
        let mut cursors = vec![0usize; self.shards.len()];
        self.arrival.iter().map(move |&slot| {
            let slot = slot as usize;
            let r = &self.shards[slot].records()[cursors[slot]];
            cursors[slot] += 1;
            r
        })
    }

    /// Reconstructs the equivalent monolithic base (records in arrival
    /// order).
    pub fn to_monolithic(&self) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for r in self.records_in_arrival_order() {
            kb.record(r.clone());
        }
        kb
    }

    /// Saves the sharded base as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let json = serde_json::to_string_pretty(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a base previously written with [`ShardedKnowledgeBase::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures; rejects files stamped
    /// with a newer [`SchemaVersion`] than this build supports.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path)?;
        let kb: ShardedKnowledgeBase = serde_json::from_str(&json)?;
        check_schema(kb.schema_version)?;
        Ok(kb)
    }
}

impl KnowledgeStore for ShardedKnowledgeBase {
    fn record(&mut self, record: RunRecord) {
        ShardedKnowledgeBase::record(self, record);
    }

    fn len(&self) -> usize {
        ShardedKnowledgeBase::len(self)
    }

    fn records_in_arrival_order(&self) -> Box<dyn Iterator<Item = &RunRecord> + '_> {
        Box::new(ShardedKnowledgeBase::records_in_arrival_order(self))
    }

    fn to_monolithic(&self) -> KnowledgeBase {
        ShardedKnowledgeBase::to_monolithic(self)
    }

    fn save(&self, path: &Path) -> Result<(), CoreError> {
        ShardedKnowledgeBase::save(self, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn instance() -> InstanceType {
        disar_cloudsim::InstanceCatalog::paper_catalog()
            .get("c3.4xlarge")
            .unwrap()
            .clone()
    }

    #[test]
    fn record_features_shape() {
        let r = RunRecord::new(profile(100), &instance(), 4, 312.0, 0.29);
        let f = r.features();
        assert_eq!(f.len(), RunRecord::feature_names().len());
        assert_eq!(f[0], 100.0); // contracts first
        assert_eq!(f[f.len() - 1], 4.0); // node count last
        assert_eq!(f[6], 16.0); // vcpus of c3.4xlarge
    }

    #[test]
    fn features_for_matches_record_features() {
        let p = profile(42);
        let inst = instance();
        let via_record = RunRecord::new(p, &inst, 2, 1.0, 0.0).features();
        let direct = RunRecord::features_for(&p, &inst, 2);
        assert_eq!(via_record, direct);
    }

    #[test]
    fn dataset_roundtrip() {
        let mut kb = KnowledgeBase::new();
        for i in 1..=20 {
            kb.record(RunRecord::new(
                profile(i * 10),
                &instance(),
                i % 4 + 1,
                100.0 * i as f64,
                0.01 * i as f64,
            ));
        }
        let d = kb.to_dataset().unwrap();
        assert_eq!(d.len(), 20);
        assert_eq!(d.dim(), RunRecord::feature_names().len());
        assert_eq!(d.targets()[4], 500.0);
    }

    #[test]
    fn empty_base_cannot_train() {
        let kb = KnowledgeBase::new();
        assert!(matches!(
            kb.to_dataset(),
            Err(CoreError::InsufficientKnowledge { .. })
        ));
    }

    #[test]
    fn per_instance_filter() {
        let mut kb = KnowledgeBase::new();
        let cat = disar_cloudsim::InstanceCatalog::paper_catalog();
        kb.record(RunRecord::new(
            profile(1),
            cat.get("c3.4xlarge").unwrap(),
            1,
            1.0,
            0.0,
        ));
        kb.record(RunRecord::new(
            profile(2),
            cat.get("m4.4xlarge").unwrap(),
            1,
            2.0,
            0.0,
        ));
        assert_eq!(kb.for_instance("c3.4xlarge").len(), 1);
        assert_eq!(kb.for_instance("m4.4xlarge").len(), 1);
        assert_eq!(kb.for_instance("c4.8xlarge").len(), 0);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut kb = KnowledgeBase::new();
        kb.record(RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07));
        let dir = std::env::temp_dir().join("disar-kb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        kb.save(&path).unwrap();
        let loaded = KnowledgeBase::load(&path).unwrap();
        assert_eq!(kb, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let path = Path::new("/nonexistent/disar/kb.json");
        assert!(matches!(KnowledgeBase::load(path), Err(CoreError::Io(_))));
    }

    #[test]
    fn cached_dataset_tracks_incremental_records() {
        let mut kb = KnowledgeBase::new();
        for i in 1..=10 {
            kb.record(RunRecord::new(profile(i * 10), &instance(), 1, i as f64, 0.0));
        }
        // Build the cache, then append through it.
        assert_eq!(kb.dataset().unwrap().len(), 10);
        for i in 11..=15 {
            kb.record(RunRecord::new(profile(i * 10), &instance(), 2, i as f64, 0.0));
        }
        // The incrementally maintained cache must match a from-scratch
        // featurization of the same records.
        let mut fresh = Dataset::new(RunRecord::feature_names());
        for r in kb.records() {
            fresh.push(r.features(), r.duration_secs).unwrap();
        }
        assert_eq!(*kb.dataset().unwrap(), fresh);
        assert_eq!(kb.to_dataset().unwrap(), fresh);
    }

    /// An interleaved multi-instance record stream for sharding tests.
    fn mixed_records(n: usize) -> Vec<RunRecord> {
        let cat = disar_cloudsim::InstanceCatalog::paper_catalog();
        let names = cat.names();
        (0..n)
            .map(|i| {
                let inst = cat.get(&names[i % names.len()]).unwrap();
                RunRecord::new(
                    profile(50 + (i * 37) % 400),
                    inst,
                    i % 4 + 1,
                    10.0 + i as f64,
                    0.01 * i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn sharded_routes_records_by_instance() {
        let mut skb = ShardedKnowledgeBase::new();
        for r in mixed_records(30) {
            skb.record(r);
        }
        assert_eq!(skb.len(), 30);
        assert!(!skb.is_empty());
        let n_types = disar_cloudsim::InstanceCatalog::paper_catalog()
            .names()
            .len();
        assert_eq!(skb.shard_count(), n_types);
        for (name, shard) in skb.shards() {
            assert_eq!(shard.len(), 30 / n_types);
            assert!(shard.records().iter().all(|r| r.instance == name));
        }
        assert!(skb.shard("no-such-type").is_none());
    }

    #[test]
    fn sharded_preserves_arrival_order() {
        let records = mixed_records(25);
        let mut skb = ShardedKnowledgeBase::new();
        let mut mono = KnowledgeBase::new();
        for r in &records {
            skb.record(r.clone());
            mono.record(r.clone());
        }
        let replayed: Vec<&RunRecord> = skb.records_in_arrival_order().collect();
        assert_eq!(replayed.len(), records.len());
        for (got, want) in replayed.iter().zip(&records) {
            assert_eq!(*got, want);
        }
        assert_eq!(skb.to_monolithic(), mono);
    }

    #[test]
    fn sharded_shard_matches_for_instance_filter() {
        let mut skb = ShardedKnowledgeBase::new();
        let mut mono = KnowledgeBase::new();
        for r in mixed_records(24) {
            skb.record(r.clone());
            mono.record(r);
        }
        for name in skb.shard_names().to_vec() {
            let shard = skb.shard(&name).unwrap();
            assert_eq!(*shard, mono.for_instance(&name));
            assert_eq!(
                *shard.dataset().unwrap(),
                *mono.for_instance(&name).dataset().unwrap()
            );
        }
    }

    #[test]
    fn sharded_from_monolithic_roundtrip() {
        let mut mono = KnowledgeBase::new();
        for r in mixed_records(18) {
            mono.record(r);
        }
        let skb = ShardedKnowledgeBase::from_monolithic(&mono);
        assert_eq!(skb.to_monolithic(), mono);
    }

    #[test]
    fn sharded_save_load_roundtrip() {
        let mut skb = ShardedKnowledgeBase::new();
        for r in mixed_records(12) {
            skb.record(r);
        }
        // Warm a shard cache pre-save; the cache is skipped, not serialized.
        let first = skb.shard_names()[0].clone();
        let _ = skb.shard(&first).unwrap().dataset().unwrap();
        let dir = std::env::temp_dir().join("disar-skb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("skb.json");
        skb.save(&path).unwrap();
        let loaded = ShardedKnowledgeBase::load(&path).unwrap();
        assert_eq!(skb, loaded);
        assert_eq!(loaded.to_monolithic(), skb.to_monolithic());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn knowledge_store_trait_unifies_layouts() {
        let records = mixed_records(20);
        let mut stores: Vec<Box<dyn KnowledgeStore>> = vec![
            Box::new(KnowledgeBase::new()),
            Box::new(ShardedKnowledgeBase::new()),
        ];
        for store in &mut stores {
            for r in &records {
                store.record(r.clone());
            }
            assert_eq!(store.len(), records.len());
            assert!(!store.is_empty());
            let replayed: Vec<RunRecord> =
                store.records_in_arrival_order().cloned().collect();
            assert_eq!(replayed, records);
        }
        assert_eq!(stores[0].to_monolithic(), stores[1].to_monolithic());
    }

    #[test]
    fn with_tenant_tags_record_without_touching_features() {
        let plain = RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07);
        let tagged = plain.clone().with_tenant(TenantId::new("acme-life"));
        assert_eq!(plain.tenant, TenantId::default());
        assert_eq!(tagged.tenant, TenantId::new("acme-life"));
        assert_ne!(plain, tagged);
        // The tenant key routes shards; it must never leak into the ML view.
        assert_eq!(plain.features(), tagged.features());
    }

    #[test]
    fn pre_tenancy_json_loads_with_default_tenant() {
        let r = RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07);
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut().unwrap().remove("tenant").unwrap();
        let loaded: RunRecord = serde_json::from_value(v).unwrap();
        assert_eq!(loaded.tenant, TenantId::default());
        assert_eq!(loaded, r);
    }

    #[test]
    fn pre_version_json_loads_with_current_schema() {
        // Strip the stamp to simulate a file written before versioning.
        let mut kb = KnowledgeBase::new();
        kb.record(RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07));
        let mut v = serde_json::to_value(&kb).unwrap();
        v.as_object_mut().unwrap().remove("schema_version").unwrap();
        let dir = std::env::temp_dir().join("disar-kb-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pre_version.json");
        std::fs::write(&path, v.to_string()).unwrap();
        let loaded = KnowledgeBase::load(&path).unwrap();
        assert_eq!(loaded.schema_version, SchemaVersion::CURRENT);
        assert_eq!(loaded, kb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_schema_is_rejected_by_every_layout() {
        let dir = std::env::temp_dir().join("disar-kb-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        let future = SchemaVersion(SchemaVersion::CURRENT.0 + 1);
        assert!(!future.is_supported());

        let mut kb = KnowledgeBase::new();
        kb.record(RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07));
        kb.schema_version = future;
        let path = dir.join("future_mono.json");
        kb.save(&path).unwrap();
        assert!(matches!(
            KnowledgeBase::load(&path),
            Err(CoreError::UnsupportedSchema { found, supported })
                if found == future.0 && supported == SchemaVersion::CURRENT.0
        ));
        std::fs::remove_file(&path).ok();

        let mut skb = ShardedKnowledgeBase::from_monolithic(&kb);
        skb.schema_version = future;
        let path = dir.join("future_sharded.json");
        skb.save(&path).unwrap();
        assert!(matches!(
            ShardedKnowledgeBase::load(&path),
            Err(CoreError::UnsupportedSchema { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schema_stamp_does_not_enter_equality() {
        let mut a = KnowledgeBase::new();
        a.record(RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07));
        let mut b = a.clone();
        b.schema_version = SchemaVersion(0);
        assert_eq!(a, b);
    }

    #[test]
    fn loaded_base_rebuilds_dataset() {
        let mut kb = KnowledgeBase::new();
        kb.record(RunRecord::new(profile(7), &instance(), 3, 99.5, 0.07));
        kb.record(RunRecord::new(profile(9), &instance(), 1, 42.0, 0.03));
        let _ = kb.dataset().unwrap(); // warm the cache pre-save
        let dir = std::env::temp_dir().join("disar-kb-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        kb.save(&path).unwrap();
        let loaded = KnowledgeBase::load(&path).unwrap();
        assert_eq!(kb, loaded);
        assert_eq!(*loaded.dataset().unwrap(), *kb.dataset().unwrap());
        std::fs::remove_file(&path).ok();
    }
}
