//! The transparent deployer — the paper's self-optimizing loop.
//!
//! "Whenever the user of DISAR starts a new simulation, the interface
//! automatically activates the required number of VMs" (§III). The loop:
//!
//! 1. **Select** a configuration with Algorithm 1 (or randomly during the
//!    bootstrap phase when the knowledge base is still too small, or by
//!    explicit manual override — "our DISAR interface allows to supersede
//!    the ML-based predicted configuration, so as to allow an early manual
//!    training phase");
//! 2. **Run** the job on the (simulated) cloud;
//! 3. **Record** the realized execution time and cost in the knowledge
//!    base — "this approach allows to refine the prediction models while
//!    carrying out useful work";
//! 4. **Retrain** the model family and go to 1 for the next simulation.

use crate::algorithm::{select_configuration_with_rule_threads, TimeEstimate};
use crate::knowledge::{KnowledgeBase, RunRecord, ShardedKnowledgeBase};
use crate::predictor::{PredictorFamily, ShardedPredictor};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::{CloudProvider, JobReport, Workload};
use disar_engine::DisarMaster;
use disar_math::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the deploy configuration was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeployMode {
    /// Algorithm 1, greedy branch (minimum predicted cost).
    MlGreedy,
    /// Algorithm 1, ε-branch (random feasible configuration).
    MlExplored,
    /// Random configuration during the knowledge-base bootstrap phase.
    Bootstrap,
    /// Operator-supplied configuration (manual override).
    Manual,
}

/// Policy knobs of the deployer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeployPolicy {
    /// The Solvency II deadline `T_max` in seconds.
    pub t_max_secs: f64,
    /// Exploration probability ε of Algorithm 1.
    pub epsilon: f64,
    /// Upper bound of the node-count range `N = [1, max]`.
    pub max_nodes: usize,
    /// Knowledge-base size below which configurations are chosen randomly
    /// (the bootstrap/manual-training phase).
    pub min_kb_samples: usize,
    /// Retrain the family every `retrain_every` recorded runs (1 = after
    /// every run, the paper's setting; larger values trade freshness for
    /// speed in large campaigns).
    pub retrain_every: usize,
    /// Worker threads for Algorithm 1's grid sweep and the per-model
    /// retrain. Results are bit-identical for any value; `1` (the default)
    /// is the sequential escape hatch.
    pub n_threads: usize,
}

impl DeployPolicy {
    /// Paper-like defaults: ε = 0.05, up to 8 nodes, 30-sample bootstrap,
    /// retrain after every run, one worker thread per available core
    /// (results are thread-count invariant; set `n_threads: 1` for the
    /// sequential escape hatch).
    pub fn paper_defaults(t_max_secs: f64) -> Self {
        DeployPolicy {
            t_max_secs,
            epsilon: 0.05,
            max_nodes: 8,
            min_kb_samples: 30,
            retrain_every: 1,
            n_threads: disar_math::parallel::default_n_threads(),
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.t_max_secs > 0.0) {
            return Err(CoreError::InvalidParameter("t_max_secs must be positive"));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(CoreError::InvalidParameter("epsilon must be in [0, 1]"));
        }
        if self.max_nodes == 0 {
            return Err(CoreError::InvalidParameter("max_nodes must be > 0"));
        }
        if self.retrain_every == 0 {
            return Err(CoreError::InvalidParameter("retrain_every must be > 0"));
        }
        if self.n_threads == 0 {
            return Err(CoreError::InvalidParameter("n_threads must be > 0"));
        }
        Ok(())
    }
}

/// What one deploy produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployOutcome {
    /// How the configuration was chosen.
    pub mode: DeployMode,
    /// Ensemble-predicted execution time, when ML chose (`None` for
    /// bootstrap/manual deploys).
    pub predicted_secs: Option<f64>,
    /// The cloud's report of the realized run.
    pub report: JobReport,
}

impl DeployOutcome {
    /// Signed prediction error `predicted − real` (the paper's per-sample
    /// `Θ̂ − Θ`), when a prediction was made.
    pub fn prediction_error(&self) -> Option<f64> {
        self.predicted_secs.map(|p| p - self.report.duration_secs)
    }

    /// `true` when the run violated the deadline.
    pub fn missed_deadline(&self, t_max_secs: f64) -> bool {
        self.report.duration_secs > t_max_secs
    }
}

/// The self-optimizing transparent deployer.
pub struct TransparentDeployer {
    provider: CloudProvider,
    policy: DeployPolicy,
    kb: KnowledgeBase,
    family: PredictorFamily,
    seed: u64,
    deploy_counter: u64,
    runs_since_retrain: usize,
}

impl TransparentDeployer {
    /// Creates a deployer with an empty knowledge base.
    pub fn new(provider: CloudProvider, policy: DeployPolicy, seed: u64) -> Self {
        TransparentDeployer {
            provider,
            policy,
            kb: KnowledgeBase::new(),
            family: PredictorFamily::new(seed, 2),
            seed,
            deploy_counter: 0,
            runs_since_retrain: 0,
        }
    }

    /// Seeds the deployer with a pre-existing knowledge base (e.g. loaded
    /// from disk, or transferred from another company's runs).
    pub fn with_knowledge_base(mut self, kb: KnowledgeBase) -> Self {
        self.kb = kb;
        self
    }

    /// The current knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The prediction-model family (e.g. for offline evaluation).
    pub fn family(&self) -> &PredictorFamily {
        &self.family
    }

    /// The active policy.
    pub fn policy(&self) -> &DeployPolicy {
        &self.policy
    }

    /// The underlying cloud provider.
    pub fn provider(&self) -> &CloudProvider {
        &self.provider
    }

    /// Deploys one job: full self-optimizing cycle (select → run → record →
    /// retrain).
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    pub fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        let decision_seed = disar_math::rng::split_seed(self.seed, self.deploy_counter);

        // Bootstrap phase: random configuration, no prediction.
        if self.kb.len() < self.policy.min_kb_samples || !self.family.is_trained() {
            let (instance, n_nodes) = self.random_config(decision_seed);
            return self.execute(profile, workload, &instance, n_nodes, DeployMode::Bootstrap, None);
        }

        let selection = select_configuration_with_rule_threads(
            &self.family,
            self.provider.catalog(),
            profile,
            self.policy.t_max_secs,
            self.policy.max_nodes,
            self.policy.epsilon,
            decision_seed,
            TimeEstimate::EnsembleMean,
            self.policy.n_threads,
        )?;
        let mode = if selection.explored {
            DeployMode::MlExplored
        } else {
            DeployMode::MlGreedy
        };
        let instance = selection.chosen.instance.clone();
        let predicted = selection.chosen.predicted_secs;
        self.execute(
            profile,
            workload,
            &instance,
            selection.chosen.n_nodes,
            mode,
            Some(predicted),
        )
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    pub fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        self.execute(profile, workload, instance, n_nodes, DeployMode::Manual, None)
    }

    /// Deploys one job on a (possibly mixed) heterogeneous configuration —
    /// the §VI extension. Selection uses
    /// [`crate::select_hetero_configuration`] over the homogeneous
    /// knowledge base; the realized run is *not* recorded (mixed runs do
    /// not fit the homogeneous record schema the predictors train on —
    /// knowledge flows homogeneous → hetero only).
    ///
    /// # Errors
    ///
    /// Propagates selection ([`CoreError::NoFeasibleConfiguration`], ML)
    /// and cloud failures.
    pub fn deploy_hetero(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<(crate::hetero::HeteroSelection, disar_cloudsim::HeteroReport), CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        let seed = disar_math::rng::split_seed(self.seed, self.deploy_counter);
        let selection = crate::hetero::select_hetero_configuration_threads(
            &self.family,
            self.provider.catalog(),
            profile,
            self.policy.t_max_secs,
            self.policy.max_nodes,
            self.policy.epsilon,
            seed,
            self.policy.n_threads,
        )?;
        let report = self
            .provider
            .run_hetero_job_with_seed(&selection.chosen.groups, workload, seed ^ 0x4E7E)?;
        Ok((selection, report))
    }

    /// Convenience: deploys a DISAR simulation, deriving the profile and
    /// workload from its master.
    ///
    /// # Errors
    ///
    /// Propagates engine estimation and deploy failures.
    pub fn deploy_simulation(&mut self, master: &DisarMaster) -> Result<DeployOutcome, CoreError> {
        let profile = JobProfile {
            characteristics: master.characteristics()?,
            n_outer: master.spec().n_outer,
            n_inner: master.spec().n_inner,
        };
        let workload = master.cloud_workload()?;
        self.deploy(&profile, &workload)
    }

    fn random_config(&self, seed: u64) -> (String, usize) {
        let mut rng = stream_rng(seed, 0xB00F);
        let names = self.provider.catalog().names();
        let instance = names[rng.gen_range(0..names.len())].clone();
        let n_nodes = rng.gen_range(1..=self.policy.max_nodes);
        (instance, n_nodes)
    }

    fn execute(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
        mode: DeployMode,
        predicted_secs: Option<f64>,
    ) -> Result<DeployOutcome, CoreError> {
        let report = self.provider.run_job(instance, n_nodes, workload)?;
        let inst = self.provider.catalog().get(instance)?.clone();
        self.kb.record(RunRecord::new(
            *profile,
            &inst,
            n_nodes,
            report.duration_secs,
            report.prorated_cost,
        ));
        self.runs_since_retrain += 1;
        if self.kb.len() >= self.policy.min_kb_samples.max(2)
            && self.runs_since_retrain >= self.policy.retrain_every
        {
            self.family
                .retrain_with_threads(&self.kb, self.policy.n_threads)?;
            self.runs_since_retrain = 0;
        }
        Ok(DeployOutcome {
            mode,
            predicted_secs,
            report,
        })
    }
}

/// The self-optimizing deployer over the sharded knowledge layout.
///
/// Behaviourally a [`TransparentDeployer`] whose records land in
/// per-instance-type shards ([`ShardedKnowledgeBase`]) with one predictor
/// family per shard ([`ShardedPredictor`]): a recorded run dirties exactly
/// one shard and the after-run retrain touches only that shard's records —
/// O(shard) instead of O(total base) on the hot path.
///
/// Two structural differences from the monolithic loop follow from the
/// layout:
///
/// - the bootstrap phase runs until the base holds `min_kb_samples` runs
///   **and** every catalog type has a trained shard (Algorithm 1's sweep
///   queries all types, and an untrained shard cannot answer);
/// - shards retrain as soon as they hold the family's minimum sample
///   count, independent of the global bootstrap threshold.
pub struct ShardedDeployer {
    provider: CloudProvider,
    policy: DeployPolicy,
    kb: ShardedKnowledgeBase,
    predictor: ShardedPredictor,
    seed: u64,
    deploy_counter: u64,
    runs_since_retrain: usize,
}

impl ShardedDeployer {
    /// Creates a sharded deployer with an empty knowledge base.
    pub fn new(provider: CloudProvider, policy: DeployPolicy, seed: u64) -> Self {
        ShardedDeployer {
            provider,
            policy,
            kb: ShardedKnowledgeBase::new(),
            predictor: ShardedPredictor::new(seed, 2),
            seed,
            deploy_counter: 0,
            runs_since_retrain: 0,
        }
    }

    /// Seeds the deployer with a pre-existing sharded base (e.g. loaded
    /// from disk, or [`ShardedKnowledgeBase::from_monolithic`]). Call
    /// [`ShardedDeployer::warm`] afterwards to train the shards without
    /// waiting for fresh runs.
    pub fn with_knowledge_base(mut self, kb: ShardedKnowledgeBase) -> Self {
        self.kb = kb;
        self
    }

    /// The current sharded knowledge base.
    pub fn knowledge_base(&self) -> &ShardedKnowledgeBase {
        &self.kb
    }

    /// The per-shard predictor (e.g. for offline evaluation).
    pub fn predictor(&self) -> &ShardedPredictor {
        &self.predictor
    }

    /// The active policy.
    pub fn policy(&self) -> &DeployPolicy {
        &self.policy
    }

    /// The underlying cloud provider.
    pub fn provider(&self) -> &CloudProvider {
        &self.provider
    }

    /// Retrains every shard holding enough records — the bulk warm-up for
    /// a pre-seeded base.
    ///
    /// # Errors
    ///
    /// Propagates the first shard-retrain failure.
    pub fn warm(&mut self) -> Result<(), CoreError> {
        self.policy.validate()?;
        self.predictor
            .retrain_all_with_threads(&self.kb, self.policy.n_threads)
    }

    fn catalog_covered(&self) -> bool {
        self.provider
            .catalog()
            .names()
            .iter()
            .all(|n| self.predictor.is_trained_for(n))
    }

    /// Deploys one job: the full select → run → record → retrain-one-shard
    /// cycle.
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    pub fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        let decision_seed = disar_math::rng::split_seed(self.seed, self.deploy_counter);

        if self.kb.len() < self.policy.min_kb_samples || !self.catalog_covered() {
            let (instance, n_nodes) = self.random_config(decision_seed);
            return self.execute(profile, workload, &instance, n_nodes, DeployMode::Bootstrap, None);
        }

        let selection = select_configuration_with_rule_threads(
            &self.predictor,
            self.provider.catalog(),
            profile,
            self.policy.t_max_secs,
            self.policy.max_nodes,
            self.policy.epsilon,
            decision_seed,
            TimeEstimate::EnsembleMean,
            self.policy.n_threads,
        )?;
        let mode = if selection.explored {
            DeployMode::MlExplored
        } else {
            DeployMode::MlGreedy
        };
        let instance = selection.chosen.instance.clone();
        let predicted = selection.chosen.predicted_secs;
        self.execute(
            profile,
            workload,
            &instance,
            selection.chosen.n_nodes,
            mode,
            Some(predicted),
        )
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    pub fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        self.execute(profile, workload, instance, n_nodes, DeployMode::Manual, None)
    }

    fn random_config(&self, seed: u64) -> (String, usize) {
        let mut rng = stream_rng(seed, 0xB00F);
        let names = self.provider.catalog().names();
        let instance = names[rng.gen_range(0..names.len())].clone();
        let n_nodes = rng.gen_range(1..=self.policy.max_nodes);
        (instance, n_nodes)
    }

    fn execute(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
        mode: DeployMode,
        predicted_secs: Option<f64>,
    ) -> Result<DeployOutcome, CoreError> {
        let report = self.provider.run_job(instance, n_nodes, workload)?;
        let inst = self.provider.catalog().get(instance)?.clone();
        self.kb.record(RunRecord::new(
            *profile,
            &inst,
            n_nodes,
            report.duration_secs,
            report.prorated_cost,
        ));
        self.runs_since_retrain += 1;
        if self.runs_since_retrain >= self.policy.retrain_every {
            let shard = self.kb.shard(instance).expect("record() created the shard");
            if shard.len() >= self.predictor.min_samples() {
                self.predictor
                    .retrain_shard_with_threads(instance, shard, self.policy.n_threads)?;
                self.runs_since_retrain = 0;
            }
        }
        Ok(DeployOutcome {
            mode,
            predicted_secs,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_cloudsim::InstanceCatalog;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn workload(contracts: usize) -> Workload {
        Workload::new(30.0 * contracts as f64, 0.02 * contracts as f64, 0.8 * contracts as f64, 0.05)
            .unwrap()
    }

    fn deployer(seed: u64) -> TransparentDeployer {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
        let policy = DeployPolicy {
            t_max_secs: 50_000.0,
            epsilon: 0.05,
            max_nodes: 4,
            min_kb_samples: 8,
            retrain_every: 1,
            n_threads: 1,
        };
        TransparentDeployer::new(provider, policy, seed)
    }

    #[test]
    fn bootstrap_then_ml_transition() {
        let mut d = deployer(1);
        let mut modes = Vec::new();
        for i in 0..14 {
            let out = d
                .deploy(&profile(100 + i * 13), &workload(100 + i * 13))
                .unwrap();
            modes.push(out.mode);
        }
        // First 8 deploys are bootstrap, later ones ML-driven.
        assert!(modes[..8].iter().all(|m| *m == DeployMode::Bootstrap));
        assert!(modes[9..]
            .iter()
            .all(|m| matches!(m, DeployMode::MlGreedy | DeployMode::MlExplored)));
        assert_eq!(d.knowledge_base().len(), 14);
    }

    #[test]
    fn ml_deploys_carry_predictions() {
        let mut d = deployer(2);
        for i in 0..10 {
            d.deploy(&profile(80 + i * 17), &workload(80 + i * 17))
                .unwrap();
        }
        let out = d.deploy(&profile(150), &workload(150)).unwrap();
        assert!(out.predicted_secs.is_some());
        assert!(out.prediction_error().is_some());
    }

    #[test]
    fn manual_override_is_recorded_and_learned() {
        let mut d = deployer(3);
        let out = d
            .deploy_manual(&profile(100), &workload(100), "m4.10xlarge", 2)
            .unwrap();
        assert_eq!(out.mode, DeployMode::Manual);
        assert_eq!(out.report.instance, "m4.10xlarge");
        assert_eq!(out.report.n_nodes, 2);
        assert!(out.predicted_secs.is_none());
        assert_eq!(d.knowledge_base().len(), 1);
    }

    #[test]
    fn knowledge_base_grows_monotonically() {
        let mut d = deployer(4);
        for i in 0..5 {
            d.deploy(&profile(60 + i), &workload(60 + i)).unwrap();
            assert_eq!(d.knowledge_base().len(), i + 1);
        }
    }

    #[test]
    fn preseeded_kb_skips_bootstrap() {
        // Build a KB from one deployer's bootstrap, hand it to another.
        let mut first = deployer(5);
        for i in 0..10 {
            first.deploy(&profile(70 + i * 11), &workload(70 + i * 11)).unwrap();
        }
        let kb = first.knowledge_base().clone();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 6);
        let policy = DeployPolicy {
            min_kb_samples: 8,
            ..*first.policy()
        };
        let mut second = TransparentDeployer::new(provider, policy, 6).with_knowledge_base(kb);
        // Family is untrained, so the very first deploy is still bootstrap
        // (it trains right after); the second is ML.
        let o1 = second.deploy(&profile(100), &workload(100)).unwrap();
        assert_eq!(o1.mode, DeployMode::Bootstrap);
        let o2 = second.deploy(&profile(100), &workload(100)).unwrap();
        assert!(matches!(o2.mode, DeployMode::MlGreedy | DeployMode::MlExplored));
    }

    #[test]
    fn predictions_improve_with_experience() {
        // After enough homogeneous runs the ensemble should predict within
        // a modest relative error on a familiar workload.
        let mut d = deployer(7);
        let mut last_err = None;
        for i in 0..40 {
            let c = 100 + (i * 29) % 200;
            let out = d.deploy(&profile(c), &workload(c)).unwrap();
            if let Some(p) = out.predicted_secs {
                last_err = Some(((p - out.report.duration_secs) / out.report.duration_secs).abs());
            }
        }
        let err = last_err.expect("ML deploys happened");
        assert!(err < 0.6, "relative error after 40 runs: {err}");
    }

    #[test]
    fn policy_validation() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let mut bad = DeployPolicy::paper_defaults(3600.0);
        bad.epsilon = 2.0;
        let mut d = TransparentDeployer::new(provider, bad, 1);
        assert!(d.deploy(&profile(10), &workload(10)).is_err());
    }

    #[test]
    fn hetero_deploy_after_training() {
        let mut d = deployer(11);
        // Warm up with homogeneous deploys.
        for i in 0..12 {
            d.deploy(&profile(80 + i * 23), &workload(80 + i * 23)).unwrap();
        }
        let kb_before = d.knowledge_base().len();
        let (sel, report) = d.deploy_hetero(&profile(200), &workload(200)).unwrap();
        assert!(!sel.feasible.is_empty());
        assert!(report.duration_secs > 0.0);
        assert!(report.prorated_cost > 0.0);
        // Hetero runs are not recorded (homogeneous-only knowledge base).
        assert_eq!(d.knowledge_base().len(), kb_before);
    }

    #[test]
    fn hetero_deploy_untrained_fails_cleanly() {
        let mut d = deployer(13);
        assert!(matches!(
            d.deploy_hetero(&profile(100), &workload(100)),
            Err(CoreError::Ml(_))
        ));
    }

    #[test]
    fn retrain_every_batches_training() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 9);
        let policy = DeployPolicy {
            t_max_secs: 50_000.0,
            epsilon: 0.0,
            max_nodes: 3,
            min_kb_samples: 4,
            retrain_every: 5,
            n_threads: 1,
        };
        let mut d = TransparentDeployer::new(provider, policy, 9);
        for i in 0..6 {
            d.deploy(&profile(50 + i * 7), &workload(50 + i * 7)).unwrap();
        }
        // Trained at run 5 (first multiple of 5 past the 4-sample floor).
        assert_eq!(d.family().trained_on(), 5);
    }

    #[test]
    fn threaded_deployer_matches_sequential() {
        // The full select → run → record → retrain loop must be
        // bit-identical regardless of the thread count.
        let run = |n_threads: usize| {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 21);
            let policy = DeployPolicy {
                t_max_secs: 50_000.0,
                epsilon: 0.05,
                max_nodes: 4,
                min_kb_samples: 8,
                retrain_every: 1,
                n_threads,
            };
            let mut d = TransparentDeployer::new(provider, policy, 21);
            let outs: Vec<DeployOutcome> = (0..16)
                .map(|i| {
                    d.deploy(&profile(90 + i * 19), &workload(90 + i * 19))
                        .unwrap()
                })
                .collect();
            (outs, d.knowledge_base().clone())
        };
        let (seq_outs, seq_kb) = run(1);
        let (par_outs, par_kb) = run(4);
        assert_eq!(seq_outs, par_outs);
        assert_eq!(seq_kb, par_kb);
    }

    #[test]
    fn zero_thread_policy_is_rejected() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let mut bad = DeployPolicy::paper_defaults(3600.0);
        bad.n_threads = 0;
        let mut d = TransparentDeployer::new(provider, bad, 1);
        assert!(d.deploy(&profile(10), &workload(10)).is_err());
    }

    #[test]
    fn paper_defaults_use_available_parallelism() {
        let p = DeployPolicy::paper_defaults(3600.0);
        assert_eq!(p.n_threads, disar_math::parallel::default_n_threads());
        assert!(p.n_threads >= 1);
    }

    fn sharded_deployer(seed: u64) -> ShardedDeployer {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
        let policy = DeployPolicy {
            t_max_secs: 50_000.0,
            epsilon: 0.05,
            max_nodes: 4,
            min_kb_samples: 8,
            retrain_every: 1,
            n_threads: 1,
        };
        ShardedDeployer::new(provider, policy, seed)
    }

    #[test]
    fn sharded_bootstrap_reaches_ml_phase() {
        // Bootstrap must run until every catalog type has a trained shard;
        // from then on deploys are ML-driven and each one retrains only the
        // shard it recorded into.
        let mut d = sharded_deployer(17);
        let mut ml_at = None;
        for i in 0..200 {
            let c = 80 + (i * 19) % 300;
            let out = d.deploy(&profile(c), &workload(c)).unwrap();
            match out.mode {
                DeployMode::Bootstrap => {
                    assert!(ml_at.is_none(), "bootstrap after the ML phase began")
                }
                _ => {
                    if ml_at.is_none() {
                        ml_at = Some(i);
                    }
                    assert!(out.predicted_secs.is_some());
                }
            }
            if i >= ml_at.map_or(usize::MAX, |at| at + 5) {
                break;
            }
        }
        let at = ml_at.expect("ML phase never reached in 200 deploys");
        // Coverage needs two records in each of the six shards, so the
        // first ML deploy cannot come before the 13th.
        assert!(at >= 12, "ML phase began after only {at} bootstrap runs");
        let cat = InstanceCatalog::paper_catalog();
        for name in cat.names() {
            assert!(d.predictor().is_trained_for(&name));
        }
        assert_eq!(d.knowledge_base().len() as u64, {
            let mut n = 0;
            for (_, s) in d.knowledge_base().shards() {
                n += s.len() as u64;
            }
            n
        });
    }

    #[test]
    fn sharded_deployer_is_deterministic() {
        let run = || {
            let mut d = sharded_deployer(23);
            (0..30)
                .map(|i| {
                    let c = 70 + (i * 13) % 250;
                    d.deploy(&profile(c), &workload(c)).unwrap()
                })
                .collect::<Vec<DeployOutcome>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn preseeded_sharded_kb_warms_and_skips_bootstrap() {
        // Bootstrap one deployer past coverage, transplant its base into a
        // fresh deployer, warm(), and the first deploy is already ML.
        let mut first = sharded_deployer(29);
        for i in 0..120 {
            let c = 60 + (i * 23) % 280;
            let out = first.deploy(&profile(c), &workload(c)).unwrap();
            if out.mode != DeployMode::Bootstrap {
                break;
            }
        }
        let kb = first.knowledge_base().clone();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 31);
        let mut second = ShardedDeployer::new(provider, *first.policy(), 31).with_knowledge_base(kb);
        second.warm().unwrap();
        let out = second.deploy(&profile(150), &workload(150)).unwrap();
        assert!(matches!(
            out.mode,
            DeployMode::MlGreedy | DeployMode::MlExplored
        ));
    }

    #[test]
    fn sharded_manual_deploy_records_into_one_shard() {
        let mut d = sharded_deployer(37);
        let out = d
            .deploy_manual(&profile(100), &workload(100), "m4.10xlarge", 2)
            .unwrap();
        assert_eq!(out.mode, DeployMode::Manual);
        assert_eq!(d.knowledge_base().len(), 1);
        assert_eq!(d.knowledge_base().shard_count(), 1);
        assert_eq!(d.knowledge_base().shard("m4.10xlarge").unwrap().len(), 1);
    }
}
