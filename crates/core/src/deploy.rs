//! The transparent deployer — the paper's self-optimizing loop.
//!
//! "Whenever the user of DISAR starts a new simulation, the interface
//! automatically activates the required number of VMs" (§III). The loop:
//!
//! 1. **Select** a configuration with Algorithm 1 (or randomly during the
//!    bootstrap phase when the knowledge base is still too small, or by
//!    explicit manual override — "our DISAR interface allows to supersede
//!    the ML-based predicted configuration, so as to allow an early manual
//!    training phase");
//! 2. **Run** the job on the (simulated) cloud;
//! 3. **Record** the realized execution time and cost in the knowledge
//!    base — "this approach allows to refine the prediction models while
//!    carrying out useful work";
//! 4. **Retrain** the model family and go to 1 for the next simulation.
//!
//! Two backends implement the loop behind the [`Deployer`] trait: the
//! monolithic [`TransparentDeployer`] and the instance-type-sharded
//! [`ShardedDeployer`]. The trait splits one `deploy()` into its
//! *decision* ([`Deployer::select`] / [`Deployer::begin_manual`]) and
//! *feedback* ([`Deployer::record`]) halves so [`crate::pipeline`] can
//! overlap the decision for job *k+1* with the cloud run of job *k*
//! without changing the paper's semantics (see
//! [`Deployer::selection_ready`]).

use crate::algorithm::{select_configuration_with_workspace, SelectionWorkspace, TimeEstimate};
use crate::drift::{DriftConfig, DriftState};
use crate::knowledge::{KnowledgeBase, RunRecord, ShardedKnowledgeBase};
use crate::predictor::{PredictorFamily, RetrainMode, ShardedPredictor, TimePredictor};
use crate::profile::JobProfile;
use crate::tenant::TransferPolicy;
use crate::CoreError;
use disar_cloudsim::{CloudProvider, JobReport, Workload};
use disar_engine::DisarMaster;
use disar_math::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the deploy configuration was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeployMode {
    /// Algorithm 1, greedy branch (minimum predicted cost).
    MlGreedy,
    /// Algorithm 1, ε-branch (random feasible configuration).
    MlExplored,
    /// Random configuration during the knowledge-base bootstrap phase.
    Bootstrap,
    /// Operator-supplied configuration (manual override).
    Manual,
}

/// Policy knobs of the deployer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeployPolicy {
    /// The Solvency II deadline `T_max` in seconds.
    pub t_max_secs: f64,
    /// Exploration probability ε of Algorithm 1.
    pub epsilon: f64,
    /// Upper bound of the node-count range `N = [1, max]`.
    pub max_nodes: usize,
    /// Knowledge-base size below which configurations are chosen randomly
    /// (the bootstrap/manual-training phase).
    pub min_kb_samples: usize,
    /// Retrain the family every `retrain_every` recorded runs (1 = after
    /// every run, the paper's setting; larger values trade freshness for
    /// speed in large campaigns).
    pub retrain_every: usize,
    /// Worker threads for Algorithm 1's grid sweep and the per-model
    /// retrain. Results are bit-identical for any value; `1` (the default)
    /// is the sequential escape hatch.
    pub n_threads: usize,
    /// How knowledge is shared across tenants (companies). Consulted only
    /// by the tenant-aware [`crate::tenant::TenantShardedDeployer`]; the
    /// single-tenant backends ignore it. Defaults to
    /// [`TransferPolicy::Isolated`] (also for pre-tenancy JSON via serde).
    #[serde(default)]
    pub transfer: TransferPolicy,
    /// Base retrain mode every scheduled retrain uses (bulk warm-ups and
    /// the after-run cadence alike). Defaults to
    /// [`RetrainMode::Incremental`] — the bit-identity-preserving path —
    /// also for pre-drift policy JSON via serde. A firing drift detector
    /// escalates *past* this mode per [`DeployPolicy::drift`].
    #[serde(default)]
    pub retrain_mode: RetrainMode,
    /// Drift-adaptation block: residual change detector, sensitivity and
    /// the escalated windowed-retrain shape. Defaults to
    /// [`crate::drift::DetectorKind::Off`] (never fires, stationary
    /// behaviour), also for pre-drift policy JSON via serde.
    #[serde(default)]
    pub drift: DriftConfig,
}

impl DeployPolicy {
    /// Paper-like defaults: ε = 0.05, up to 8 nodes, 30-sample bootstrap,
    /// retrain after every run, one worker thread per available core
    /// (results are thread-count invariant; set `n_threads: 1` for the
    /// sequential escape hatch), tenants isolated.
    pub fn paper_defaults(t_max_secs: f64) -> Self {
        DeployPolicy {
            t_max_secs,
            epsilon: 0.05,
            max_nodes: 8,
            min_kb_samples: 30,
            retrain_every: 1,
            n_threads: disar_math::parallel::default_n_threads(),
            transfer: TransferPolicy::Isolated,
            retrain_mode: RetrainMode::Incremental,
            drift: DriftConfig::default(),
        }
    }

    /// Starts a chainable policy build from
    /// [`DeployPolicy::paper_defaults`] — the one construction path that
    /// survives new policy knobs without touching every caller.
    pub fn builder(t_max_secs: f64) -> DeployPolicyBuilder {
        DeployPolicyBuilder {
            policy: DeployPolicy::paper_defaults(t_max_secs),
        }
    }

    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if !(self.t_max_secs > 0.0) {
            return Err(CoreError::InvalidParameter("t_max_secs must be positive"));
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(CoreError::InvalidParameter("epsilon must be in [0, 1]"));
        }
        if self.max_nodes == 0 {
            return Err(CoreError::InvalidParameter("max_nodes must be > 0"));
        }
        if self.retrain_every == 0 {
            return Err(CoreError::InvalidParameter("retrain_every must be > 0"));
        }
        if self.n_threads == 0 {
            return Err(CoreError::InvalidParameter("n_threads must be > 0"));
        }
        if let RetrainMode::Windowed { window, decay } = self.retrain_mode {
            if window == 0 {
                return Err(CoreError::InvalidParameter(
                    "retrain_mode window must be > 0",
                ));
            }
            if !(0.0..=1.0).contains(&decay) {
                return Err(CoreError::InvalidParameter(
                    "retrain_mode decay must be in [0, 1]",
                ));
            }
        }
        if self.drift.enabled() {
            if !(self.drift.threshold > 0.0) {
                return Err(CoreError::InvalidParameter(
                    "drift threshold must be positive",
                ));
            }
            if !(self.drift.delta > 0.0) {
                return Err(CoreError::InvalidParameter("drift delta must be positive"));
            }
            if self.drift.window == 0 {
                return Err(CoreError::InvalidParameter("drift window must be > 0"));
            }
            if !(0.0..=1.0).contains(&self.drift.decay) {
                return Err(CoreError::InvalidParameter(
                    "drift decay must be in [0, 1]",
                ));
            }
        }
        Ok(())
    }
}

/// Chainable construction of a [`DeployPolicy`].
///
/// Starts from [`DeployPolicy::paper_defaults`] and overrides only the
/// named knobs, so call sites state their deltas from the paper's setting
/// instead of re-listing every field (and keep compiling when the policy
/// grows a knob). Validation stays where it always was — on the deploy
/// path — so `build()` is infallible.
#[derive(Debug, Clone, Copy)]
pub struct DeployPolicyBuilder {
    policy: DeployPolicy,
}

impl DeployPolicyBuilder {
    /// Sets the exploration probability ε of Algorithm 1.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.policy.epsilon = epsilon;
        self
    }

    /// Sets the upper bound of the node-count range `N = [1, max]`.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.policy.max_nodes = max_nodes;
        self
    }

    /// Sets the bootstrap threshold (knowledge-base size below which
    /// configurations are chosen randomly).
    pub fn min_kb_samples(mut self, min_kb_samples: usize) -> Self {
        self.policy.min_kb_samples = min_kb_samples;
        self
    }

    /// Sets the retrain cadence (retrain every `retrain_every` records).
    pub fn retrain_every(mut self, retrain_every: usize) -> Self {
        self.policy.retrain_every = retrain_every;
        self
    }

    /// Sets the worker-thread count (results are thread-count invariant).
    pub fn n_threads(mut self, n_threads: usize) -> Self {
        self.policy.n_threads = n_threads;
        self
    }

    /// Sets the cross-tenant knowledge-transfer policy.
    pub fn transfer(mut self, transfer: TransferPolicy) -> Self {
        self.policy.transfer = transfer;
        self
    }

    /// Sets the base retrain mode used by every scheduled retrain.
    pub fn retrain_mode(mut self, retrain_mode: RetrainMode) -> Self {
        self.policy.retrain_mode = retrain_mode;
        self
    }

    /// Sets the drift-adaptation block (detector + escalation shape).
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.policy.drift = drift;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DeployPolicy {
        self.policy
    }
}

/// What one deploy produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployOutcome {
    /// How the configuration was chosen.
    pub mode: DeployMode,
    /// Ensemble-predicted execution time, when ML chose (`None` for
    /// bootstrap/manual deploys).
    pub predicted_secs: Option<f64>,
    /// The cloud's report of the realized run.
    pub report: JobReport,
}

impl DeployOutcome {
    /// Signed prediction error `predicted − real` (the paper's per-sample
    /// `Θ̂ − Θ`), when a prediction was made.
    pub fn prediction_error(&self) -> Option<f64> {
        self.predicted_secs.map(|p| p - self.report.duration_secs)
    }

    /// `true` when the run violated the deadline.
    pub fn missed_deadline(&self, t_max_secs: f64) -> bool {
        self.report.duration_secs > t_max_secs
    }
}

/// A committed deploy decision: the configuration a job *will* run on,
/// before the run has executed.
///
/// This is the first half of a [`DeployOutcome`]; [`Deployer::record`]
/// turns it into knowledge once the cloud's [`JobReport`] arrives. The
/// pipeline keeps the decisions of in-flight runs and passes them as the
/// `pending` argument of [`Deployer::select`] /
/// [`Deployer::selection_ready`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployDecision {
    /// How the configuration was chosen.
    pub mode: DeployMode,
    /// Instance-type name the job will run on.
    pub instance: String,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Ensemble-predicted execution time, when ML chose.
    pub predicted_secs: Option<f64>,
}

/// The self-optimizing deploy service, split into decision and feedback
/// halves.
///
/// Implementors ([`TransparentDeployer`], [`ShardedDeployer`]) own the
/// knowledge base, the predictor(s) and a shared handle on the cloud
/// provider. The provided [`Deployer::deploy`] / [`Deployer::deploy_manual`]
/// compose the halves back into the paper's sequential loop; the
/// event-driven [`crate::pipeline::DeployPipeline`] drives the halves
/// directly so selection and execution can overlap.
///
/// # The `pending` contract
///
/// `select` and `selection_ready` take the decisions of runs that have been
/// *issued but not yet recorded*, in job order. A selection must behave
/// exactly as if those records had already landed — which is only possible
/// when its result does not depend on their still-unknown outcomes:
///
/// - bootstrap-phase selections are RNG-only (seeded by the deploy
///   counter), so they never depend on pending outcomes;
/// - ML selections are valid while no retrain is scheduled to fire among
///   the pending records (the family snapshot the sequential loop would
///   use is the current one);
/// - otherwise `selection_ready` returns `false` and the caller must land
///   records first.
///
/// Whether a retrain fires is deterministic given the pending decisions
/// alone (the gates count records and shard sizes, never realized times),
/// so readiness never needs to wait on a run's result.
pub trait Deployer {
    /// The active policy.
    fn policy(&self) -> &DeployPolicy;

    /// The underlying cloud provider.
    fn provider(&self) -> &CloudProvider;

    /// An owned handle on the provider, for workers that must outlive a
    /// mutable borrow of the deployer (the pipeline's run threads).
    fn provider_handle(&self) -> Arc<CloudProvider>;

    /// Number of records in the knowledge base.
    fn kb_len(&self) -> usize;

    /// Trains the predictor(s) on the current knowledge base — the bulk
    /// warm-up for a pre-seeded base.
    ///
    /// # Errors
    ///
    /// Propagates policy validation and the first training failure (e.g.
    /// [`CoreError::InsufficientKnowledge`] on a base that is too small).
    fn warm(&mut self) -> Result<(), CoreError>;

    /// `true` when the next selection can be made *now*, as if the
    /// `pending` records had already landed (see the trait docs).
    fn selection_ready(&self, pending: &[DeployDecision]) -> bool;

    /// Chooses the configuration for the next job, given the decisions of
    /// in-flight runs. Advances the deploy counter. Callers must only pass
    /// a non-empty `pending` after `selection_ready(pending)` returned
    /// `true`.
    ///
    /// # Errors
    ///
    /// Propagates policy validation and Algorithm 1 failures (including
    /// [`CoreError::NoFeasibleConfiguration`]).
    fn select(
        &mut self,
        profile: &JobProfile,
        pending: &[DeployDecision],
    ) -> Result<DeployDecision, CoreError>;

    /// Registers an operator-forced configuration (manual override) as the
    /// next decision. Advances the deploy counter; always ready (no
    /// selection happens).
    ///
    /// # Errors
    ///
    /// Propagates policy validation.
    fn begin_manual(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError>;

    /// Feeds one finished run back into the knowledge base and retrains
    /// per policy. Records must land in job order.
    ///
    /// # Errors
    ///
    /// Propagates catalog lookups and retrain failures; the record itself
    /// lands before a retrain can fail.
    fn record(
        &mut self,
        profile: &JobProfile,
        decision: &DeployDecision,
        report: &JobReport,
    ) -> Result<(), CoreError>;

    /// Deploys one job: full self-optimizing cycle (select → run → record →
    /// retrain), the paper's sequential loop.
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        let decision = self.select(profile, &[])?;
        let report = self
            .provider()
            .run_job(&decision.instance, decision.n_nodes, workload)?;
        self.record(profile, &decision, &report)?;
        Ok(DeployOutcome {
            mode: decision.mode,
            predicted_secs: decision.predicted_secs,
            report,
        })
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        let decision = self.begin_manual(instance, n_nodes)?;
        let report = self
            .provider()
            .run_job(&decision.instance, decision.n_nodes, workload)?;
        self.record(profile, &decision, &report)?;
        Ok(DeployOutcome {
            mode: decision.mode,
            predicted_secs: decision.predicted_secs,
            report,
        })
    }
}

/// State every deployer backend shares: the provider handle, the policy
/// and the decision-seed bookkeeping. Keeping it in one place stops the
/// backend `deploy()` bodies (including the tenant-aware one in
/// [`crate::tenant`]) from drifting.
pub(crate) struct DeployerCore {
    pub(crate) provider: Arc<CloudProvider>,
    pub(crate) policy: DeployPolicy,
    seed: u64,
    pub(crate) deploy_counter: u64,
    pub(crate) runs_since_retrain: usize,
    /// Warm Algorithm 1 buffers, reused across this deployer's decisions so
    /// steady-state selections stay allocation-free.
    selection: SelectionWorkspace,
}

impl DeployerCore {
    pub(crate) fn new(provider: Arc<CloudProvider>, policy: DeployPolicy, seed: u64) -> Self {
        DeployerCore {
            provider,
            policy,
            seed,
            deploy_counter: 0,
            runs_since_retrain: 0,
            selection: SelectionWorkspace::new(),
        }
    }

    /// Bumps the deploy counter and derives this deploy's decision seed —
    /// counter-based, so decisions depend only on submission order.
    pub(crate) fn next_decision_seed(&mut self) -> u64 {
        self.deploy_counter += 1;
        disar_math::rng::split_seed(self.seed, self.deploy_counter)
    }

    /// A uniformly random `(instance, n_nodes)` for the bootstrap phase.
    pub(crate) fn random_config(&self, seed: u64) -> (String, usize) {
        let mut rng = stream_rng(seed, 0xB00F);
        let names = self.provider.catalog().names();
        let instance = names[rng.gen_range(0..names.len())].clone();
        let n_nodes = rng.gen_range(1..=self.policy.max_nodes);
        (instance, n_nodes)
    }

    /// The shared manual-override half of every backend's `begin_manual`:
    /// validates the policy and burns one decision-counter tick, so forced
    /// and automatic deploys draw from the same seed stream.
    ///
    /// # Errors
    ///
    /// Propagates policy validation failures.
    pub(crate) fn manual_decision(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError> {
        self.policy.validate()?;
        self.deploy_counter += 1;
        Ok(DeployDecision {
            mode: DeployMode::Manual,
            instance: instance.to_string(),
            n_nodes,
            predicted_secs: None,
        })
    }

    /// Algorithm 1 over the given predictor — the shared ML half of every
    /// backend's `select`.
    pub(crate) fn ml_select<P: TimePredictor + ?Sized>(
        &mut self,
        predictor: &P,
        profile: &JobProfile,
        decision_seed: u64,
    ) -> Result<DeployDecision, CoreError> {
        let selection = select_configuration_with_workspace(
            predictor,
            self.provider.catalog(),
            profile,
            self.policy.t_max_secs,
            self.policy.max_nodes,
            self.policy.epsilon,
            decision_seed,
            TimeEstimate::EnsembleMean,
            self.policy.n_threads,
            &mut self.selection,
        )?;
        Ok(DeployDecision {
            mode: if selection.explored {
                DeployMode::MlExplored
            } else {
                DeployMode::MlGreedy
            },
            instance: selection.chosen.instance,
            n_nodes: selection.chosen.n_nodes,
            predicted_secs: Some(selection.chosen.predicted_secs),
        })
    }
}

/// Virtual knowledge-base state after landing a set of pending records —
/// computable without their outcomes because the retrain gates only count.
pub(crate) struct PendingSim {
    /// Knowledge-base size once every pending record has landed.
    pub(crate) virtual_len: usize,
    /// Whether the predictor would be trained/covered at that point.
    pub(crate) virtual_trained: bool,
    /// Whether landing the pending records fires at least one retrain
    /// (i.e. the current predictor snapshot would go stale).
    pub(crate) retrain_pending: bool,
}

/// The self-optimizing transparent deployer.
pub struct TransparentDeployer {
    core: DeployerCore,
    kb: KnowledgeBase,
    family: PredictorFamily,
    /// Residual drift detector + retrain escalation ladder (inert unless
    /// the policy enables a detector).
    drift: DriftState,
    /// Number of detector fires so far, for observability.
    drift_fires: u64,
}

impl TransparentDeployer {
    /// Creates a deployer with an empty knowledge base.
    pub fn new(provider: CloudProvider, policy: DeployPolicy, seed: u64) -> Self {
        Self::from_shared(Arc::new(provider), policy, seed)
    }

    /// Creates a deployer over an already-shared provider (e.g. one a
    /// [`crate::pipeline::DeployPipeline`] driver also holds a handle on).
    pub fn from_shared(provider: Arc<CloudProvider>, policy: DeployPolicy, seed: u64) -> Self {
        TransparentDeployer {
            family: PredictorFamily::new(seed, 2),
            drift: DriftState::new(&policy.drift),
            drift_fires: 0,
            core: DeployerCore::new(provider, policy, seed),
            kb: KnowledgeBase::new(),
        }
    }

    /// Seeds the deployer with a pre-existing knowledge base (e.g. loaded
    /// from disk, or transferred from another company's runs).
    pub fn with_knowledge_base(mut self, kb: KnowledgeBase) -> Self {
        self.kb = kb;
        self
    }

    /// The current knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Consumes the deployer, returning the knowledge base (and dropping
    /// this handle on the shared provider).
    pub fn into_knowledge_base(self) -> KnowledgeBase {
        self.kb
    }

    /// The prediction-model family (e.g. for offline evaluation).
    pub fn family(&self) -> &PredictorFamily {
        &self.family
    }

    /// Number of times the drift detector has fired (0 with the default
    /// [`crate::drift::DetectorKind::Off`] policy).
    pub fn drift_fires(&self) -> u64 {
        self.drift_fires
    }

    /// The active policy.
    pub fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    /// The underlying cloud provider.
    pub fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    /// Trains the family on the current knowledge base — the bulk warm-up
    /// for a pre-seeded base (see [`Deployer::warm`]).
    ///
    /// # Errors
    ///
    /// Propagates policy validation and training failures.
    pub fn warm(&mut self) -> Result<(), CoreError> {
        self.core.policy.validate()?;
        self.family.retrain(
            &self.kb,
            self.core.policy.retrain_mode,
            self.core.policy.n_threads,
        )
    }

    /// Deploys one job: full self-optimizing cycle (select → run → record →
    /// retrain).
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    pub fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy(self, profile, workload)
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    pub fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy_manual(self, profile, workload, instance, n_nodes)
    }

    /// Deploys one job on a (possibly mixed) heterogeneous configuration —
    /// the §VI extension. Selection uses
    /// [`crate::select_hetero_configuration`] over the homogeneous
    /// knowledge base; the realized run is *not* recorded (mixed runs do
    /// not fit the homogeneous record schema the predictors train on —
    /// knowledge flows homogeneous → hetero only).
    ///
    /// # Errors
    ///
    /// Propagates selection ([`CoreError::NoFeasibleConfiguration`], ML)
    /// and cloud failures.
    pub fn deploy_hetero(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<(crate::hetero::HeteroSelection, disar_cloudsim::HeteroReport), CoreError> {
        self.core.policy.validate()?;
        let seed = self.core.next_decision_seed();
        let selection = crate::hetero::select_hetero_configuration_threads(
            &self.family,
            self.core.provider.catalog(),
            profile,
            self.core.policy.t_max_secs,
            self.core.policy.max_nodes,
            self.core.policy.epsilon,
            seed,
            self.core.policy.n_threads,
        )?;
        let report = self.core.provider.run_hetero_job_with_seed(
            &selection.chosen.groups,
            workload,
            seed ^ 0x4E7E,
        )?;
        Ok((selection, report))
    }

    /// Convenience: deploys a DISAR simulation, deriving the profile and
    /// workload from its master.
    ///
    /// # Errors
    ///
    /// Propagates engine estimation and deploy failures.
    pub fn deploy_simulation(&mut self, master: &DisarMaster) -> Result<DeployOutcome, CoreError> {
        let profile = JobProfile {
            characteristics: master.characteristics()?,
            n_outer: master.spec().n_outer,
            n_inner: master.spec().n_inner,
        };
        let workload = master.cloud_workload()?;
        self.deploy(&profile, &workload)
    }

    /// Replays the monolithic retrain schedule over `n_pending` unlanded
    /// records. The gate (`len ≥ min_kb_samples.max(2)` and
    /// `runs_since_retrain ≥ retrain_every`) never looks at a record's
    /// outcome, so the virtual state is exact.
    fn simulate_pending(&self, n_pending: usize) -> PendingSim {
        let mut len = self.kb.len();
        let mut rsr = self.core.runs_since_retrain;
        let mut trained = self.family.is_trained();
        let mut retrain_pending = false;
        for _ in 0..n_pending {
            len += 1;
            rsr += 1;
            if len >= self.core.policy.min_kb_samples.max(2) && rsr >= self.core.policy.retrain_every
            {
                trained = true;
                retrain_pending = true;
                rsr = 0;
            }
        }
        PendingSim {
            virtual_len: len,
            virtual_trained: trained,
            retrain_pending,
        }
    }
}

impl Deployer for TransparentDeployer {
    fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    fn provider_handle(&self) -> Arc<CloudProvider> {
        Arc::clone(&self.core.provider)
    }

    fn kb_len(&self) -> usize {
        self.kb.len()
    }

    fn warm(&mut self) -> Result<(), CoreError> {
        TransparentDeployer::warm(self)
    }

    fn selection_ready(&self, pending: &[DeployDecision]) -> bool {
        let sim = self.simulate_pending(pending.len());
        // Bootstrap-mode selections are RNG-only; ML selections need no
        // retrain scheduled among the pending records.
        sim.virtual_len < self.core.policy.min_kb_samples
            || !sim.virtual_trained
            || !sim.retrain_pending
    }

    fn select(
        &mut self,
        profile: &JobProfile,
        pending: &[DeployDecision],
    ) -> Result<DeployDecision, CoreError> {
        self.core.policy.validate()?;
        let decision_seed = self.core.next_decision_seed();

        // Bootstrap phase: random configuration, no prediction.
        let sim = self.simulate_pending(pending.len());
        if sim.virtual_len < self.core.policy.min_kb_samples || !sim.virtual_trained {
            let (instance, n_nodes) = self.core.random_config(decision_seed);
            return Ok(DeployDecision {
                mode: DeployMode::Bootstrap,
                instance,
                n_nodes,
                predicted_secs: None,
            });
        }
        self.core.ml_select(&self.family, profile, decision_seed)
    }

    fn begin_manual(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError> {
        self.core.manual_decision(instance, n_nodes)
    }

    fn record(
        &mut self,
        profile: &JobProfile,
        decision: &DeployDecision,
        report: &JobReport,
    ) -> Result<(), CoreError> {
        let inst = self.core.provider.catalog().get(&decision.instance)?.clone();
        // Feed the prediction residual to the drift detector before the
        // record lands. Detectors only modulate the *mode* of the retrains
        // the count-based gate below fires anyway, so the pending/readiness
        // contract (whether a retrain fires is outcome-independent) holds.
        if self.core.policy.drift.enabled() {
            if let Some(residual) = relative_residual(decision, report) {
                if self.drift.observe(residual) {
                    self.drift_fires += 1;
                }
            }
        }
        self.kb.record(RunRecord::new(
            *profile,
            &inst,
            decision.n_nodes,
            report.duration_secs,
            report.prorated_cost,
        ));
        self.core.runs_since_retrain += 1;
        if self.kb.len() >= self.core.policy.min_kb_samples.max(2)
            && self.core.runs_since_retrain >= self.core.policy.retrain_every
        {
            let mode = self
                .drift
                .next_mode(self.core.policy.retrain_mode, &self.core.policy.drift);
            self.family
                .retrain(&self.kb, mode, self.core.policy.n_threads)?;
            self.core.runs_since_retrain = 0;
            self.drift.on_retrain_applied();
        }
        Ok(())
    }
}

/// The residual the drift detectors consume: the *relative* absolute
/// prediction error `|Θ̂ − Θ| / Θ`, scale-free so one threshold serves
/// minute-long and hour-long jobs alike. `None` when the deploy carried no
/// prediction (bootstrap/manual).
pub(crate) fn relative_residual(decision: &DeployDecision, report: &JobReport) -> Option<f64> {
    decision
        .predicted_secs
        .map(|p| (p - report.duration_secs).abs() / report.duration_secs.max(f64::EPSILON))
}

/// The self-optimizing deployer over the sharded knowledge layout.
///
/// Behaviourally a [`TransparentDeployer`] whose records land in
/// per-instance-type shards ([`ShardedKnowledgeBase`]) with one predictor
/// family per shard ([`ShardedPredictor`]): a recorded run dirties exactly
/// one shard and the after-run retrain touches only that shard's records —
/// O(shard) instead of O(total base) on the hot path.
///
/// Two structural differences from the monolithic loop follow from the
/// layout:
///
/// - the bootstrap phase runs until the base holds `min_kb_samples` runs
///   **and** every catalog type has a trained shard (Algorithm 1's sweep
///   queries all types, and an untrained shard cannot answer);
/// - shards retrain as soon as they hold the family's minimum sample
///   count, independent of the global bootstrap threshold.
pub struct ShardedDeployer {
    core: DeployerCore,
    kb: ShardedKnowledgeBase,
    predictor: ShardedPredictor,
    /// Per-instance-type drift state: a fire escalates only the affected
    /// shard's next retrain, the others stay on the policy's base mode.
    drift: BTreeMap<String, DriftState>,
    /// Number of detector fires so far across all shards.
    drift_fires: u64,
}

impl ShardedDeployer {
    /// Creates a sharded deployer with an empty knowledge base.
    pub fn new(provider: CloudProvider, policy: DeployPolicy, seed: u64) -> Self {
        Self::from_shared(Arc::new(provider), policy, seed)
    }

    /// Creates a sharded deployer over an already-shared provider.
    pub fn from_shared(provider: Arc<CloudProvider>, policy: DeployPolicy, seed: u64) -> Self {
        ShardedDeployer {
            predictor: ShardedPredictor::new(seed, 2),
            core: DeployerCore::new(provider, policy, seed),
            kb: ShardedKnowledgeBase::new(),
            drift: BTreeMap::new(),
            drift_fires: 0,
        }
    }

    /// Seeds the deployer with a pre-existing sharded base (e.g. loaded
    /// from disk, or [`ShardedKnowledgeBase::from_monolithic`]). Call
    /// [`ShardedDeployer::warm`] afterwards to train the shards without
    /// waiting for fresh runs.
    pub fn with_knowledge_base(mut self, kb: ShardedKnowledgeBase) -> Self {
        self.kb = kb;
        self
    }

    /// The current sharded knowledge base.
    pub fn knowledge_base(&self) -> &ShardedKnowledgeBase {
        &self.kb
    }

    /// Consumes the deployer, returning the sharded base (and dropping
    /// this handle on the shared provider).
    pub fn into_knowledge_base(self) -> ShardedKnowledgeBase {
        self.kb
    }

    /// The per-shard predictor (e.g. for offline evaluation).
    pub fn predictor(&self) -> &ShardedPredictor {
        &self.predictor
    }

    /// Number of drift-detector fires so far across all shards (0 with
    /// the default [`crate::drift::DetectorKind::Off`] policy).
    pub fn drift_fires(&self) -> u64 {
        self.drift_fires
    }

    /// The active policy.
    pub fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    /// The underlying cloud provider.
    pub fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    /// Retrains every shard holding enough records — the bulk warm-up for
    /// a pre-seeded base.
    ///
    /// # Errors
    ///
    /// Propagates the first shard-retrain failure.
    pub fn warm(&mut self) -> Result<(), CoreError> {
        self.core.policy.validate()?;
        self.predictor.retrain_all(
            &self.kb,
            self.core.policy.retrain_mode,
            self.core.policy.n_threads,
        )
    }

    fn catalog_covered(&self) -> bool {
        self.core
            .provider
            .catalog()
            .names()
            .iter()
            .all(|n| self.predictor.is_trained_for(n))
    }

    /// Deploys one job: the full select → run → record → retrain-one-shard
    /// cycle.
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    pub fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy(self, profile, workload)
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    pub fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy_manual(self, profile, workload, instance, n_nodes)
    }

    /// Replays the sharded retrain schedule over the pending decisions.
    /// The gates count global records and per-shard sizes — both derivable
    /// from the decisions' instances alone — so the virtual state is exact.
    fn simulate_pending(&self, pending: &[DeployDecision]) -> PendingSim {
        let mut len = self.kb.len();
        let mut rsr = self.core.runs_since_retrain;
        let mut retrain_pending = false;
        let mut shard_lens: BTreeMap<&str, usize> = BTreeMap::new();
        let mut newly_trained: BTreeSet<&str> = BTreeSet::new();
        for d in pending {
            len += 1;
            rsr += 1;
            let shard_len = shard_lens
                .entry(d.instance.as_str())
                .or_insert_with(|| self.kb.shard(&d.instance).map_or(0, |s| s.len()));
            *shard_len += 1;
            if rsr >= self.core.policy.retrain_every && *shard_len >= self.predictor.min_samples()
            {
                newly_trained.insert(d.instance.as_str());
                retrain_pending = true;
                rsr = 0;
            }
        }
        let virtual_covered = self
            .core
            .provider
            .catalog()
            .names()
            .iter()
            .all(|n| self.predictor.is_trained_for(n) || newly_trained.contains(n.as_str()));
        PendingSim {
            virtual_len: len,
            virtual_trained: virtual_covered,
            retrain_pending,
        }
    }
}

impl Deployer for ShardedDeployer {
    fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    fn provider_handle(&self) -> Arc<CloudProvider> {
        Arc::clone(&self.core.provider)
    }

    fn kb_len(&self) -> usize {
        self.kb.len()
    }

    fn warm(&mut self) -> Result<(), CoreError> {
        ShardedDeployer::warm(self)
    }

    fn selection_ready(&self, pending: &[DeployDecision]) -> bool {
        let sim = self.simulate_pending(pending);
        sim.virtual_len < self.core.policy.min_kb_samples
            || !sim.virtual_trained
            || !sim.retrain_pending
    }

    fn select(
        &mut self,
        profile: &JobProfile,
        pending: &[DeployDecision],
    ) -> Result<DeployDecision, CoreError> {
        self.core.policy.validate()?;
        let decision_seed = self.core.next_decision_seed();

        let sim = self.simulate_pending(pending);
        if sim.virtual_len < self.core.policy.min_kb_samples || !sim.virtual_trained {
            let (instance, n_nodes) = self.core.random_config(decision_seed);
            return Ok(DeployDecision {
                mode: DeployMode::Bootstrap,
                instance,
                n_nodes,
                predicted_secs: None,
            });
        }
        self.core.ml_select(&self.predictor, profile, decision_seed)
    }

    fn begin_manual(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError> {
        self.core.manual_decision(instance, n_nodes)
    }

    fn record(
        &mut self,
        profile: &JobProfile,
        decision: &DeployDecision,
        report: &JobReport,
    ) -> Result<(), CoreError> {
        let inst = self.core.provider.catalog().get(&decision.instance)?.clone();
        // Residual feedback routes to the affected shard's detector only;
        // like the monolithic path, it modulates retrain *modes*, never
        // whether a retrain fires.
        if self.core.policy.drift.enabled() {
            if let Some(residual) = relative_residual(decision, report) {
                let state = self
                    .drift
                    .entry(decision.instance.clone())
                    .or_insert_with(|| DriftState::new(&self.core.policy.drift));
                if state.observe(residual) {
                    self.drift_fires += 1;
                }
            }
        }
        self.kb.record(RunRecord::new(
            *profile,
            &inst,
            decision.n_nodes,
            report.duration_secs,
            report.prorated_cost,
        ));
        self.core.runs_since_retrain += 1;
        if self.core.runs_since_retrain >= self.core.policy.retrain_every {
            let shard = self
                .kb
                .shard(&decision.instance)
                .expect("record() created the shard");
            if shard.len() >= self.predictor.min_samples() {
                let mode = self.drift.get(&decision.instance).map_or(
                    self.core.policy.retrain_mode,
                    |s| s.next_mode(self.core.policy.retrain_mode, &self.core.policy.drift),
                );
                self.predictor.retrain_shard(
                    &decision.instance,
                    shard,
                    mode,
                    self.core.policy.n_threads,
                )?;
                self.core.runs_since_retrain = 0;
                if let Some(s) = self.drift.get_mut(&decision.instance) {
                    s.on_retrain_applied();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_cloudsim::InstanceCatalog;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn workload(contracts: usize) -> Workload {
        Workload::new(30.0 * contracts as f64, 0.02 * contracts as f64, 0.8 * contracts as f64, 0.05)
            .unwrap()
    }

    fn deployer(seed: u64) -> TransparentDeployer {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
        let policy = DeployPolicy::builder(50_000.0)
            .max_nodes(4)
            .min_kb_samples(8)
            .n_threads(1)
            .build();
        TransparentDeployer::new(provider, policy, seed)
    }

    #[test]
    fn bootstrap_then_ml_transition() {
        let mut d = deployer(1);
        let mut modes = Vec::new();
        for i in 0..14 {
            let out = d
                .deploy(&profile(100 + i * 13), &workload(100 + i * 13))
                .unwrap();
            modes.push(out.mode);
        }
        // First 8 deploys are bootstrap, later ones ML-driven.
        assert!(modes[..8].iter().all(|m| *m == DeployMode::Bootstrap));
        assert!(modes[9..]
            .iter()
            .all(|m| matches!(m, DeployMode::MlGreedy | DeployMode::MlExplored)));
        assert_eq!(d.knowledge_base().len(), 14);
    }

    #[test]
    fn ml_deploys_carry_predictions() {
        let mut d = deployer(2);
        for i in 0..10 {
            d.deploy(&profile(80 + i * 17), &workload(80 + i * 17))
                .unwrap();
        }
        let out = d.deploy(&profile(150), &workload(150)).unwrap();
        assert!(out.predicted_secs.is_some());
        assert!(out.prediction_error().is_some());
    }

    #[test]
    fn manual_override_is_recorded_and_learned() {
        let mut d = deployer(3);
        let out = d
            .deploy_manual(&profile(100), &workload(100), "m4.10xlarge", 2)
            .unwrap();
        assert_eq!(out.mode, DeployMode::Manual);
        assert_eq!(out.report.instance, "m4.10xlarge");
        assert_eq!(out.report.n_nodes, 2);
        assert!(out.predicted_secs.is_none());
        assert_eq!(d.knowledge_base().len(), 1);
    }

    #[test]
    fn knowledge_base_grows_monotonically() {
        let mut d = deployer(4);
        for i in 0..5 {
            d.deploy(&profile(60 + i), &workload(60 + i)).unwrap();
            assert_eq!(d.knowledge_base().len(), i + 1);
        }
    }

    #[test]
    fn preseeded_kb_skips_bootstrap() {
        // Build a KB from one deployer's bootstrap, hand it to another.
        let mut first = deployer(5);
        for i in 0..10 {
            first.deploy(&profile(70 + i * 11), &workload(70 + i * 11)).unwrap();
        }
        let kb = first.knowledge_base().clone();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 6);
        let policy = DeployPolicy {
            min_kb_samples: 8,
            ..*first.policy()
        };
        let mut second = TransparentDeployer::new(provider, policy, 6).with_knowledge_base(kb);
        // Family is untrained, so the very first deploy is still bootstrap
        // (it trains right after); the second is ML.
        let o1 = second.deploy(&profile(100), &workload(100)).unwrap();
        assert_eq!(o1.mode, DeployMode::Bootstrap);
        let o2 = second.deploy(&profile(100), &workload(100)).unwrap();
        assert!(matches!(o2.mode, DeployMode::MlGreedy | DeployMode::MlExplored));
    }

    #[test]
    fn predictions_improve_with_experience() {
        // After enough homogeneous runs the ensemble should predict within
        // a modest relative error on a familiar workload.
        let mut d = deployer(7);
        let mut last_err = None;
        for i in 0..40 {
            let c = 100 + (i * 29) % 200;
            let out = d.deploy(&profile(c), &workload(c)).unwrap();
            if let Some(p) = out.predicted_secs {
                last_err = Some(((p - out.report.duration_secs) / out.report.duration_secs).abs());
            }
        }
        let err = last_err.expect("ML deploys happened");
        assert!(err < 0.6, "relative error after 40 runs: {err}");
    }

    #[test]
    fn policy_validation() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let mut bad = DeployPolicy::paper_defaults(3600.0);
        bad.epsilon = 2.0;
        let mut d = TransparentDeployer::new(provider, bad, 1);
        assert!(d.deploy(&profile(10), &workload(10)).is_err());
    }

    #[test]
    fn hetero_deploy_after_training() {
        let mut d = deployer(11);
        // Warm up with homogeneous deploys.
        for i in 0..12 {
            d.deploy(&profile(80 + i * 23), &workload(80 + i * 23)).unwrap();
        }
        let kb_before = d.knowledge_base().len();
        let (sel, report) = d.deploy_hetero(&profile(200), &workload(200)).unwrap();
        assert!(!sel.feasible.is_empty());
        assert!(report.duration_secs > 0.0);
        assert!(report.prorated_cost > 0.0);
        // Hetero runs are not recorded (homogeneous-only knowledge base).
        assert_eq!(d.knowledge_base().len(), kb_before);
    }

    #[test]
    fn hetero_deploy_untrained_fails_cleanly() {
        let mut d = deployer(13);
        assert!(matches!(
            d.deploy_hetero(&profile(100), &workload(100)),
            Err(CoreError::Ml(_))
        ));
    }

    #[test]
    fn retrain_every_batches_training() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 9);
        let policy = DeployPolicy::builder(50_000.0)
            .epsilon(0.0)
            .max_nodes(3)
            .min_kb_samples(4)
            .retrain_every(5)
            .n_threads(1)
            .build();
        let mut d = TransparentDeployer::new(provider, policy, 9);
        for i in 0..6 {
            d.deploy(&profile(50 + i * 7), &workload(50 + i * 7)).unwrap();
        }
        // Trained at run 5 (first multiple of 5 past the 4-sample floor).
        assert_eq!(d.family().trained_on(), 5);
    }

    #[test]
    fn threaded_deployer_matches_sequential() {
        // The full select → run → record → retrain loop must be
        // bit-identical regardless of the thread count.
        let run = |n_threads: usize| {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 21);
            let policy = DeployPolicy::builder(50_000.0)
                .max_nodes(4)
                .min_kb_samples(8)
                .n_threads(n_threads)
                .build();
            let mut d = TransparentDeployer::new(provider, policy, 21);
            let outs: Vec<DeployOutcome> = (0..16)
                .map(|i| {
                    d.deploy(&profile(90 + i * 19), &workload(90 + i * 19))
                        .unwrap()
                })
                .collect();
            (outs, d.knowledge_base().clone())
        };
        let (seq_outs, seq_kb) = run(1);
        let (par_outs, par_kb) = run(4);
        assert_eq!(seq_outs, par_outs);
        assert_eq!(seq_kb, par_kb);
    }

    #[test]
    fn zero_thread_policy_is_rejected() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let mut bad = DeployPolicy::paper_defaults(3600.0);
        bad.n_threads = 0;
        let mut d = TransparentDeployer::new(provider, bad, 1);
        assert!(d.deploy(&profile(10), &workload(10)).is_err());
    }

    #[test]
    fn builder_defaults_match_paper_defaults() {
        assert_eq!(
            DeployPolicy::builder(3_600.0).build(),
            DeployPolicy::paper_defaults(3_600.0)
        );
    }

    #[test]
    fn builder_overrides_only_named_knobs() {
        let p = DeployPolicy::builder(50_000.0)
            .epsilon(0.2)
            .max_nodes(3)
            .min_kb_samples(5)
            .retrain_every(4)
            .n_threads(2)
            .transfer(TransferPolicy::BorrowUntil(12))
            .retrain_mode(RetrainMode::Windowed { window: 64, decay: 0.5 })
            .drift(DriftConfig {
                detector: crate::drift::DetectorKind::Adwin,
                ..DriftConfig::default()
            })
            .build();
        assert_eq!(p.t_max_secs, 50_000.0);
        assert_eq!(p.epsilon, 0.2);
        assert_eq!(p.max_nodes, 3);
        assert_eq!(p.min_kb_samples, 5);
        assert_eq!(p.retrain_every, 4);
        assert_eq!(p.n_threads, 2);
        assert_eq!(p.transfer, TransferPolicy::BorrowUntil(12));
        assert_eq!(p.retrain_mode, RetrainMode::Windowed { window: 64, decay: 0.5 });
        assert_eq!(p.drift.detector, crate::drift::DetectorKind::Adwin);
        // Unnamed knobs keep the paper defaults.
        let d = DeployPolicy::paper_defaults(50_000.0);
        assert_eq!(
            DeployPolicy::builder(50_000.0).epsilon(0.2).build(),
            DeployPolicy { epsilon: 0.2, ..d }
        );
    }

    #[test]
    fn pre_tenancy_policy_json_defaults_to_isolated() {
        let mut v = serde_json::to_value(DeployPolicy::paper_defaults(3_600.0)).unwrap();
        v.as_object_mut().unwrap().remove("transfer").unwrap();
        let p: DeployPolicy = serde_json::from_value(v).unwrap();
        assert_eq!(p.transfer, TransferPolicy::Isolated);
    }

    #[test]
    fn pre_drift_policy_json_defaults_to_stationary() {
        // Policy JSON written before the drift knobs existed carries
        // neither field; it must deserialize to the stationary defaults.
        let mut v = serde_json::to_value(DeployPolicy::paper_defaults(3_600.0)).unwrap();
        v.as_object_mut().unwrap().remove("retrain_mode").unwrap();
        v.as_object_mut().unwrap().remove("drift").unwrap();
        let p: DeployPolicy = serde_json::from_value(v).unwrap();
        assert_eq!(p.retrain_mode, RetrainMode::Incremental);
        assert_eq!(p.drift, DriftConfig::default());
        assert_eq!(p, DeployPolicy::paper_defaults(3_600.0));
    }

    #[test]
    fn policy_validates_drift_knobs() {
        let mut p = DeployPolicy::paper_defaults(3_600.0);
        p.retrain_mode = RetrainMode::Windowed { window: 0, decay: 0.5 };
        assert!(p.validate().is_err());
        p.retrain_mode = RetrainMode::Windowed { window: 16, decay: 7.0 };
        assert!(p.validate().is_err());
        p.retrain_mode = RetrainMode::Incremental;
        p.drift.detector = crate::drift::DetectorKind::PageHinkley;
        p.drift.threshold = 0.0;
        assert!(p.validate().is_err());
        // The same bad threshold is ignored while the detector is off.
        p.drift.detector = crate::drift::DetectorKind::Off;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unbounded_windowed_policy_matches_default_outcomes() {
        // Windowed with an unbounded window and no history decay refits on
        // the whole base — like Full, and Incremental is refit-identical by
        // construction — so the entire deploy stream must be bit-identical
        // to the default policy's.
        let run = |mode: RetrainMode| {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 67);
            let policy = DeployPolicy::builder(50_000.0)
                .max_nodes(4)
                .min_kb_samples(8)
                .n_threads(1)
                .retrain_mode(mode)
                .build();
            let mut d = TransparentDeployer::new(provider, policy, 67);
            (0..16)
                .map(|i| {
                    d.deploy(&profile(90 + i * 19), &workload(90 + i * 19))
                        .unwrap()
                })
                .collect::<Vec<DeployOutcome>>()
        };
        assert_eq!(
            run(RetrainMode::Incremental),
            run(RetrainMode::Windowed {
                window: usize::MAX,
                decay: 1.0
            })
        );
    }

    #[test]
    fn drift_detector_fires_under_a_regime_change() {
        use crate::drift::DetectorKind;
        // A hidden hardware-generation change at run 40 slows every node to
        // 35% of its speed: the family trained on the old regime
        // underestimates durations, residuals jump, the detector fires and
        // escalates retrains — all while the deploy loop keeps succeeding.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 61).with_drift(
            disar_cloudsim::DriftModel::StepRegime {
                period: 40,
                speed_factor: 0.35,
                price_factor: 1.0,
            },
        );
        let policy = DeployPolicy::builder(1e9)
            .epsilon(0.0)
            .max_nodes(3)
            .min_kb_samples(8)
            .n_threads(1)
            .drift(DriftConfig {
                detector: DetectorKind::PageHinkley,
                ..DriftConfig::default()
            })
            .build();
        let mut d = TransparentDeployer::new(provider, policy, 61);
        for i in 0..80 {
            let c = 90 + (i * 19) % 250;
            d.deploy(&profile(c), &workload(c)).unwrap();
        }
        assert!(
            d.drift_fires() >= 1,
            "a 2.9× duration jump must fire the detector"
        );
        assert!(d.family().is_trained());
        assert_eq!(d.knowledge_base().len(), 80);
    }

    #[test]
    fn paper_defaults_use_available_parallelism() {
        let p = DeployPolicy::paper_defaults(3600.0);
        assert_eq!(p.n_threads, disar_math::parallel::default_n_threads());
        assert!(p.n_threads >= 1);
    }

    #[test]
    fn generic_deploy_loop_works_over_both_backends() {
        // The whole point of the trait: callers written once run over
        // either backend.
        fn run_five<D: Deployer>(d: &mut D) -> Vec<DeployMode> {
            (0..5)
                .map(|i| {
                    let c = 60 + i * 31;
                    d.deploy(&profile(c), &workload(c)).unwrap().mode
                })
                .collect()
        }
        let mut mono = deployer(43);
        let mut sharded = sharded_deployer(43);
        assert_eq!(run_five(&mut mono), vec![DeployMode::Bootstrap; 5]);
        assert_eq!(run_five(&mut sharded), vec![DeployMode::Bootstrap; 5]);
        assert_eq!(mono.kb_len(), 5);
        assert_eq!(sharded.kb_len(), 5);
    }

    #[test]
    fn feedback_visibility_gates_ml_selections() {
        let mut d = deployer(41);
        let pending = DeployDecision {
            mode: DeployMode::Bootstrap,
            instance: "c3.4xlarge".to_string(),
            n_nodes: 2,
            predicted_secs: None,
        };
        // Bootstrap phase: selections are RNG-only, ready even with runs
        // in flight.
        assert!(d.selection_ready(&[pending.clone()]));
        // Train past the bootstrap.
        for i in 0..10 {
            d.deploy(&profile(80 + i * 17), &workload(80 + i * 17)).unwrap();
        }
        // retrain_every = 1: a pending record forces a retrain before the
        // next ML selection may observe the base.
        assert!(d.selection_ready(&[]));
        assert!(!d.selection_ready(&[pending]));
    }

    #[test]
    fn retrain_window_permits_overlapped_selections() {
        // retrain_every = 5: selections inside the same retrain window see
        // the same family snapshot and stay ready; the selection whose
        // pending records cross the retrain boundary stalls.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 47);
        let policy = DeployPolicy::builder(50_000.0)
            .epsilon(0.0)
            .max_nodes(3)
            .min_kb_samples(4)
            .retrain_every(5)
            .n_threads(1)
            .build();
        let mut d = TransparentDeployer::new(provider, policy, 47);
        for i in 0..5 {
            d.deploy(&profile(50 + i * 7), &workload(50 + i * 7)).unwrap();
        }
        assert!(d.family().is_trained());
        let pending = |n: usize| {
            vec![
                DeployDecision {
                    mode: DeployMode::Manual,
                    instance: "c3.4xlarge".to_string(),
                    n_nodes: 1,
                    predicted_secs: None,
                };
                n
            ]
        };
        assert!(d.selection_ready(&pending(4)));
        assert!(!d.selection_ready(&pending(5)));
    }

    fn sharded_deployer(seed: u64) -> ShardedDeployer {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
        let policy = DeployPolicy::builder(50_000.0)
            .max_nodes(4)
            .min_kb_samples(8)
            .n_threads(1)
            .build();
        ShardedDeployer::new(provider, policy, seed)
    }

    #[test]
    fn sharded_bootstrap_reaches_ml_phase() {
        // Bootstrap must run until every catalog type has a trained shard;
        // from then on deploys are ML-driven and each one retrains only the
        // shard it recorded into.
        let mut d = sharded_deployer(17);
        let mut ml_at = None;
        for i in 0..200 {
            let c = 80 + (i * 19) % 300;
            let out = d.deploy(&profile(c), &workload(c)).unwrap();
            match out.mode {
                DeployMode::Bootstrap => {
                    assert!(ml_at.is_none(), "bootstrap after the ML phase began")
                }
                _ => {
                    if ml_at.is_none() {
                        ml_at = Some(i);
                    }
                    assert!(out.predicted_secs.is_some());
                }
            }
            if i >= ml_at.map_or(usize::MAX, |at| at + 5) {
                break;
            }
        }
        let at = ml_at.expect("ML phase never reached in 200 deploys");
        // Coverage needs two records in each of the six shards, so the
        // first ML deploy cannot come before the 13th.
        assert!(at >= 12, "ML phase began after only {at} bootstrap runs");
        let cat = InstanceCatalog::paper_catalog();
        for name in cat.names() {
            assert!(d.predictor().is_trained_for(&name));
        }
        assert_eq!(d.knowledge_base().len() as u64, {
            let mut n = 0;
            for (_, s) in d.knowledge_base().shards() {
                n += s.len() as u64;
            }
            n
        });
    }

    #[test]
    fn sharded_deployer_is_deterministic() {
        let run = || {
            let mut d = sharded_deployer(23);
            (0..30)
                .map(|i| {
                    let c = 70 + (i * 13) % 250;
                    d.deploy(&profile(c), &workload(c)).unwrap()
                })
                .collect::<Vec<DeployOutcome>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn preseeded_sharded_kb_warms_and_skips_bootstrap() {
        // Bootstrap one deployer past coverage, transplant its base into a
        // fresh deployer, warm(), and the first deploy is already ML.
        let mut first = sharded_deployer(29);
        for i in 0..120 {
            let c = 60 + (i * 23) % 280;
            let out = first.deploy(&profile(c), &workload(c)).unwrap();
            if out.mode != DeployMode::Bootstrap {
                break;
            }
        }
        let kb = first.knowledge_base().clone();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 31);
        let mut second = ShardedDeployer::new(provider, *first.policy(), 31).with_knowledge_base(kb);
        second.warm().unwrap();
        let out = second.deploy(&profile(150), &workload(150)).unwrap();
        assert!(matches!(
            out.mode,
            DeployMode::MlGreedy | DeployMode::MlExplored
        ));
    }

    #[test]
    fn sharded_manual_deploy_records_into_one_shard() {
        let mut d = sharded_deployer(37);
        let out = d
            .deploy_manual(&profile(100), &workload(100), "m4.10xlarge", 2)
            .unwrap();
        assert_eq!(out.mode, DeployMode::Manual);
        assert_eq!(d.knowledge_base().len(), 1);
        assert_eq!(d.knowledge_base().shard_count(), 1);
        assert_eq!(d.knowledge_base().shard("m4.10xlarge").unwrap().len(), 1);
    }

    #[test]
    fn sharded_readiness_tracks_per_shard_gates() {
        // A pending record that completes a shard's minimum fires a
        // retrain → not ready; one that lands in a still-too-small shard
        // fires nothing → ready (once the deployer is in the ML phase).
        let mut d = sharded_deployer(53);
        let mut ml = false;
        for i in 0..120 {
            let c = 60 + (i * 29) % 280;
            let out = d.deploy(&profile(c), &workload(c)).unwrap();
            if out.mode != DeployMode::Bootstrap {
                ml = true;
                break;
            }
        }
        assert!(ml, "ML phase never reached");
        let pending = |instance: &str| {
            vec![DeployDecision {
                mode: DeployMode::Manual,
                instance: instance.to_string(),
                n_nodes: 1,
                predicted_secs: None,
            }]
        };
        // Every shard is at/past the 2-sample minimum here, so any landing
        // record retrains its shard (retrain_every = 1) → never ready.
        assert!(d.selection_ready(&[]));
        assert!(!d.selection_ready(&pending("c3.4xlarge")));
    }
}
