//! Residual-based drift detection and regret-derived model weighting.
//!
//! The paper assumes a stationary cloud: the knowledge base only ever
//! grows and every observation remains representative. Real clouds drift —
//! hardware generations change `(m, n, f) → time`, contention creeps up,
//! prices get revised — and a family trained on the full history then
//! *underfits the present*. This module supplies the adaptation loop:
//!
//! - [`DriftDetector`]s ([Page–Hinkley](https://doi.org/10.1093/biomet/41.1-2.100)
//!   and a simplified adaptive-windowing test) watch the stream of
//!   per-deploy prediction residuals that the deployers already compute on
//!   the feedback path;
//! - [`DriftConfig`] is the policy block selecting a detector and the
//!   windowed-retrain shape, **off by default** so a default policy stays
//!   bit-identical to the stationary system;
//! - [`DriftState`] owns one detector per model shard and the escalation
//!   ladder: a fire escalates the next retrain from the policy's base mode
//!   to [`RetrainMode::Windowed`], a second fire before that retrain lands
//!   escalates to [`RetrainMode::Full`], and an applied escalated retrain
//!   resets the ladder. Detectors never change *whether* a retrain fires —
//!   only which mode it uses — so deploy outcomes keep their
//!   count-determined cadence;
//! - [`regret_weights`] turns per-member selection regrets (extra cost vs
//!   the oracle argmin) into normalized ensemble weights, the evaluation
//!   metric the drift ablation folds back into prediction.

use crate::predictor::RetrainMode;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which change detector monitors the residual stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetectorKind {
    /// No detection: retrains always use the policy's base mode. The
    /// stationary, bit-identity-preserving default.
    #[default]
    Off,
    /// Page–Hinkley test on the running residual mean — cheap (O(1) per
    /// observation), directional (detects residual *increases*), the
    /// classic sequential change-point test.
    PageHinkley,
    /// Simplified ADWIN: a bounded residual window cut in half, firing
    /// when the two half-means differ by more than a Hoeffding-style
    /// bound. Slower to arm than Page–Hinkley but self-normalizing.
    Adwin,
}

fn default_threshold() -> f64 {
    2.5
}

fn default_delta() -> f64 {
    0.05
}

fn default_window() -> usize {
    64
}

fn default_decay() -> f64 {
    0.25
}

/// The drift-adaptation block of a deploy policy: detector choice,
/// sensitivity, and the shape of the escalated windowed retrain.
///
/// The default ([`DetectorKind::Off`]) never fires, so policies that do
/// not opt in keep every retrain on the base mode. Serde-defaulted field
/// by field, so pre-drift policy JSON deserializes to the stationary
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Residual-stream change detector.
    #[serde(default)]
    pub detector: DetectorKind,
    /// Fire threshold: Page–Hinkley's λ on the cumulative deviation
    /// statistic (in residual units).
    #[serde(default = "default_threshold")]
    pub threshold: f64,
    /// Page–Hinkley's drift allowance δ (tolerated mean creep per step)
    /// and ADWIN's confidence parameter.
    #[serde(default = "default_delta")]
    pub delta: f64,
    /// `window` of the escalated [`RetrainMode::Windowed`] retrain.
    #[serde(default = "default_window")]
    pub window: usize,
    /// `decay` of the escalated [`RetrainMode::Windowed`] retrain.
    #[serde(default = "default_decay")]
    pub decay: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            detector: DetectorKind::Off,
            threshold: default_threshold(),
            delta: default_delta(),
            window: default_window(),
            decay: default_decay(),
        }
    }
}

impl DriftConfig {
    /// `true` when a detector is configured (the drift path is live).
    pub fn enabled(&self) -> bool {
        self.detector != DetectorKind::Off
    }
}

/// A sequential change detector over a residual stream.
pub trait DriftDetector {
    /// Feeds one residual; returns `true` when a change is detected. The
    /// detector re-arms itself after firing (internal state resets to the
    /// post-change regime).
    fn update(&mut self, residual: f64) -> bool;
}

/// Page–Hinkley test for an increase in the residual mean.
///
/// Maintains the running mean `μ̂` and the cumulative deviation
/// `m_t = Σ (x_i − μ̂_i − δ)`; fires when `m_t − min m` exceeds `λ`.
/// Fires only on *increases* — a model getting better never triggers a
/// retrain escalation.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    threshold: f64,
    delta: f64,
    n: u64,
    mean: f64,
    cum: f64,
    min_cum: f64,
}

impl PageHinkley {
    /// A fresh test with fire threshold `λ = threshold` and drift
    /// allowance `δ = delta`.
    pub fn new(threshold: f64, delta: f64) -> Self {
        PageHinkley {
            threshold,
            delta,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
        }
    }

    fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.min_cum = 0.0;
    }
}

impl DriftDetector for PageHinkley {
    fn update(&mut self, residual: f64) -> bool {
        self.n += 1;
        self.mean += (residual - self.mean) / self.n as f64;
        self.cum += residual - self.mean - self.delta;
        self.min_cum = self.min_cum.min(self.cum);
        if self.cum - self.min_cum > self.threshold {
            self.reset();
            true
        } else {
            false
        }
    }
}

/// Number of residuals the ADWIN-style buffer retains.
const ADWIN_CAP: usize = 64;
/// Minimum buffered residuals before the half-split test arms.
const ADWIN_MIN: usize = 8;

/// Simplified adaptive-windowing detector: the last [`ADWIN_CAP`]
/// residuals are split into an older and a newer half and the means are
/// compared against a Hoeffding-style bound scaled by the buffer's value
/// range. On fire the older half is dropped (the window "adapts" to the
/// new regime).
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    buf: VecDeque<f64>,
}

impl Adwin {
    /// A fresh detector with confidence parameter `delta` (smaller ⇒
    /// fewer, more certain fires).
    pub fn new(delta: f64) -> Self {
        Adwin {
            delta: delta.clamp(1e-9, 1.0),
            buf: VecDeque::with_capacity(ADWIN_CAP),
        }
    }
}

impl DriftDetector for Adwin {
    fn update(&mut self, residual: f64) -> bool {
        if self.buf.len() == ADWIN_CAP {
            self.buf.pop_front();
        }
        self.buf.push_back(residual);
        let n = self.buf.len();
        if n < ADWIN_MIN {
            return false;
        }
        let mid = n / 2;
        let (mut old_sum, mut new_sum) = (0.0, 0.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &x) in self.buf.iter().enumerate() {
            if i < mid {
                old_sum += x;
            } else {
                new_sum += x;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let (n0, n1) = (mid as f64, (n - mid) as f64);
        let gap = new_sum / n1 - old_sum / n0;
        let range = (hi - lo).max(f64::EPSILON);
        let eps = range * ((2.0 / self.delta).ln() / 2.0 * (1.0 / n0 + 1.0 / n1)).sqrt();
        // One-sided, like Page–Hinkley: only a residual *increase* fires.
        if gap > eps {
            self.buf.drain(..mid);
            true
        } else {
            false
        }
    }
}

/// Escalation rung the next retrain will use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Escalation {
    /// No unabsorbed fire: retrain with the policy's base mode.
    #[default]
    Calm,
    /// One fire since the last escalated retrain: retrain windowed.
    Windowed,
    /// A second fire before the windowed retrain landed: full refit.
    Full,
}

/// Per-shard drift state: the configured detector plus the
/// Incremental → Windowed → Full escalation ladder.
///
/// The state machine is strictly mode-modulating: [`DriftState::observe`]
/// consumes residuals and moves the ladder, [`DriftState::next_mode`]
/// reports the retrain mode the ladder currently prescribes, and
/// [`DriftState::on_retrain_applied`] resets the ladder once an escalated
/// retrain actually ran (a base-mode retrain leaves an armed ladder
/// armed).
#[derive(Debug, Clone, Default)]
pub struct DriftState {
    detector: Option<Detector>,
    escalation: Escalation,
}

#[derive(Debug, Clone)]
enum Detector {
    PageHinkley(PageHinkley),
    Adwin(Adwin),
}

impl DriftState {
    /// Builds the state the config asks for; [`DetectorKind::Off`] yields
    /// an inert state whose `observe` is a no-op returning `false`.
    pub fn new(cfg: &DriftConfig) -> Self {
        let detector = match cfg.detector {
            DetectorKind::Off => None,
            DetectorKind::PageHinkley => {
                Some(Detector::PageHinkley(PageHinkley::new(cfg.threshold, cfg.delta)))
            }
            DetectorKind::Adwin => Some(Detector::Adwin(Adwin::new(cfg.delta))),
        };
        DriftState {
            detector,
            escalation: Escalation::Calm,
        }
    }

    /// Feeds one prediction residual. Returns `true` when the detector
    /// fired, in which case the escalation ladder has already advanced.
    pub fn observe(&mut self, residual: f64) -> bool {
        let fired = match &mut self.detector {
            None => false,
            Some(Detector::PageHinkley(d)) => d.update(residual),
            Some(Detector::Adwin(d)) => d.update(residual),
        };
        if fired {
            self.escalation = match self.escalation {
                Escalation::Calm => Escalation::Windowed,
                Escalation::Windowed | Escalation::Full => Escalation::Full,
            };
        }
        fired
    }

    /// The retrain mode the ladder currently prescribes, given the
    /// policy's base mode and drift config.
    pub fn next_mode(&self, base: RetrainMode, cfg: &DriftConfig) -> RetrainMode {
        match self.escalation {
            Escalation::Calm => base,
            Escalation::Windowed => RetrainMode::Windowed {
                window: cfg.window,
                decay: cfg.decay,
            },
            Escalation::Full => RetrainMode::Full,
        }
    }

    /// `true` when a fire has escalated the next retrain.
    pub fn escalated(&self) -> bool {
        self.escalation != Escalation::Calm
    }

    /// Acknowledges that a retrain ran with [`DriftState::next_mode`]'s
    /// prescription; an escalated ladder resets to calm.
    pub fn on_retrain_applied(&mut self) {
        self.escalation = Escalation::Calm;
    }
}

/// Converts per-member selection regrets (≥ 0, lower is better) into
/// normalized ensemble weights `wᵢ ∝ 1 / (ε + rᵢ)` with
/// `ε = 10⁻⁶ + mean(r) / 100` — a pure, deterministic function of the
/// regrets: equal regrets give uniform weights, a member with much lower
/// regret than the rest dominates without ever zeroing the others out.
///
/// Negative regrets are clamped to zero. Returns an empty vector for an
/// empty slice.
///
/// # Panics
///
/// Panics if any regret is non-finite.
pub fn regret_weights(regrets: &[f64]) -> Vec<f64> {
    if regrets.is_empty() {
        return Vec::new();
    }
    assert!(
        regrets.iter().all(|r| r.is_finite()),
        "regrets must be finite"
    );
    let clamped: Vec<f64> = regrets.iter().map(|r| r.max(0.0)).collect();
    let eps = 1e-6 + disar_math::stats::mean(&clamped) / 100.0;
    let raw: Vec<f64> = clamped.iter().map(|r| 1.0 / (eps + r)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A residual stream that sits at `lo` for `n_pre` steps, then jumps
    /// to `hi`. Small deterministic alternation keeps the variance
    /// non-degenerate.
    fn stream(n_pre: usize, n_post: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n_pre + n_post)
            .map(|i| {
                let base = if i < n_pre { lo } else { hi };
                base * if i % 2 == 0 { 0.9 } else { 1.1 }
            })
            .collect()
    }

    #[test]
    fn page_hinkley_fires_after_the_change_never_before() {
        let mut d = PageHinkley::new(default_threshold(), default_delta());
        let xs = stream(200, 50, 0.1, 2.0);
        let mut fired_at = None;
        for (i, &x) in xs.iter().enumerate() {
            if d.update(x) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("a 20× residual jump must fire");
        assert!(at >= 200, "fired during the stationary prefix at {at}");
        assert!(at < 220, "fired too late at {at}");
    }

    #[test]
    fn page_hinkley_is_one_sided() {
        // Residuals *improving* must never fire.
        let mut d = PageHinkley::new(default_threshold(), default_delta());
        for &x in &stream(200, 200, 2.0, 0.1) {
            assert!(!d.update(x), "improvement fired the detector");
        }
    }

    #[test]
    fn adwin_fires_after_the_change_never_before() {
        let mut d = Adwin::new(default_delta());
        let xs = stream(200, 64, 0.1, 2.0);
        let mut fired_at = None;
        for (i, &x) in xs.iter().enumerate() {
            if d.update(x) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("a 20× residual jump must fire");
        assert!(at >= 200, "fired during the stationary prefix at {at}");
        assert!(at < 264, "fired too late at {at}");
    }

    #[test]
    fn adwin_stays_quiet_on_stationary_noise() {
        let mut d = Adwin::new(default_delta());
        for &x in &stream(500, 0, 0.15, 0.0) {
            assert!(!d.update(x), "stationary stream fired ADWIN");
        }
    }

    #[test]
    fn off_state_is_inert() {
        let mut s = DriftState::new(&DriftConfig::default());
        for _ in 0..100 {
            assert!(!s.observe(1e9));
        }
        assert!(!s.escalated());
        assert_eq!(
            s.next_mode(RetrainMode::Incremental, &DriftConfig::default()),
            RetrainMode::Incremental
        );
    }

    #[test]
    fn escalation_ladder_steps_windowed_then_full_then_resets() {
        let cfg = DriftConfig {
            detector: DetectorKind::PageHinkley,
            ..DriftConfig::default()
        };
        let mut s = DriftState::new(&cfg);
        assert_eq!(s.next_mode(RetrainMode::Incremental, &cfg), RetrainMode::Incremental);

        // Drive to the first fire.
        while !s.observe(3.0) {}
        assert!(s.escalated());
        assert_eq!(
            s.next_mode(RetrainMode::Incremental, &cfg),
            RetrainMode::Windowed {
                window: cfg.window,
                decay: cfg.decay
            }
        );

        // A second fire before the retrain lands escalates to Full.
        while !s.observe(9.0) {}
        assert_eq!(s.next_mode(RetrainMode::Incremental, &cfg), RetrainMode::Full);

        // The applied retrain resets the ladder to the base mode.
        s.on_retrain_applied();
        assert!(!s.escalated());
        assert_eq!(s.next_mode(RetrainMode::Warm, &cfg), RetrainMode::Warm);
    }

    #[test]
    fn regret_weights_prefer_low_regret() {
        let w = regret_weights(&[0.0, 1.0, 10.0]);
        assert_eq!(w.len(), 3);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2]);
        // Equal regrets ⇒ exactly uniform.
        let u = regret_weights(&[2.0, 2.0, 2.0, 2.0]);
        for &wi in &u {
            assert_eq!(wi, 0.25);
        }
        // Negative regrets clamp to zero; empty input stays empty.
        assert_eq!(regret_weights(&[-1.0]), vec![1.0]);
        assert!(regret_weights(&[]).is_empty());
    }

    #[test]
    fn regret_weights_are_deterministic() {
        let r = [0.3, 0.7, 0.1, 4.0];
        assert_eq!(regret_weights(&r), regret_weights(&r));
    }

    #[test]
    fn drift_config_serde_defaults_to_off() {
        // Pre-drift policy JSON carries no drift block at all; an empty
        // object must deserialize to the inert default.
        let cfg: DriftConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, DriftConfig::default());
        assert!(!cfg.enabled());
        let round: DriftConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(round, cfg);
    }
}
