//! The prediction-model family `P`.
//!
//! "We define a family of prediction models P which is composed of all the
//! prediction models p_x : M × N × F → R⁺, where
//! x ∈ {MLP, RT, RF, IBk, KStar, DT} … The co-domain of each p_x is the
//! expected execution time on the given deploy configuration" (§III).
//!
//! The family is retrained from the knowledge base after every executed
//! simulation ("we therefore re-train the ML-based models after each
//! execution"), and queried both per-model (Table I) and ensemble-averaged
//! (Algorithm 1).

use crate::knowledge::{KnowledgeBase, RunRecord, ShardedKnowledgeBase};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::InstanceType;
use disar_math::parallel::parallel_map_mut;
use disar_ml::{
    default_family, Dataset, FeatureMatrix, IncrementalRegressor, PredictScratch, Regressor,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a retrain treats the family's previously trained state — the single
/// knob behind [`PredictorFamily::retrain`], replacing the accreted
/// `retrain_full*`/`retrain_warm*` method family.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RetrainMode {
    /// The default bit-identity-preserving path: when the knowledge base
    /// grew by appending to the trained prefix (verified by the boundary
    /// fingerprint), *exact* incremental members are fed only the appended
    /// rows; everything else refits from scratch. Either way the family is
    /// bit-identical to a from-scratch retrain.
    #[default]
    Incremental,
    /// Force every member to refit from scratch, ignoring any reusable
    /// state — the reference the incremental path is measured against
    /// (equal results, different cost).
    Full,
    /// [`RetrainMode::Incremental`] that additionally lets *inexact*
    /// members take their suffix path: the MLP continues SGD from its
    /// previous weights, tree/forest regrow on a suffix subsample.
    /// Deterministic, but **not** refit-identical — for after-every-run
    /// loops where retrain latency matters more than refit equivalence.
    Warm,
    /// Refit every member from scratch on the last `window` records plus a
    /// seeded `decay`-fraction subsample of the older history
    /// ([`disar_ml::Dataset::decayed_window`]) — the drift-recovery mode:
    /// after a regime change the stale prefix is down-weighted instead of
    /// dominating the fit. `window: usize::MAX` (or `decay: 1.0`) keeps
    /// everything, making the retrain bit-identical to
    /// [`RetrainMode::Full`]; the retrain after a genuine windowed fit
    /// falls back to a full refit automatically (the members' fitted
    /// length no longer matches the trained prefix).
    Windowed {
        /// Number of most-recent records always kept in the training set.
        window: usize,
        /// Fraction of the pre-window history retained, in `[0, 1]`.
        decay: f64,
    },
}

/// Reusable buffers for [`TimePredictor::predict_grid`]: the feature
/// matrix covering one instance's node run and the per-member prediction
/// scratch. Grows on first use and is retained across selections, so a
/// warm scratch allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct GridScratch {
    /// One feature row per queried node count.
    pub features: FeatureMatrix,
    /// The member kernels' reusable buffers.
    pub predict: PredictScratch,
}

impl GridScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        GridScratch::default()
    }
}

/// Anything Algorithm 1 can query for predicted execution times — the
/// monolithic [`PredictorFamily`] or the per-instance-type
/// [`ShardedPredictor`]. `Sync` so selection sweeps can share one predictor
/// across worker threads.
pub trait TimePredictor: Sync {
    /// Per-model predicted times `p_x(m, n, f)`, paired with model names.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if no trained model covers the query.
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError>;

    /// The ensemble-averaged predicted time (Algorithm 1's `time`),
    /// floored at zero since times are non-negative.
    ///
    /// # Errors
    ///
    /// Same contract as [`TimePredictor::predict_each`].
    fn predict_mean(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<f64, CoreError> {
        let each = self.predict_each(profile, instance, n_nodes)?;
        let mean = each.iter().map(|(_, t)| t).sum::<f64>() / each.len() as f64;
        Ok(mean.max(0.0))
    }

    /// Every member's predicted time over one instance type and a run of
    /// node counts — the batched kernel behind the Algorithm 1 grid sweep.
    ///
    /// Fills `out` member-major (`out[m * nodes.len() + i]` is member `m`'s
    /// prediction for `nodes[i]`) and returns the member count (an empty
    /// `nodes` run clears `out` and returns 0). Each value
    /// is bit-identical to the corresponding [`TimePredictor::predict_each`]
    /// entry; the default implementation literally loops `predict_each`,
    /// while [`PredictorFamily`] overrides it with one
    /// `Regressor::predict_batch` pass per member over a feature matrix
    /// built once.
    ///
    /// # Errors
    ///
    /// Same contract as [`TimePredictor::predict_each`].
    fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        let _ = scratch;
        out.clear();
        let mut members = 0;
        for (i, &n) in nodes.iter().enumerate() {
            let each = self.predict_each(profile, instance, n)?;
            if i == 0 {
                members = each.len();
                out.resize(members * nodes.len(), 0.0);
            }
            debug_assert_eq!(each.len(), members, "member count must be stable");
            for (m, (_, t)) in each.iter().enumerate() {
                out[m * nodes.len() + i] = *t;
            }
        }
        Ok(members)
    }
}

/// The six retrainable execution-time predictors.
///
/// `Clone` copies the full fitted state (via `Regressor::clone_box`), so a
/// snapshot layer can freeze an immutable copy while the original keeps
/// retraining incrementally.
#[derive(Clone)]
pub struct PredictorFamily {
    models: Vec<Box<dyn Regressor>>,
    trained_on: usize,
    /// Fingerprint of the featurized prefix the family was trained on —
    /// gates the incremental retrain path.
    trained_fingerprint: u64,
    min_samples: usize,
    /// Family seed, reused to key the windowed-retrain history subsample.
    seed: u64,
}

impl PredictorFamily {
    /// Creates an untrained family with Weka-like defaults.
    ///
    /// `min_samples` is the knowledge-base size below which training is
    /// refused (predictions would be meaningless); the paper bootstraps
    /// this phase with manual configurations.
    pub fn new(seed: u64, min_samples: usize) -> Self {
        PredictorFamily {
            models: default_family(seed),
            trained_on: 0,
            trained_fingerprint: 0,
            min_samples: min_samples.max(2),
            seed,
        }
    }

    /// FNV-1a over the prefix length and the bit patterns of the boundary
    /// rows (first and last) with their targets. A cheap O(dim) check that
    /// the knowledge base grew by *appending* to the exact prefix the family
    /// was trained on: any truncation, reordering or boundary edit changes
    /// the hash and forces the full-refit path. Callers still own the
    /// append-only discipline — the guard catches accidents, it is not
    /// cryptographic.
    fn fingerprint(data: &Dataset, len: usize) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = (0xcbf2_9ce4_8422_2325_u64 ^ len as u64).wrapping_mul(PRIME);
        if len > 0 {
            for i in [0, len - 1] {
                for v in &data.rows()[i] {
                    h = (h ^ v.to_bits()).wrapping_mul(PRIME);
                }
                h = (h ^ data.targets()[i].to_bits()).wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Number of models (always 6 for the paper's family).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` if the family has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Number of samples the family was last trained on (0 = untrained).
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// `true` once the family has been trained at least once.
    pub fn is_trained(&self) -> bool {
        self.trained_on > 0
    }

    /// Retrains every model on the current knowledge base.
    ///
    /// `mode` selects how previously trained state is reused (see
    /// [`RetrainMode`]); [`RetrainMode::Incremental`] is the bit-identity-
    /// preserving default. The per-model fits are spread over up to
    /// `n_threads` worker threads: every model owns its RNG state and
    /// trains against a shared immutable view of the featurized knowledge
    /// base (built once, cached by the base), so the fits are
    /// order-independent and the trained family is bit-identical to
    /// `n_threads = 1`. Fit errors are surfaced in model order, matching
    /// the sequential loop.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientKnowledge`] below `min_samples`,
    /// [`CoreError::InvalidParameter`] for `n_threads == 0`, and
    /// propagates model-training failures.
    pub fn retrain(
        &mut self,
        kb: &KnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        match mode {
            RetrainMode::Incremental => self.retrain_impl(kb, n_threads, false, false),
            RetrainMode::Full => self.retrain_impl(kb, n_threads, true, false),
            RetrainMode::Warm => self.retrain_impl(kb, n_threads, false, true),
            RetrainMode::Windowed { window, decay } => {
                self.retrain_windowed(kb, n_threads, window, decay)
            }
        }
    }

    /// The [`RetrainMode::Windowed`] path: refit every member from scratch
    /// on the suffix window plus the decayed history sample. When the
    /// windowed set happens to be the whole base (unbounded window or
    /// `decay = 1.0`) this is bit-identical to [`RetrainMode::Full`];
    /// otherwise the members end up fitted on fewer rows than
    /// `trained_on`, which by itself forces the *next* incremental retrain
    /// down the safe full-refit fallback.
    fn retrain_windowed(
        &mut self,
        kb: &KnowledgeBase,
        n_threads: usize,
        window: usize,
        decay: f64,
    ) -> Result<(), CoreError> {
        if n_threads == 0 {
            return Err(CoreError::InvalidParameter("n_threads must be > 0"));
        }
        if window == 0 {
            return Err(CoreError::InvalidParameter(
                "windowed retrain needs a non-empty window",
            ));
        }
        if !(0.0..=1.0).contains(&decay) {
            return Err(CoreError::InvalidParameter(
                "windowed decay must be in [0, 1]",
            ));
        }
        if kb.len() < self.min_samples {
            return Err(CoreError::InsufficientKnowledge {
                have: kb.len(),
                need: self.min_samples,
            });
        }
        let data_ref = kb.dataset()?;
        let data: &Dataset = &data_ref;
        let start = data.len().saturating_sub(window);
        let windowed = data.decayed_window(start, decay, self.seed);
        let results = parallel_map_mut(&mut self.models, n_threads, |_, m| m.fit(&windowed));
        for r in results {
            r?;
        }
        self.trained_on = data.len();
        self.trained_fingerprint = Self::fingerprint(data, data.len());
        Ok(())
    }

    fn retrain_impl(
        &mut self,
        kb: &KnowledgeBase,
        n_threads: usize,
        force_full: bool,
        allow_inexact: bool,
    ) -> Result<(), CoreError> {
        if n_threads == 0 {
            return Err(CoreError::InvalidParameter("n_threads must be > 0"));
        }
        if kb.len() < self.min_samples {
            return Err(CoreError::InsufficientKnowledge {
                have: kb.len(),
                need: self.min_samples,
            });
        }
        let data_ref = kb.dataset()?;
        let data: &Dataset = &data_ref;
        let from = self.trained_on;
        let incremental_ok = !force_full
            && from > 0
            && from <= data.len()
            && Self::fingerprint(data, from) == self.trained_fingerprint;
        let results = parallel_map_mut(&mut self.models, n_threads, |_, m| {
            match m.as_incremental() {
                Some(inc)
                    if incremental_ok
                        && inc.fitted_len() == from
                        && (allow_inexact || inc.exact()) =>
                {
                    inc.partial_fit(data, from)
                }
                _ => m.fit(data),
            }
        });
        for r in results {
            r?;
        }
        self.trained_on = data.len();
        self.trained_fingerprint = Self::fingerprint(data, data.len());
        Ok(())
    }

    /// Per-model predicted times `p_x(m, n, f)`, paired with model names.
    /// Names are `&'static str` (the members' compile-time names), so the
    /// per-cell cost is one `Vec` — Table I callers that want owned names
    /// convert at the reporting edge.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the family is untrained.
    pub fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        let x = RunRecord::features_for(profile, instance, n_nodes);
        self.models
            .iter()
            .map(|m| Ok((m.name(), m.predict(&x)?)))
            .collect()
    }

    /// Batched per-member predictions over one instance's node run — see
    /// [`TimePredictor::predict_grid`] for the layout contract. Builds the
    /// feature matrix once (one row per node count, assembled in place) and
    /// runs each member's `predict_batch` over it, so the whole run costs
    /// one member pass instead of `nodes.len()` scalar passes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the family is untrained.
    pub fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        let n = nodes.len();
        if n == 0 {
            out.clear();
            return Ok(0);
        }
        scratch.features.clear();
        for &n_nodes in nodes {
            scratch
                .features
                .push_row_with(|buf| RunRecord::features_into(profile, instance, n_nodes, buf));
        }
        out.clear();
        out.resize(self.models.len() * n, 0.0);
        for (m, model) in self.models.iter().enumerate() {
            model.predict_batch(
                &scratch.features,
                &mut out[m * n..(m + 1) * n],
                &mut scratch.predict,
            )?;
        }
        Ok(self.models.len())
    }

    /// The ensemble-averaged predicted time (Algorithm 1's `time`),
    /// floored at zero since times are non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the family is untrained.
    pub fn predict_mean(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<f64, CoreError> {
        let each = self.predict_each(profile, instance, n_nodes)?;
        let mean = each.iter().map(|(_, t)| t).sum::<f64>() / each.len() as f64;
        Ok(mean.max(0.0))
    }
}

impl TimePredictor for PredictorFamily {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        PredictorFamily::predict_each(self, profile, instance, n_nodes)
    }

    fn predict_mean(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<f64, CoreError> {
        PredictorFamily::predict_mean(self, profile, instance, n_nodes)
    }

    fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        PredictorFamily::predict_grid(self, profile, instance, nodes, out, scratch)
    }
}

/// One [`PredictorFamily`] per instance-type shard of a
/// [`ShardedKnowledgeBase`].
///
/// Queries route to the family owning the queried instance type and a
/// `record()` on the base only ever dirties one shard, so the
/// after-every-run retrain touches that shard's records instead of the
/// whole base. Every family is created from the same `(seed, min_samples)`
/// pair, so a shard's family is bit-identical to a monolithic
/// [`PredictorFamily`] trained on
/// [`KnowledgeBase::for_instance`] of the equivalent monolithic base.
pub struct ShardedPredictor {
    families: BTreeMap<String, PredictorFamily>,
    seed: u64,
    min_samples: usize,
}

impl ShardedPredictor {
    /// Creates an empty sharded predictor; families materialize lazily on
    /// the first retrain of their shard, all seeded identically.
    pub fn new(seed: u64, min_samples: usize) -> Self {
        ShardedPredictor {
            families: BTreeMap::new(),
            seed,
            min_samples: min_samples.max(2),
        }
    }

    /// The knowledge-base size below which a shard's training is refused.
    pub fn min_samples(&self) -> usize {
        self.min_samples
    }

    /// `true` once the named instance type has a trained family.
    pub fn is_trained_for(&self, instance: &str) -> bool {
        self.families
            .get(instance)
            .is_some_and(PredictorFamily::is_trained)
    }

    /// Number of shards with a trained family.
    pub fn trained_shards(&self) -> usize {
        self.families.values().filter(|f| f.is_trained()).count()
    }

    /// The family serving the named instance type, if it exists.
    pub fn family(&self, instance: &str) -> Option<&PredictorFamily> {
        self.families.get(instance)
    }

    /// Retrains the family owning `instance` on that shard's records,
    /// creating the family on first use. `mode` and `n_threads` behave as
    /// in [`PredictorFamily::retrain`].
    ///
    /// # Errors
    ///
    /// Same contract as [`PredictorFamily::retrain`].
    pub fn retrain_shard(
        &mut self,
        instance: &str,
        shard: &KnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        let seed = self.seed;
        let min_samples = self.min_samples;
        self.families
            .entry(instance.to_string())
            .or_insert_with(|| PredictorFamily::new(seed, min_samples))
            .retrain(shard, mode, n_threads)
    }

    /// Retrains every shard holding at least `min_samples` records —
    /// the bulk warm-up after a load or bootstrap; smaller shards are
    /// skipped, not errors.
    ///
    /// # Errors
    ///
    /// Propagates the first shard-retrain failure.
    pub fn retrain_all(
        &mut self,
        kb: &ShardedKnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        for (name, shard) in kb.shards() {
            if shard.len() >= self.min_samples {
                self.retrain_shard(name, shard, mode, n_threads)?;
            }
        }
        Ok(())
    }
}

impl TimePredictor for ShardedPredictor {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        match self.families.get(&instance.name) {
            Some(f) if f.is_trained() => f.predict_each(profile, instance, n_nodes),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }

    fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        match self.families.get(&instance.name) {
            Some(f) if f.is_trained() => f.predict_grid(profile, instance, nodes, out, scratch),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_cloudsim::InstanceCatalog;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn filled_kb(n: usize) -> KnowledgeBase {
        // Synthetic ground truth: time ~ contracts / (vcpus · nodes).
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..n {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 4 + 1;
            let contracts = 50 + (i * 37) % 400;
            let time = 5000.0 * contracts as f64
                / (inst.compute_power() * nodes as f64)
                / 100.0;
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.01));
        }
        kb
    }

    #[test]
    fn retrain_requires_min_samples() {
        let mut fam = PredictorFamily::new(1, 10);
        let kb = filled_kb(5);
        assert!(matches!(
            fam.retrain(&kb, RetrainMode::Incremental, 1),
            Err(CoreError::InsufficientKnowledge { have: 5, need: 10 })
        ));
        assert!(!fam.is_trained());
    }

    #[test]
    fn untrained_family_refuses_predictions() {
        let fam = PredictorFamily::new(1, 2);
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        assert!(fam.predict_mean(&profile(100), inst, 2).is_err());
    }

    #[test]
    fn family_learns_monotonicity_in_nodes() {
        let mut fam = PredictorFamily::new(7, 2);
        fam.retrain(&filled_kb(300), RetrainMode::Incremental, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        let t1 = fam.predict_mean(&profile(200), inst, 1).unwrap();
        let t4 = fam.predict_mean(&profile(200), inst, 4).unwrap();
        assert!(t4 < t1, "more nodes should predict faster: {t1} vs {t4}");
    }

    #[test]
    fn predict_each_names_all_six() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(100), RetrainMode::Incremental, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("m4.4xlarge").unwrap();
        let each = fam.predict_each(&profile(100), inst, 2).unwrap();
        assert_eq!(each.len(), 6);
        let names: Vec<&str> = each.iter().map(|(n, _)| *n).collect();
        for expect in ["MLP", "RT", "RF", "IBk", "KStar", "DT"] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn mean_is_average_of_each() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(100), RetrainMode::Incremental, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("m4.4xlarge").unwrap();
        let each = fam.predict_each(&profile(100), inst, 2).unwrap();
        let mean = fam.predict_mean(&profile(100), inst, 2).unwrap();
        let expect = (each.iter().map(|(_, t)| t).sum::<f64>() / 6.0).max(0.0);
        assert!((mean - expect).abs() < 1e-12);
    }

    #[test]
    fn retraining_updates_trained_on() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
        assert_eq!(fam.trained_on(), 50);
        fam.retrain(&filled_kb(80), RetrainMode::Incremental, 1).unwrap();
        assert_eq!(fam.trained_on(), 80);
    }

    #[test]
    fn threaded_retrain_is_bit_identical_to_sequential() {
        let kb = filled_kb(150);
        let cat = InstanceCatalog::paper_catalog();
        let mut seq = PredictorFamily::new(11, 2);
        seq.retrain(&kb, RetrainMode::Incremental, 1).unwrap();
        for threads in [2, 4, 7] {
            let mut par = PredictorFamily::new(11, 2);
            par.retrain(&kb, RetrainMode::Incremental, threads).unwrap();
            assert_eq!(par.trained_on(), seq.trained_on());
            for name in cat.names() {
                let inst = cat.get(&name).unwrap();
                for n in [1usize, 3, 6] {
                    let a = seq.predict_each(&profile(180), inst, n).unwrap();
                    let b = par.predict_each(&profile(180), inst, n).unwrap();
                    assert_eq!(a, b, "divergence at n_threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn zero_threads_is_rejected() {
        let mut fam = PredictorFamily::new(3, 2);
        assert!(matches!(
            fam.retrain(&filled_kb(50), RetrainMode::Incremental, 0),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    /// Predictions of two families must agree bitwise across the catalog.
    fn assert_families_identical(a: &PredictorFamily, b: &PredictorFamily, what: &str) {
        let cat = InstanceCatalog::paper_catalog();
        for name in cat.names() {
            let inst = cat.get(&name).unwrap();
            for n in [1usize, 3] {
                let pa = a.predict_each(&profile(180), inst, n).unwrap();
                let pb = b.predict_each(&profile(180), inst, n).unwrap();
                for ((ma, va), (mb, vb)) in pa.iter().zip(&pb) {
                    assert_eq!(ma, mb);
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "{what}: {ma} diverges on {name} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_retrain_matches_full_refit() {
        // filled_kb(80) extends filled_kb(50) by appending — the second
        // retrain may feed the instance-based models only the 30 new rows,
        // yet must land bit-identical to a from-scratch fit on all 80.
        let mut inc = PredictorFamily::new(3, 2);
        inc.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
        inc.retrain(&filled_kb(80), RetrainMode::Incremental, 1).unwrap();
        assert_eq!(inc.trained_on(), 80);
        let mut full = PredictorFamily::new(3, 2);
        full.retrain(&filled_kb(80), RetrainMode::Full, 1).unwrap();
        assert_families_identical(&inc, &full, "incremental vs full");
    }

    #[test]
    fn warm_retrain_is_deterministic_and_keeps_exact_members_bitwise() {
        let run = || {
            let mut fam = PredictorFamily::new(3, 2);
            fam.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
            fam.retrain(&filled_kb(80), RetrainMode::Warm, 1).unwrap();
            fam
        };
        let a = run();
        let b = run();
        assert_families_identical(&a, &b, "warm retrain determinism");

        // Only the inexact warm-started members (MLP weights, tree/forest
        // suffix subsampling) are licensed to diverge from a from-scratch
        // refit; every exact member must stay bitwise equal.
        let mut full = PredictorFamily::new(3, 2);
        full.retrain(&filled_kb(80), RetrainMode::Full, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        let pa = a.predict_each(&profile(180), inst, 2).unwrap();
        let pf = full.predict_each(&profile(180), inst, 2).unwrap();
        for ((ma, va), (mf, vf)) in pa.iter().zip(&pf) {
            assert_eq!(ma, mf);
            if ma != "MLP" && ma != "RT" && ma != "RF" {
                assert_eq!(
                    va.to_bits(),
                    vf.to_bits(),
                    "{ma} diverged under warm retrain"
                );
            }
        }
    }

    #[test]
    fn warm_retrain_threaded_matches_sequential() {
        let mut seq = PredictorFamily::new(6, 2);
        seq.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
        seq.retrain(&filled_kb(90), RetrainMode::Warm, 1).unwrap();
        let mut par = PredictorFamily::new(6, 2);
        par.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
        par.retrain(&filled_kb(90), RetrainMode::Warm, 4).unwrap();
        assert_families_identical(&seq, &par, "warm retrain thread invariance");
    }

    #[test]
    fn unbounded_window_matches_full_refit_bitwise() {
        let kb = filled_kb(120);
        let mut win = PredictorFamily::new(3, 2);
        win.retrain(
            &kb,
            RetrainMode::Windowed {
                window: usize::MAX,
                decay: 1.0,
            },
            1,
        )
        .unwrap();
        let mut full = PredictorFamily::new(3, 2);
        full.retrain(&kb, RetrainMode::Full, 1).unwrap();
        assert_eq!(win.trained_on(), full.trained_on());
        assert_families_identical(&win, &full, "windowed(∞, 1.0) vs full");

        // decay = 1.0 alone also keeps everything, regardless of window.
        let mut decayed = PredictorFamily::new(3, 2);
        decayed
            .retrain(&kb, RetrainMode::Windowed { window: 10, decay: 1.0 }, 1)
            .unwrap();
        assert_families_identical(&decayed, &full, "windowed(10, 1.0) vs full");
    }

    #[test]
    fn windowed_retrain_trains_on_the_window() {
        // A genuine window must match a from-scratch fit on just the
        // suffix (decay = 0 keeps no history at all).
        let kb = filled_kb(150);
        let mut win = PredictorFamily::new(3, 2);
        win.retrain(&kb, RetrainMode::Windowed { window: 40, decay: 0.0 }, 1)
            .unwrap();
        assert_eq!(win.trained_on(), 150);
        let mut suffix_kb = KnowledgeBase::new();
        for r in &kb.records()[110..] {
            suffix_kb.record(r.clone());
        }
        let mut suffix = PredictorFamily::new(3, 2);
        suffix.retrain(&suffix_kb, RetrainMode::Full, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        let pw = win.predict_each(&profile(180), inst, 2).unwrap();
        let ps = suffix.predict_each(&profile(180), inst, 2).unwrap();
        assert_eq!(pw, ps, "window fit must see only the suffix");
    }

    #[test]
    fn incremental_after_windowed_falls_back_to_full_refit() {
        // After a genuine windowed fit the members cover fewer rows than
        // `trained_on`; the next incremental retrain must not splice new
        // rows onto that state but refit from scratch.
        let mut fam = PredictorFamily::new(8, 2);
        fam.retrain(
            &filled_kb(100),
            RetrainMode::Windowed { window: 30, decay: 0.1 },
            1,
        )
        .unwrap();
        fam.retrain(&filled_kb(130), RetrainMode::Incremental, 1).unwrap();
        let mut fresh = PredictorFamily::new(8, 2);
        fresh.retrain(&filled_kb(130), RetrainMode::Full, 1).unwrap();
        assert_families_identical(&fam, &fresh, "incremental after windowed");
    }

    #[test]
    fn windowed_retrain_validates_parameters() {
        let mut fam = PredictorFamily::new(3, 2);
        let kb = filled_kb(50);
        assert!(matches!(
            fam.retrain(&kb, RetrainMode::Windowed { window: 0, decay: 0.5 }, 1),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            fam.retrain(&kb, RetrainMode::Windowed { window: 10, decay: 1.5 }, 1),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(!fam.is_trained());
    }

    #[test]
    fn non_prefix_kb_falls_back_to_full_refit() {
        // Same length, different order: the boundary fingerprint must
        // reject the incremental path, leaving the family equal to a fresh
        // fit on the new base (not a stale no-op on the old one).
        let kb = filled_kb(60);
        let mut rev = KnowledgeBase::new();
        for r in kb.records().iter().rev() {
            rev.record(r.clone());
        }
        let mut fam = PredictorFamily::new(9, 2);
        fam.retrain(&kb, RetrainMode::Incremental, 1).unwrap();
        fam.retrain(&rev, RetrainMode::Incremental, 1).unwrap();
        let mut fresh = PredictorFamily::new(9, 2);
        fresh.retrain(&rev, RetrainMode::Incremental, 1).unwrap();
        assert_families_identical(&fam, &fresh, "fingerprint fallback");
    }

    #[test]
    fn shrunk_kb_falls_back_to_full_refit() {
        let mut fam = PredictorFamily::new(4, 2);
        fam.retrain(&filled_kb(50), RetrainMode::Incremental, 1).unwrap();
        fam.retrain(&filled_kb(20), RetrainMode::Incremental, 1).unwrap();
        assert_eq!(fam.trained_on(), 20);
        let mut fresh = PredictorFamily::new(4, 2);
        fresh.retrain(&filled_kb(20), RetrainMode::Incremental, 1).unwrap();
        assert_families_identical(&fam, &fresh, "shrunk base");
    }

    #[test]
    fn sharded_predictor_matches_per_instance_training() {
        let kb = filled_kb(120);
        let skb = crate::knowledge::ShardedKnowledgeBase::from_monolithic(&kb);
        let mut sharded = ShardedPredictor::new(5, 2);
        sharded.retrain_all(&skb, RetrainMode::Incremental, 2).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        assert_eq!(sharded.trained_shards(), cat.names().len());
        for name in cat.names() {
            let inst = cat.get(&name).unwrap();
            assert!(sharded.is_trained_for(&name));
            let mut mono = PredictorFamily::new(5, 2);
            mono.retrain(&kb.for_instance(&name), RetrainMode::Incremental, 1).unwrap();
            for n in [1usize, 4] {
                let a = TimePredictor::predict_each(&sharded, &profile(123), inst, n).unwrap();
                let b = mono.predict_each(&profile(123), inst, n).unwrap();
                assert_eq!(a, b, "shard {name} diverges from per-instance family");
            }
        }
    }

    #[test]
    fn predict_grid_matches_predict_each_bitwise() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(120), RetrainMode::Incremental, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let nodes: Vec<usize> = (1..=6).collect();
        let mut out = Vec::new();
        let mut scratch = GridScratch::new();
        for name in cat.names() {
            let inst = cat.get(&name).unwrap();
            let members = fam
                .predict_grid(&profile(150), inst, &nodes, &mut out, &mut scratch)
                .unwrap();
            assert_eq!(members, 6);
            assert_eq!(out.len(), members * nodes.len());
            for (i, &n) in nodes.iter().enumerate() {
                let each = fam.predict_each(&profile(150), inst, n).unwrap();
                for (m, (_, t)) in each.iter().enumerate() {
                    assert_eq!(
                        out[m * nodes.len() + i].to_bits(),
                        t.to_bits(),
                        "{name} n={n} member {m}"
                    );
                }
            }
        }
    }

    /// A predictor that only implements `predict_each` — exercises the
    /// trait's default looping `predict_grid`.
    struct EachOnly(PredictorFamily);
    impl TimePredictor for EachOnly {
        fn predict_each(
            &self,
            profile: &JobProfile,
            instance: &InstanceType,
            n_nodes: usize,
        ) -> Result<Vec<(&'static str, f64)>, CoreError> {
            self.0.predict_each(profile, instance, n_nodes)
        }
    }

    #[test]
    fn default_predict_grid_matches_family_override() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(120), RetrainMode::Incremental, 1).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        let nodes: Vec<usize> = (1..=5).collect();
        let wrapped = EachOnly(fam.clone());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut scratch = GridScratch::new();
        let ma = fam
            .predict_grid(&profile(150), inst, &nodes, &mut a, &mut scratch)
            .unwrap();
        let mb = wrapped
            .predict_grid(&profile(150), inst, &nodes, &mut b, &mut scratch)
            .unwrap();
        assert_eq!(ma, mb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Empty node runs are a no-op for both paths.
        for p in [&fam as &dyn TimePredictor, &wrapped] {
            assert_eq!(
                p.predict_grid(&profile(150), inst, &[], &mut a, &mut scratch)
                    .unwrap(),
                0
            );
            assert!(a.is_empty());
        }
    }

    #[test]
    fn sharded_predictor_refuses_unknown_instance() {
        let sharded = ShardedPredictor::new(5, 2);
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        assert!(!sharded.is_trained_for("c3.4xlarge"));
        assert!(matches!(
            TimePredictor::predict_each(&sharded, &profile(100), inst, 2),
            Err(CoreError::Ml(disar_ml::MlError::NotFitted))
        ));
    }
}
