//! The prediction-model family `P`.
//!
//! "We define a family of prediction models P which is composed of all the
//! prediction models p_x : M × N × F → R⁺, where
//! x ∈ {MLP, RT, RF, IBk, KStar, DT} … The co-domain of each p_x is the
//! expected execution time on the given deploy configuration" (§III).
//!
//! The family is retrained from the knowledge base after every executed
//! simulation ("we therefore re-train the ML-based models after each
//! execution"), and queried both per-model (Table I) and ensemble-averaged
//! (Algorithm 1).

use crate::knowledge::{KnowledgeBase, RunRecord};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::InstanceType;
use disar_math::parallel::parallel_map_mut;
use disar_ml::{default_family, Dataset, Regressor};

/// The six retrainable execution-time predictors.
pub struct PredictorFamily {
    models: Vec<Box<dyn Regressor>>,
    trained_on: usize,
    min_samples: usize,
}

impl PredictorFamily {
    /// Creates an untrained family with Weka-like defaults.
    ///
    /// `min_samples` is the knowledge-base size below which training is
    /// refused (predictions would be meaningless); the paper bootstraps
    /// this phase with manual configurations.
    pub fn new(seed: u64, min_samples: usize) -> Self {
        PredictorFamily {
            models: default_family(seed),
            trained_on: 0,
            min_samples: min_samples.max(2),
        }
    }

    /// Number of models (always 6 for the paper's family).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` if the family has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Number of samples the family was last trained on (0 = untrained).
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// `true` once the family has been trained at least once.
    pub fn is_trained(&self) -> bool {
        self.trained_on > 0
    }

    /// Retrains every model on the current knowledge base.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientKnowledge`] below `min_samples`
    /// and propagates model-training failures.
    pub fn retrain(&mut self, kb: &KnowledgeBase) -> Result<(), CoreError> {
        self.retrain_with_threads(kb, 1)
    }

    /// [`PredictorFamily::retrain`] with the per-model fits spread over up
    /// to `n_threads` worker threads.
    ///
    /// Every model owns its RNG state and trains against a shared immutable
    /// view of the featurized knowledge base (built once, cached by the
    /// base), so the fits are order-independent and the trained family is
    /// bit-identical to `n_threads = 1`. Fit errors are surfaced in model
    /// order, matching the sequential loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`PredictorFamily::retrain`], plus
    /// [`CoreError::InvalidParameter`] for `n_threads == 0`.
    pub fn retrain_with_threads(
        &mut self,
        kb: &KnowledgeBase,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        if n_threads == 0 {
            return Err(CoreError::InvalidParameter("n_threads must be > 0"));
        }
        if kb.len() < self.min_samples {
            return Err(CoreError::InsufficientKnowledge {
                have: kb.len(),
                need: self.min_samples,
            });
        }
        let data_ref = kb.dataset()?;
        let data: &Dataset = &data_ref;
        let results = parallel_map_mut(&mut self.models, n_threads, |_, m| m.fit(data));
        for r in results {
            r?;
        }
        self.trained_on = kb.len();
        Ok(())
    }

    /// Per-model predicted times `p_x(m, n, f)`, paired with model names.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the family is untrained.
    pub fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(String, f64)>, CoreError> {
        let x = RunRecord::features_for(profile, instance, n_nodes);
        self.models
            .iter()
            .map(|m| Ok((m.name().to_string(), m.predict(&x)?)))
            .collect()
    }

    /// The ensemble-averaged predicted time (Algorithm 1's `time`),
    /// floored at zero since times are non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the family is untrained.
    pub fn predict_mean(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<f64, CoreError> {
        let each = self.predict_each(profile, instance, n_nodes)?;
        let mean = each.iter().map(|(_, t)| t).sum::<f64>() / each.len() as f64;
        Ok(mean.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_cloudsim::InstanceCatalog;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn filled_kb(n: usize) -> KnowledgeBase {
        // Synthetic ground truth: time ~ contracts / (vcpus · nodes).
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..n {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 4 + 1;
            let contracts = 50 + (i * 37) % 400;
            let time = 5000.0 * contracts as f64
                / (inst.compute_power() * nodes as f64)
                / 100.0;
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.01));
        }
        kb
    }

    #[test]
    fn retrain_requires_min_samples() {
        let mut fam = PredictorFamily::new(1, 10);
        let kb = filled_kb(5);
        assert!(matches!(
            fam.retrain(&kb),
            Err(CoreError::InsufficientKnowledge { have: 5, need: 10 })
        ));
        assert!(!fam.is_trained());
    }

    #[test]
    fn untrained_family_refuses_predictions() {
        let fam = PredictorFamily::new(1, 2);
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        assert!(fam.predict_mean(&profile(100), inst, 2).is_err());
    }

    #[test]
    fn family_learns_monotonicity_in_nodes() {
        let mut fam = PredictorFamily::new(7, 2);
        fam.retrain(&filled_kb(300)).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("c3.4xlarge").unwrap();
        let t1 = fam.predict_mean(&profile(200), inst, 1).unwrap();
        let t4 = fam.predict_mean(&profile(200), inst, 4).unwrap();
        assert!(t4 < t1, "more nodes should predict faster: {t1} vs {t4}");
    }

    #[test]
    fn predict_each_names_all_six() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(100)).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("m4.4xlarge").unwrap();
        let each = fam.predict_each(&profile(100), inst, 2).unwrap();
        assert_eq!(each.len(), 6);
        let names: Vec<&str> = each.iter().map(|(n, _)| n.as_str()).collect();
        for expect in ["MLP", "RT", "RF", "IBk", "KStar", "DT"] {
            assert!(names.contains(&expect), "{expect} missing");
        }
    }

    #[test]
    fn mean_is_average_of_each() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(100)).unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get("m4.4xlarge").unwrap();
        let each = fam.predict_each(&profile(100), inst, 2).unwrap();
        let mean = fam.predict_mean(&profile(100), inst, 2).unwrap();
        let expect = (each.iter().map(|(_, t)| t).sum::<f64>() / 6.0).max(0.0);
        assert!((mean - expect).abs() < 1e-12);
    }

    #[test]
    fn retraining_updates_trained_on() {
        let mut fam = PredictorFamily::new(3, 2);
        fam.retrain(&filled_kb(50)).unwrap();
        assert_eq!(fam.trained_on(), 50);
        fam.retrain(&filled_kb(80)).unwrap();
        assert_eq!(fam.trained_on(), 80);
    }

    #[test]
    fn threaded_retrain_is_bit_identical_to_sequential() {
        let kb = filled_kb(150);
        let cat = InstanceCatalog::paper_catalog();
        let mut seq = PredictorFamily::new(11, 2);
        seq.retrain_with_threads(&kb, 1).unwrap();
        for threads in [2, 4, 7] {
            let mut par = PredictorFamily::new(11, 2);
            par.retrain_with_threads(&kb, threads).unwrap();
            assert_eq!(par.trained_on(), seq.trained_on());
            for name in cat.names() {
                let inst = cat.get(&name).unwrap();
                for n in [1usize, 3, 6] {
                    let a = seq.predict_each(&profile(180), inst, n).unwrap();
                    let b = par.predict_each(&profile(180), inst, n).unwrap();
                    assert_eq!(a, b, "divergence at n_threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn zero_threads_is_rejected() {
        let mut fam = PredictorFamily::new(3, 2);
        assert!(matches!(
            fam.retrain_with_threads(&filled_kb(50), 0),
            Err(CoreError::InvalidParameter(_))
        ));
    }
}
