use std::error::Error;
use std::fmt;

/// Error type for the provisioning layer.
#[derive(Debug)]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The knowledge base has too few samples to train on.
    InsufficientKnowledge {
        /// Samples currently available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// No configuration satisfies the `T_max` constraint.
    NoFeasibleConfiguration {
        /// The deadline that could not be met (seconds).
        t_max: f64,
        /// The best (smallest) predicted time among all configurations.
        best_predicted: f64,
    },
    /// An ML model failed to train or predict.
    Ml(disar_ml::MlError),
    /// The cloud rejected a request.
    Cloud(disar_cloudsim::CloudError),
    /// The DISAR engine failed.
    Engine(disar_engine::EngineError),
    /// A pipeline worker thread died (panicked) before delivering its run
    /// report; `job` is the submission index of the lost run.
    PipelineWorkerLost {
        /// Submission index of the job whose worker was lost.
        job: usize,
    },
    /// A bounded submission queue is full; the caller should retry after
    /// in-flight work drains instead of queueing without bound.
    Backpressure {
        /// The queue's capacity (jobs it can hold while the worker drains).
        capacity: usize,
    },
    /// The deploy service stopped (ingester failure or shutdown) while an
    /// operation was waiting on it.
    ServiceStopped(&'static str),
    /// A persisted artifact (knowledge base, registry row) was written by
    /// a newer schema than this build supports.
    UnsupportedSchema {
        /// The version stamped on the artifact.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// Persistence (de)serialization failed.
    Serde(serde_json::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CoreError::InsufficientKnowledge { have, need } => write!(
                f,
                "knowledge base has {have} samples but {need} are required"
            ),
            CoreError::NoFeasibleConfiguration { t_max, best_predicted } => write!(
                f,
                "no configuration meets T_max = {t_max}s (best predicted {best_predicted}s)"
            ),
            CoreError::Ml(e) => write!(f, "ml failure: {e}"),
            CoreError::Cloud(e) => write!(f, "cloud failure: {e}"),
            CoreError::Engine(e) => write!(f, "engine failure: {e}"),
            CoreError::PipelineWorkerLost { job } => {
                write!(f, "pipeline worker for job {job} was lost before reporting")
            }
            CoreError::Backpressure { capacity } => {
                write!(f, "submission queue is full ({capacity} jobs)")
            }
            CoreError::ServiceStopped(what) => write!(f, "deploy service stopped: {what}"),
            CoreError::UnsupportedSchema { found, supported } => write!(
                f,
                "artifact schema version {found} is newer than the supported {supported}"
            ),
            CoreError::Io(e) => write!(f, "io failure: {e}"),
            CoreError::Serde(e) => write!(f, "serialization failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Cloud(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<disar_ml::MlError> for CoreError {
    fn from(e: disar_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<disar_cloudsim::CloudError> for CoreError {
    fn from(e: disar_cloudsim::CloudError) -> Self {
        CoreError::Cloud(e)
    }
}

impl From<disar_engine::EngineError> for CoreError {
    fn from(e: disar_engine::EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

impl From<serde_json::Error> for CoreError {
    fn from(e: serde_json::Error) -> Self {
        CoreError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::NoFeasibleConfiguration {
            t_max: 100.0,
            best_predicted: 250.0,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.source().is_none());
        let e: CoreError = disar_ml::MlError::NotFitted.into();
        assert!(e.source().is_some());
    }
}
