//! The event-driven deploy pipeline: overlapping Algorithm 1's selection
//! sweep with the cloud runs it steers.
//!
//! The paper's transparent deployer runs strictly in sequence per job:
//! select → run → record → retrain. But the selection for job *k+1* only
//! *needs* the knowledge base as of the last landed record — whenever the
//! retrain schedule guarantees that the records still in flight cannot
//! change the predictor snapshot (bootstrap-phase selections, selections
//! inside a `retrain_every > 1` window, manual overrides), the sweep for
//! job *k+1* may legally start while job *k* is still executing.
//!
//! [`DeployPipeline`] exploits exactly that window and nothing more:
//!
//! - **submission queue** — jobs are issued in order, each selection
//!   seeing the decisions of all in-flight runs
//!   ([`Deployer::select`]'s `pending` contract);
//! - **in-flight table** — each issued job holds a reserved noise-stream
//!   slot ([`CloudProvider::begin_job`]) and executes on its own scoped
//!   thread, so realized durations replay the sequential `run_job`
//!   stream bit-for-bit;
//! - **completion stage** — reports land strictly in job order through a
//!   reorder buffer, and each record is fed back
//!   ([`Deployer::record`]) before the next selection that is allowed
//!   to observe it.
//!
//! The feedback-visibility rule ([`Deployer::selection_ready`]) makes
//! the pipeline *deterministic*: outcomes and the final knowledge base
//! are bit-identical to the sequential loop for **any** `depth ≥ 1`,
//! with `depth: 1` as the sequential escape hatch (mirroring the
//! `n_threads: 1` convention). Only [`PipelineStats`] — occupancy and
//! overlap counters — may vary with scheduling.

use crate::deploy::{DeployDecision, DeployOutcome, Deployer};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::{CloudError, JobReport, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;

/// One unit of work for the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineJob {
    /// The job's characteristic parameters (predictor features).
    pub profile: JobProfile,
    /// The cloud workload to execute.
    pub workload: Workload,
    /// `Some((instance, n_nodes))` forces this configuration (the manual
    /// override of [`Deployer::deploy_manual`]); `None` lets the deployer
    /// choose.
    pub forced: Option<(String, usize)>,
}

impl PipelineJob {
    /// A job whose configuration the deployer chooses.
    pub fn auto(profile: JobProfile, workload: Workload) -> Self {
        PipelineJob {
            profile,
            workload,
            forced: None,
        }
    }

    /// A job pinned to an operator-chosen configuration.
    pub fn forced(profile: JobProfile, workload: Workload, instance: &str, n_nodes: usize) -> Self {
        PipelineJob {
            profile,
            workload,
            forced: Some((instance.to_string(), n_nodes)),
        }
    }
}

/// Occupancy and overlap counters of one [`DeployPipeline::run`].
///
/// Diagnostics only: for `depth ≥ 2` the counters depend on which runs
/// happen to still be executing when a selection is issued, so they may
/// vary between executions even though the *outcomes* never do.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Largest number of simultaneously in-flight runs observed.
    pub max_in_flight: usize,
    /// Mean number of in-flight runs, sampled at each completion wait.
    pub mean_in_flight: f64,
    /// Selections issued while at least one run was still in flight — the
    /// overlap the sequential loop forgoes.
    pub overlapped_selections: usize,
    /// Times the feedback-visibility rule stalled the next selection until
    /// in-flight records landed.
    pub stalled_selections: usize,
}

/// The pipelined deploy service. Generic over the [`Deployer`] backend;
/// see the module docs for the execution model.
pub struct DeployPipeline<D: Deployer> {
    deployer: D,
    depth: usize,
    stats: PipelineStats,
    /// Test-only fault injection for the worker-loss paths.
    #[cfg(test)]
    fault: Option<WorkerFault>,
}

/// Test-only: make one worker thread misbehave.
#[cfg(test)]
#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkerFault {
    /// The worker panics mid-run (inside the caught region), exercising
    /// the panic-sentinel path.
    Panic(usize),
    /// The worker exits without ever reporting, exercising the
    /// channel-disconnect path.
    Vanish(usize),
}

impl<D: Deployer> DeployPipeline<D> {
    /// Wraps a deployer in a pipeline holding up to `depth` runs in
    /// flight. `depth: 1` degenerates to the sequential loop.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when `depth` is zero.
    pub fn new(deployer: D, depth: usize) -> Result<Self, CoreError> {
        if depth == 0 {
            return Err(CoreError::InvalidParameter("pipeline depth must be > 0"));
        }
        Ok(DeployPipeline {
            deployer,
            depth,
            stats: PipelineStats::default(),
            #[cfg(test)]
            fault: None,
        })
    }

    /// The configured in-flight bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Counters of the most recent [`DeployPipeline::run`].
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The wrapped deployer.
    pub fn deployer(&self) -> &D {
        &self.deployer
    }

    /// Test-only: inject a worker fault into the next [`DeployPipeline::run`].
    #[cfg(test)]
    fn with_fault(mut self, fault: WorkerFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Unwraps the pipeline, returning the deployer (with everything it
    /// learned).
    pub fn into_deployer(self) -> D {
        self.deployer
    }

    /// Runs every job, overlapping selections with in-flight executions
    /// wherever the feedback-visibility rule allows, and returns the
    /// per-job outcomes in submission order.
    ///
    /// # Errors
    ///
    /// A selection failure (e.g. [`CoreError::NoFeasibleConfiguration`])
    /// stops issuing; already-issued runs still land and are recorded, so
    /// the deployer's knowledge matches the sequential loop's at the same
    /// failure point, then the error is returned. A cloud or record
    /// failure is returned as soon as its job would land. A worker thread
    /// that dies without reporting (e.g. a panic inside the cloud run)
    /// surfaces as [`CoreError::PipelineWorkerLost`] — never a hang, never
    /// a propagated panic. [`PipelineStats`] (including `mean_in_flight`)
    /// are finalized on every exit path, successful or not.
    pub fn run(&mut self, jobs: &[PipelineJob]) -> Result<Vec<DeployOutcome>, CoreError> {
        let n = jobs.len();
        let provider = self.deployer.provider_handle();
        let depth = self.depth;
        let mut outcomes: Vec<Option<DeployOutcome>> = (0..n).map(|_| None).collect();
        let mut stats = PipelineStats {
            jobs: n,
            ..PipelineStats::default()
        };
        let mut issue_err: Option<CoreError> = None;
        #[cfg(test)]
        let fault = self.fault;

        let landed: Result<(), CoreError> = std::thread::scope(|scope| {
            // A worker that finishes sends `Some(result)`; one that
            // panics mid-run is caught and sends `None`, so the landing
            // loop always learns the job's fate.
            let (tx, rx) = mpsc::channel::<(usize, Option<Result<JobReport, CloudError>>)>();
            // The loop's own sender lives only while further spawns are
            // possible; dropping it afterwards turns "every remaining
            // worker died silently" into a recv disconnect instead of an
            // unbounded block.
            let mut tx = Some(tx);
            let mut in_flight: VecDeque<(usize, DeployDecision)> = VecDeque::new();
            let mut reorder: BTreeMap<usize, Option<Result<JobReport, CloudError>>> =
                BTreeMap::new();
            let mut next_issue = 0usize;
            let mut next_land = 0usize;
            let mut occupancy_sum = 0usize;
            let mut occupancy_samples = 0usize;

            let mut land_all = || -> Result<(), CoreError> {
                while next_land < n {
                    // Fill: issue jobs while the depth bound and the
                    // feedback-visibility rule allow.
                    while issue_err.is_none() && next_issue < n && in_flight.len() < depth {
                        let job = &jobs[next_issue];
                        let pending: Vec<DeployDecision> =
                            in_flight.iter().map(|(_, d)| d.clone()).collect();
                        let decided = if let Some((instance, n_nodes)) = &job.forced {
                            self.deployer.begin_manual(instance, *n_nodes)
                        } else {
                            if !pending.is_empty() && !self.deployer.selection_ready(&pending) {
                                stats.stalled_selections += 1;
                                break;
                            }
                            if !pending.is_empty() {
                                stats.overlapped_selections += 1;
                            }
                            self.deployer.select(&job.profile, &pending)
                        };
                        let decision = match decided {
                            Ok(d) => d,
                            Err(e) => {
                                issue_err = Some(e);
                                break;
                            }
                        };
                        // Reserve the noise-stream slot only now: a failed
                        // selection must leave the run stream exactly where
                        // the sequential loop would.
                        let handle = provider.begin_job();
                        let instance = decision.instance.clone();
                        let n_nodes = decision.n_nodes;
                        let workload = &job.workload;
                        let worker_tx = tx
                            .as_ref()
                            .expect("sender is alive while jobs are still being issued")
                            .clone();
                        let idx = next_issue;
                        scope.spawn(move || {
                            #[cfg(test)]
                            if fault == Some(WorkerFault::Vanish(idx)) {
                                return;
                            }
                            // The provider's state is per reserved slot and
                            // the pipeline abandons the whole run on worker
                            // loss, so unwinding across it is safe to
                            // assert.
                            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || {
                                    #[cfg(test)]
                                    if fault == Some(WorkerFault::Panic(idx)) {
                                        panic!("injected worker panic");
                                    }
                                    handle.execute(&instance, n_nodes, workload)
                                },
                            ));
                            let _ = worker_tx.send((idx, res.ok()));
                        });
                        in_flight.push_back((idx, decision));
                        next_issue += 1;
                    }

                    if issue_err.is_some() || next_issue == n {
                        // No further spawns: release the loop's sender so
                        // a worker dying without reporting disconnects the
                        // channel instead of blocking recv forever.
                        tx = None;
                    }

                    if in_flight.is_empty() {
                        // Nothing issued and nothing to land: only reachable
                        // after a selection error stopped the queue.
                        break;
                    }
                    stats.max_in_flight = stats.max_in_flight.max(in_flight.len());
                    occupancy_sum += in_flight.len();
                    occupancy_samples += 1;

                    // Complete: wait for the oldest in-flight run, buffering
                    // out-of-order finishers.
                    while !reorder.contains_key(&next_land) {
                        match rx.recv() {
                            Ok((idx, res)) => {
                                reorder.insert(idx, res);
                            }
                            Err(_) => {
                                // Every sender is gone yet the oldest job
                                // never reported: its worker died.
                                return Err(CoreError::PipelineWorkerLost { job: next_land });
                            }
                        }
                    }
                    // Land every consecutive completion, feeding each record
                    // back before any later selection can observe it.
                    while let Some(slot) = reorder.remove(&next_land) {
                        let Some(res) = slot else {
                            return Err(CoreError::PipelineWorkerLost { job: next_land });
                        };
                        let report = res?;
                        let (idx, decision) = in_flight
                            .pop_front()
                            .expect("landing job missing from the in-flight table");
                        debug_assert_eq!(idx, next_land);
                        self.deployer
                            .record(&jobs[next_land].profile, &decision, &report)?;
                        outcomes[next_land] = Some(DeployOutcome {
                            mode: decision.mode,
                            predicted_secs: decision.predicted_secs,
                            report,
                        });
                        next_land += 1;
                    }
                }
                Ok(())
            };
            let res = land_all();

            // Finalize occupancy on every exit path — cloud errors, record
            // failures and worker loss included — so `stats()` never
            // reports a zero mean alongside non-zero samples.
            if occupancy_samples > 0 {
                stats.mean_in_flight = occupancy_sum as f64 / occupancy_samples as f64;
            }
            res
        });

        self.stats = stats;
        landed?;
        if let Some(e) = issue_err {
            return Err(e);
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("every job landed"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{DeployMode, DeployPolicy, ShardedDeployer, TransparentDeployer};
    use disar_cloudsim::{CloudProvider, InstanceCatalog};
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn workload(contracts: usize) -> Workload {
        Workload::new(30.0 * contracts as f64, 0.02 * contracts as f64, 0.8 * contracts as f64, 0.05)
            .unwrap()
    }

    fn policy(retrain_every: usize) -> DeployPolicy {
        DeployPolicy::builder(50_000.0)
            .max_nodes(4)
            .min_kb_samples(8)
            .retrain_every(retrain_every)
            .n_threads(1)
            .build()
    }

    fn auto_jobs(n: usize) -> Vec<PipelineJob> {
        (0..n)
            .map(|i| {
                let c = 90 + i * 19;
                PipelineJob::auto(profile(c), workload(c))
            })
            .collect()
    }

    /// The pre-existing sequential loop, as a reference.
    fn sequential<D: Deployer>(mut d: D, jobs: &[PipelineJob]) -> (Vec<DeployOutcome>, D) {
        let outs = jobs
            .iter()
            .map(|j| match &j.forced {
                Some((instance, n_nodes)) => d
                    .deploy_manual(&j.profile, &j.workload, instance, *n_nodes)
                    .unwrap(),
                None => d.deploy(&j.profile, &j.workload).unwrap(),
            })
            .collect();
        (outs, d)
    }

    #[test]
    fn depth_zero_is_rejected() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let d = TransparentDeployer::new(provider, policy(1), 1);
        assert!(DeployPipeline::new(d, 0).is_err());
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 2);
        let d = TransparentDeployer::new(provider, policy(1), 2);
        let mut p = DeployPipeline::new(d, 4).unwrap();
        assert_eq!(p.run(&[]).unwrap(), Vec::new());
        assert_eq!(p.stats().jobs, 0);
    }

    #[test]
    fn depth_one_is_the_sequential_loop() {
        let jobs = auto_jobs(14);
        let mk = |seed| TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(1),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(31), &jobs);
        let mut p = DeployPipeline::new(mk(31), 1).unwrap();
        let outs = p.run(&jobs).unwrap();
        assert_eq!(outs, seq_outs);
        assert_eq!(p.stats().overlapped_selections, 0);
        assert_eq!(p.stats().max_in_flight, 1);
        assert_eq!(
            p.into_deployer().knowledge_base(),
            seq_d.knowledge_base()
        );
    }

    #[test]
    fn deep_pipeline_is_bit_identical_to_sequential() {
        // retrain_every = 3 opens real overlap windows in the ML phase;
        // the bootstrap overlaps throughout.
        let jobs = auto_jobs(20);
        let mk = |seed| TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(3),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(37), &jobs);
        for depth in [2usize, 4, 8] {
            let mut p = DeployPipeline::new(mk(37), depth).unwrap();
            let outs = p.run(&jobs).unwrap();
            assert_eq!(outs, seq_outs, "depth {depth} diverged");
            assert!(p.stats().max_in_flight <= depth);
            assert!(p.stats().overlapped_selections > 0, "no overlap at depth {depth}");
            assert_eq!(
                p.into_deployer().knowledge_base(),
                seq_d.knowledge_base(),
                "KB diverged at depth {depth}"
            );
        }
    }

    #[test]
    fn deep_pipeline_matches_sequential_on_sharded_backend() {
        let jobs = auto_jobs(24);
        let mk = |seed| ShardedDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(2),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(41), &jobs);
        let mut p = DeployPipeline::new(mk(41), 4).unwrap();
        let outs = p.run(&jobs).unwrap();
        assert_eq!(outs, seq_outs);
        assert_eq!(p.into_deployer().knowledge_base(), seq_d.knowledge_base());
    }

    #[test]
    fn forced_jobs_replay_manual_deploys() {
        let names = InstanceCatalog::paper_catalog().names();
        let jobs: Vec<PipelineJob> = (0..12)
            .map(|i| {
                let c = 70 + i * 23;
                PipelineJob::forced(
                    profile(c),
                    workload(c),
                    &names[i % names.len()],
                    1 + i % 3,
                )
            })
            .collect();
        let mk = |seed| TransparentDeployer::new(
            CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
            policy(1),
            seed,
        );
        let (seq_outs, seq_d) = sequential(mk(43), &jobs);
        assert!(seq_outs.iter().all(|o| o.mode == DeployMode::Manual));
        let mut p = DeployPipeline::new(mk(43), 6).unwrap();
        let outs = p.run(&jobs).unwrap();
        assert_eq!(outs, seq_outs);
        // Forced jobs never consult the predictor, so a full-depth overlap
        // is always legal.
        assert_eq!(p.stats().stalled_selections, 0);
        assert_eq!(p.stats().max_in_flight, 6);
        assert_eq!(p.into_deployer().knowledge_base(), seq_d.knowledge_base());
    }

    #[test]
    fn selection_error_lands_issued_runs_then_reports() {
        // An impossible deadline makes the first ML selection fail with
        // NoFeasibleConfiguration; every bootstrap run issued before it
        // must still land, leaving the KB exactly as the sequential loop's.
        let mk = |seed| {
            let policy = DeployPolicy::builder(1e-6)
                .epsilon(0.0)
                .max_nodes(4)
                .min_kb_samples(4)
                .n_threads(1)
                .build();
            TransparentDeployer::new(
                CloudProvider::new(InstanceCatalog::paper_catalog(), seed),
                policy,
                seed,
            )
        };
        let jobs = auto_jobs(10);
        let mut seq_d = mk(47);
        let mut seq_landed = 0;
        let seq_err = loop {
            match seq_d.deploy(&jobs[seq_landed].profile, &jobs[seq_landed].workload) {
                Ok(_) => seq_landed += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(seq_err, CoreError::NoFeasibleConfiguration { .. }));

        let mut p = DeployPipeline::new(mk(47), 3).unwrap();
        let err = p.run(&jobs).unwrap_err();
        assert!(matches!(err, CoreError::NoFeasibleConfiguration { .. }));
        assert_eq!(p.deployer().knowledge_base(), seq_d.knowledge_base());
        assert_eq!(p.deployer().kb_len(), seq_landed);
        // Stats are finalized on the error path too: non-zero occupancy
        // samples must never report a zero mean.
        let s = *p.stats();
        assert!(s.jobs > 0 && s.max_in_flight > 0);
        assert!(
            s.mean_in_flight > 0.0,
            "error path skipped mean_in_flight finalization: {s:?}"
        );
    }

    #[test]
    fn worker_panic_surfaces_as_pipeline_worker_lost() {
        // A worker that panics mid-run must neither hang run() nor
        // propagate the panic: the caught unwind sends a loss sentinel and
        // the landing loop reports the job that never delivered.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 59);
        let d = TransparentDeployer::new(provider, policy(1), 59);
        let mut p = DeployPipeline::new(d, 3)
            .unwrap()
            .with_fault(WorkerFault::Panic(4));
        let err = p.run(&auto_jobs(10)).unwrap_err();
        assert!(
            matches!(err, CoreError::PipelineWorkerLost { job: 4 }),
            "expected PipelineWorkerLost for job 4, got {err:?}"
        );
        // The stats of the aborted run are still finalized.
        let s = *p.stats();
        assert!(s.jobs == 10 && s.max_in_flight > 0 && s.mean_in_flight > 0.0);
    }

    #[test]
    fn silent_worker_death_disconnects_instead_of_hanging() {
        // A worker that exits without reporting at all (no sentinel, no
        // result) is caught by the dropped-sender disconnect: once the
        // loop has issued every job it releases its own sender, so
        // recv() errors out instead of blocking forever.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 61);
        let d = TransparentDeployer::new(provider, policy(1), 61);
        let mut p = DeployPipeline::new(d, 3)
            .unwrap()
            .with_fault(WorkerFault::Vanish(7));
        let err = p.run(&auto_jobs(8)).unwrap_err();
        assert!(
            matches!(err, CoreError::PipelineWorkerLost { job: 7 }),
            "expected PipelineWorkerLost for job 7, got {err:?}"
        );
    }

    #[test]
    fn cloud_error_path_still_finalizes_stats() {
        // A forced job on an unknown instance passes selection (manual
        // overrides are not validated against the catalog) and fails in
        // the cloud run — the early `res?` exit that used to skip stats
        // finalization.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 67);
        let d = TransparentDeployer::new(provider, policy(1), 67);
        let mut p = DeployPipeline::new(d, 3).unwrap();
        let mut jobs = auto_jobs(6);
        jobs[3] = PipelineJob::forced(profile(120), workload(120), "no-such-instance", 1);
        let err = p.run(&jobs).unwrap_err();
        assert!(matches!(err, CoreError::Cloud(_)), "got {err:?}");
        let s = *p.stats();
        assert!(s.jobs > 0 && s.max_in_flight > 0);
        assert!(
            s.mean_in_flight > 0.0,
            "cloud-error path skipped mean_in_flight finalization: {s:?}"
        );
    }

    #[test]
    fn stats_report_the_configured_shape() {
        let jobs = auto_jobs(9);
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 53);
        let d = TransparentDeployer::new(provider, policy(1), 53);
        let mut p = DeployPipeline::new(d, 3).unwrap();
        p.run(&jobs).unwrap();
        let s = *p.stats();
        assert_eq!(s.jobs, 9);
        assert!(s.max_in_flight >= 1 && s.max_in_flight <= 3);
        assert!(s.mean_in_flight >= 1.0 && s.mean_in_flight <= 3.0);
    }
}
