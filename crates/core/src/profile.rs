//! Job characteristic parameters — the paper's feature set `F`.
//!
//! "We have experimentally selected the characteristic parameters relative
//! to each EEB that induce the highest variability in the execution time of
//! the simulation, namely the number of representative contracts …, the
//! maximum time horizon of the policies, the segregated fund asset number
//! and the number of financial risk-factors" (§III). We additionally carry
//! the Monte Carlo sizes `nP`/`nQ`, which are known before the run and
//! scale execution time linearly.

use disar_engine::EebCharacteristics;
use serde::{Deserialize, Serialize};

/// The pre-run-known profile of one simulation job (`f ∈ F`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// The EEB-derived characteristic parameters.
    pub characteristics: EebCharacteristics,
    /// Outer ("natural") iterations `nP`.
    pub n_outer: usize,
    /// Inner (risk-neutral) iterations `nQ`.
    pub n_inner: usize,
}

impl JobProfile {
    /// Flattens the profile into the job half of the ML feature vector.
    pub fn to_features(&self) -> Vec<f64> {
        let mut f = Vec::new();
        self.features_into(&mut f);
        f
    }

    /// Appends the features of [`JobProfile::to_features`] onto `out` —
    /// the allocation-free variant for batched featurization.
    pub fn features_into(&self, out: &mut Vec<f64>) {
        self.characteristics.features_into(out);
        out.push(self.n_outer as f64);
        out.push(self.n_inner as f64);
    }

    /// Names matching [`JobProfile::to_features`].
    pub fn feature_names() -> Vec<String> {
        let mut names = EebCharacteristics::feature_names();
        names.push("n_outer".to_string());
        names.push("n_inner".to_string());
        names
    }

    /// Number of job features.
    pub fn n_features() -> usize {
        Self::feature_names().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: 250,
                max_horizon: 30,
                fund_assets: 40,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    #[test]
    fn features_in_declared_order() {
        let f = profile().to_features();
        assert_eq!(f, vec![250.0, 30.0, 40.0, 2.0, 1000.0, 50.0]);
        assert_eq!(f.len(), JobProfile::n_features());
    }

    #[test]
    fn names_match_feature_count() {
        assert_eq!(JobProfile::feature_names().len(), 6);
        assert_eq!(JobProfile::feature_names()[4], "n_outer");
    }
}
