//! The paper's contribution: ML-based transparent cloud deploy for
//! Solvency II computations.
//!
//! This crate implements §III of the paper end to end:
//!
//! - [`profile`]: the characteristic parameters of a job (`f ∈ F`) — the
//!   EEB features the paper "experimentally selected [as inducing] the
//!   highest variability in the execution time", plus the Monte Carlo
//!   sizes;
//! - [`knowledge`]: the knowledge base — every executed simulation's
//!   `(features, configuration, measured time, cost)` record, persisted as
//!   JSON and replayed into ML training sets. "Whenever a simulation is
//!   executed on the cloud, the total execution time is stored into the
//!   database along with the values for the above parameters";
//! - [`predictor`]: the prediction-model family
//!   `P = { p_x : M × N × F → R⁺ }` with
//!   `x ∈ {MLP, RT, RF, IBk, KStar, DT}`, retrained after every run;
//! - [`algorithm`]: **Algorithm 1** — evaluate every `p_x` on every
//!   `(m, n)` configuration, average the predictions, discard those above
//!   `T_max`, pick the cheapest, and with probability ε explore a random
//!   feasible configuration instead;
//! - [`drift`]: residual-based change detectors (Page–Hinkley, simplified
//!   ADWIN), the per-shard Incremental → Windowed → Full retrain
//!   escalation ladder, and regret-derived ensemble weighting — the
//!   adaptation loop for a non-stationary cloud, off by default;
//! - [`deploy`]: the **self-optimizing loop**: select a configuration,
//!   provision and run on the (simulated) cloud, record the realized time
//!   in the knowledge base, retrain, repeat. Supports the paper's manual
//!   override for the early training phase. Both backends sit behind the
//!   [`deploy::Deployer`] trait;
//! - [`pipeline`]: [`pipeline::DeployPipeline`] — the event-driven deploy
//!   service overlapping Algorithm 1's sweep for job *k+1* with the cloud
//!   run of job *k*, bit-identical to the sequential loop for any depth;
//! - [`tenant`]: the multi-company extension — records keyed by
//!   (instance type × tenant), a pluggable [`tenant::TransferPolicy`]
//!   deciding whose knowledge crosses company boundaries, and a
//!   tenant-aware deployer behind the same [`deploy::Deployer`] trait;
//! - [`service`]: [`service::DeployService`] — the concurrent exterior:
//!   N tenants submit jobs through bounded per-tenant handles, selections
//!   read an atomically swapped predictor snapshot, records take
//!   per-(instance × tenant) shard locks only, and a batching ingester
//!   coalesces retrains — per-tenant outcome streams bit-identical to the
//!   solo [`tenant::TenantShardedDeployer`].
//!
//! # Example
//!
//! ```no_run
//! use disar_cloudsim::{CloudProvider, InstanceCatalog};
//! use disar_core::deploy::{DeployPolicy, TransparentDeployer};
//!
//! let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
//! let policy = DeployPolicy::paper_defaults(3_600.0);
//! let mut deployer = TransparentDeployer::new(provider, policy, 42);
//! # let _ = &mut deployer;
//! ```

pub mod algorithm;
pub mod deploy;
pub mod drift;
pub mod hetero;
pub mod knowledge;
pub mod pipeline;
pub mod predictor;
pub mod profile;
pub mod service;
pub mod tenant;

mod error;

pub use algorithm::{
    select_configuration, select_configuration_with_rule,
    select_configuration_with_rule_threads, select_configuration_with_workspace,
    CandidateConfig, Selection, SelectionWorkspace, TimeEstimate,
};
pub use deploy::{
    DeployDecision, DeployMode, DeployOutcome, DeployPolicy, DeployPolicyBuilder, Deployer,
    ShardedDeployer, TransparentDeployer,
};
pub use drift::{
    regret_weights, Adwin, DetectorKind, DriftConfig, DriftDetector, DriftState, PageHinkley,
};
pub use error::CoreError;
pub use hetero::{
    select_hetero_configuration, select_hetero_configuration_threads, HeteroCandidate,
    HeteroSelection,
};
pub use knowledge::{
    KnowledgeBase, KnowledgeStore, RunRecord, SchemaVersion, ShardedKnowledgeBase,
};
pub use pipeline::{DeployPipeline, PipelineJob, PipelineStats};
pub use predictor::{GridScratch, PredictorFamily, RetrainMode, ShardedPredictor, TimePredictor};
pub use profile::JobProfile;
pub use service::{
    DeployService, PredictorSnapshot, ServiceConfig, ServiceStats, TenantHandle, TenantRun,
};
pub use tenant::{
    TenantId, TenantShardedDeployer, TenantShardedKnowledgeBase, TenantShardedPredictor,
    TenantView, TransferPolicy,
};
