//! Algorithm 1 — selection of the best-suited configuration.
//!
//! Faithful implementation of the paper's pseudocode:
//!
//! ```text
//! C = ∅
//! for n ∈ [1, max]:
//!   for m ∈ M:
//!     time ← (Σ_x p_x(m, n, f)) / |X|
//!     if time ≤ Tmax:
//!       cost ← hour_cost · time
//!       C ← C ∪ ⟨m, n, cost⟩
//! if RAND() < ε: selected ← random element of C
//! else:          selected ← argmin_cost C
//! ```
//!
//! The ε-branch "allows to enlarge the knowledge base, possibly reducing
//! the number of false positives on the expected execution time".

use crate::predictor::{GridScratch, TimePredictor};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::{InstanceCatalog, InstanceType};
use disar_math::parallel::parallel_map_mut;
use disar_math::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reusable buffers for repeated Algorithm 1 sweeps.
///
/// The grid sweep needs, per instance group, a feature matrix, the member
/// kernels' scratch, the member-major prediction block and the folded
/// per-node evaluations. A warm workspace retains all of them between
/// selections, so a steady-state deployer sweeping the same catalog
/// allocates nothing per decision (see `tests/alloc_selection.rs`).
#[derive(Debug, Default)]
pub struct SelectionWorkspace {
    /// One slot per catalog entry; each worker thread owns one slot.
    slots: Vec<GroupSlot>,
    /// The node axis `1..=max_nodes`, rebuilt in place each selection.
    nodes: Vec<usize>,
}

impl SelectionWorkspace {
    /// An empty workspace; every buffer is sized lazily on first use.
    pub fn new() -> Self {
        SelectionWorkspace::default()
    }
}

/// Per-instance-group buffers of a [`SelectionWorkspace`].
#[derive(Debug, Default)]
struct GroupSlot {
    /// Featurization + member-kernel scratch for this group's thread.
    scratch: GridScratch,
    /// Member-major `members × nodes` predictions from `predict_grid`.
    members: Vec<f64>,
    /// Per-node `(mean, filter_time)` pairs folded from `members`.
    evals: Vec<(f64, f64)>,
}

/// One feasible deploy configuration `⟨m, n, cost⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Instance-type name (`m`).
    pub instance: String,
    /// Node count (`n`).
    pub n_nodes: usize,
    /// Ensemble-averaged predicted execution time (seconds).
    pub predicted_secs: f64,
    /// Predicted cost: `hour_cost · time · n` (USD).
    pub predicted_cost: f64,
}

/// The outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen configuration.
    pub chosen: CandidateConfig,
    /// `true` when the ε-branch fired (random exploration).
    pub explored: bool,
    /// Every feasible configuration, sorted by cost ascending (diagnostic;
    /// the head is the greedy choice).
    pub feasible: Vec<CandidateConfig>,
    /// Number of `(m, n)` cells whose ensemble-mean prediction was
    /// non-positive and therefore rejected before candidate construction.
    /// A non-positive predicted time would yield `predicted_cost = 0`,
    /// which sorts first and wins the greedy argmin — a nonsense pick the
    /// paper's deadline discussion warns about. Non-zero values signal the
    /// family is extrapolating badly for this job.
    pub rejected_nonpositive: usize,
}

/// How the per-model predictions are combined into the `time` Algorithm 1
/// filters on.
///
/// The paper observes that "while an overestimation only implies a higher
/// outlay, an underestimation might violate the timing constraints which
/// are fundamental to meet the deadlines imposed by the Directive" (§IV).
/// [`TimeEstimate::Conservative`] acts on that asymmetry: it filters on
/// the *worst* (largest) family member prediction instead of the mean,
/// trading cost for deadline safety. The ablation harness quantifies the
/// trade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimeEstimate {
    /// The paper's rule: arithmetic mean of the six models.
    EnsembleMean,
    /// Deadline-safe rule: the maximum of the six models (costs are still
    /// computed from the mean, which is the better point estimate).
    Conservative,
}

/// Runs Algorithm 1 over the catalog `M` and node counts `1..=max_nodes`.
///
/// When no configuration's averaged prediction meets `t_max`, returns
/// [`CoreError::NoFeasibleConfiguration`] carrying the best predicted time
/// (so callers can e.g. relax the deadline) — the paper leaves this case to
/// the operator.
///
/// # Errors
///
/// - [`CoreError::InvalidParameter`] for a non-positive `t_max`,
///   `max_nodes == 0`, ε outside `[0, 1]`, or an empty catalog;
/// - [`CoreError::Ml`] if the family is untrained;
/// - [`CoreError::NoFeasibleConfiguration`] when the deadline is
///   unattainable.
pub fn select_configuration<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
) -> Result<Selection, CoreError> {
    select_configuration_with_rule(
        family,
        catalog,
        profile,
        t_max,
        max_nodes,
        epsilon,
        seed,
        TimeEstimate::EnsembleMean,
    )
}

/// [`select_configuration`] with an explicit deadline-filter rule.
///
/// # Errors
///
/// Same contract as [`select_configuration`].
#[allow(clippy::too_many_arguments)]
pub fn select_configuration_with_rule<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
    rule: TimeEstimate,
) -> Result<Selection, CoreError> {
    select_configuration_with_rule_threads(
        family, catalog, profile, t_max, max_nodes, epsilon, seed, rule, 1,
    )
}

/// [`select_configuration_with_rule`] with the `(m, n)` grid sweep spread
/// over up to `n_threads` worker threads.
///
/// Every cell's 6-model prediction is independent, so the sweep is a
/// deterministic parallel map: per-cell results are written by index and
/// folded in the sequential loop's order, making the outcome bit-identical
/// to `n_threads = 1` for any thread count.
///
/// # Errors
///
/// Same contract as [`select_configuration`], plus
/// [`CoreError::InvalidParameter`] for `n_threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn select_configuration_with_rule_threads<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
    rule: TimeEstimate,
    n_threads: usize,
) -> Result<Selection, CoreError> {
    let mut ws = SelectionWorkspace::new();
    select_configuration_with_workspace(
        family, catalog, profile, t_max, max_nodes, epsilon, seed, rule, n_threads, &mut ws,
    )
}

/// [`select_configuration_with_rule_threads`] over a caller-owned
/// [`SelectionWorkspace`] — the steady-state entry point for deployers that
/// select repeatedly. Bit-identical to the other entry points; the only
/// difference is that a warm workspace's buffers are reused instead of
/// reallocated.
///
/// The sweep is grouped by instance type: each worker thread takes one
/// catalog entry, featurizes its whole node column once, and runs every
/// family member's batched kernel over the column
/// ([`crate::predictor::PredictorFamily::predict_grid`]). Both the mean and
/// the Conservative maximum are folded from that single member-major block,
/// so each member is evaluated exactly once per `(m, n)` cell. Per-cell
/// results are then folded in the sequential nested loop's node-major
/// order, keeping `feasible` ordering, `best_predicted` and tie-breaks
/// bit-identical for any thread count.
///
/// # Errors
///
/// Same contract as [`select_configuration_with_rule_threads`].
#[allow(clippy::too_many_arguments)]
pub fn select_configuration_with_workspace<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
    rule: TimeEstimate,
    n_threads: usize,
    ws: &mut SelectionWorkspace,
) -> Result<Selection, CoreError> {
    if !(t_max > 0.0) {
        return Err(CoreError::InvalidParameter("t_max must be positive"));
    }
    if max_nodes == 0 {
        return Err(CoreError::InvalidParameter("max_nodes must be > 0"));
    }
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(CoreError::InvalidParameter("epsilon must be in [0, 1]"));
    }
    if catalog.is_empty() {
        return Err(CoreError::InvalidParameter("catalog is empty"));
    }
    if n_threads == 0 {
        return Err(CoreError::InvalidParameter("n_threads must be > 0"));
    }

    let insts: Vec<&InstanceType> = catalog.iter().collect();
    let SelectionWorkspace { slots, nodes } = ws;
    nodes.clear();
    nodes.extend(1..=max_nodes);
    if slots.len() < insts.len() {
        slots.resize_with(insts.len(), GroupSlot::default);
    }

    // One group per instance type: featurize the node column once, run each
    // member's batched kernel over it, and fold the member-major block into
    // per-node `(mean, filter_time)` pairs. The mean is summed in member
    // order and the Conservative max folded from `NEG_INFINITY` in member
    // order — term for term the expressions of the per-cell
    // `predict_each` path, so the results are bit-identical to it.
    let results: Vec<Result<(), CoreError>> =
        parallel_map_mut(&mut slots[..insts.len()], n_threads, |g, slot| {
            let members =
                family.predict_grid(profile, insts[g], nodes, &mut slot.members, &mut slot.scratch)?;
            slot.evals.clear();
            for i in 0..nodes.len() {
                let mut sum = 0.0;
                let mut worst = f64::NEG_INFINITY;
                for m in 0..members {
                    let t = slot.members[m * nodes.len() + i];
                    sum += t;
                    worst = worst.max(t.max(0.0));
                }
                let time = (sum / members as f64).max(0.0);
                let filter_time = match rule {
                    TimeEstimate::EnsembleMean => time,
                    TimeEstimate::Conservative => worst,
                };
                slot.evals.push((time, filter_time));
            }
            Ok(())
        });
    for r in results {
        r?;
    }

    // Fold in the sequential nested loop's node-major order.
    let mut feasible: Vec<CandidateConfig> = Vec::new();
    let mut best_predicted = f64::INFINITY;
    let mut rejected_nonpositive = 0usize;
    for (i, n) in nodes.iter().copied().enumerate() {
        for (g, inst) in insts.iter().enumerate() {
            let (time, filter_time) = slots[g].evals[i];
            best_predicted = best_predicted.min(filter_time);
            // A non-positive mean prediction is a model artefact, not a
            // 0-second job: it would produce `predicted_cost = 0` and steal
            // the greedy argmin, so the cell is rejected outright.
            if time <= 0.0 {
                rejected_nonpositive += 1;
                continue;
            }
            if filter_time <= t_max {
                feasible.push(CandidateConfig {
                    instance: inst.name.clone(),
                    n_nodes: n,
                    predicted_secs: time,
                    predicted_cost: inst.hourly_cost * (time / 3600.0) * n as f64,
                });
            }
        }
    }
    if feasible.is_empty() {
        return Err(CoreError::NoFeasibleConfiguration {
            t_max,
            best_predicted,
        });
    }
    feasible.sort_by(|a, b| {
        a.predicted_cost
            .partial_cmp(&b.predicted_cost)
            .expect("finite costs")
            .then_with(|| a.instance.cmp(&b.instance))
            .then_with(|| a.n_nodes.cmp(&b.n_nodes))
    });

    let mut rng = stream_rng(seed, 0xA160);
    let explored = rng.gen_range(0.0..1.0) < epsilon;
    let chosen = if explored {
        feasible[rng.gen_range(0..feasible.len())].clone()
    } else {
        feasible[0].clone()
    };
    Ok(Selection {
        chosen,
        explored,
        feasible,
        rejected_nonpositive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{KnowledgeBase, RunRecord};
    use crate::predictor::{PredictorFamily, RetrainMode};
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    /// A family trained on a synthetic law: time = K / (power · nodes).
    fn trained_family() -> (PredictorFamily, InstanceCatalog) {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..400 {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).unwrap();
        (fam, cat)
    }

    #[test]
    fn greedy_picks_cheapest_feasible() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.0, 1).unwrap();
        assert!(!sel.explored);
        assert_eq!(sel.chosen, sel.feasible[0]);
        // Sorted by cost.
        for w in sel.feasible.windows(2) {
            assert!(w[0].predicted_cost <= w[1].predicted_cost + 1e-12);
        }
    }

    #[test]
    fn tight_deadline_shrinks_feasible_set() {
        let (fam, cat) = trained_family();
        let loose = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.0, 1).unwrap();
        let tight = select_configuration(&fam, &cat, &profile(200), 700.0, 6, 0.0, 1).unwrap();
        assert!(tight.feasible.len() < loose.feasible.len());
        for c in &tight.feasible {
            assert!(c.predicted_secs <= 700.0);
        }
    }

    #[test]
    fn impossible_deadline_reports_best() {
        let (fam, cat) = trained_family();
        let err = select_configuration(&fam, &cat, &profile(400), 1e-3, 6, 0.0, 1).unwrap_err();
        match err {
            CoreError::NoFeasibleConfiguration { t_max, best_predicted } => {
                assert_eq!(t_max, 1e-3);
                assert!(best_predicted > 1e-3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn epsilon_one_always_explores() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 1.0, 3).unwrap();
        assert!(sel.explored);
        // Exploration picks a feasible config, not an arbitrary one.
        assert!(sel.feasible.contains(&sel.chosen));
    }

    #[test]
    fn epsilon_exploration_depends_on_seed_not_luck() {
        let (fam, cat) = trained_family();
        // With ε = 0.5, some seeds explore, some don't; both must be
        // deterministic per seed.
        let a1 = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, 7).unwrap();
        let a2 = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, 7).unwrap();
        assert_eq!(a1, a2);
        let outcomes: Vec<bool> = (0..40)
            .map(|s| {
                select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, s)
                    .unwrap()
                    .explored
            })
            .collect();
        assert!(outcomes.iter().any(|&e| e));
        assert!(outcomes.iter().any(|&e| !e));
    }

    #[test]
    fn cost_formula_matches_paper() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 4, 0.0, 1).unwrap();
        for c in &sel.feasible {
            let inst = cat.get(&c.instance).unwrap();
            let expect = inst.hourly_cost * (c.predicted_secs / 3600.0) * c.n_nodes as f64;
            assert!((c.predicted_cost - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn less_powerful_but_cheaper_instance_can_win() {
        // The paper stresses that "less powerful virtualized architectures
        // could be selected in place of more powerful ones, provided that
        // they allow to meet the time constraints". With a loose deadline
        // the cheapest-per-work instance must win over the biggest one.
        let (fam, cat) = trained_family();
        let sel =
            select_configuration(&fam, &cat, &profile(100), 100_000.0, 6, 0.0, 1).unwrap();
        assert_ne!(
            sel.chosen.instance, "m4.10xlarge",
            "the premium instance should not win on cost: {:?}",
            sel.chosen
        );
    }

    #[test]
    fn conservative_rule_is_a_subset_of_mean_rule() {
        // Filtering on the max of the six predictions can only shrink the
        // feasible set relative to filtering on their mean.
        let (fam, cat) = trained_family();
        let p = profile(250);
        let t_max = 900.0;
        let mean_sel =
            select_configuration(&fam, &cat, &p, t_max, 6, 0.0, 1).unwrap();
        let cons_sel = select_configuration_with_rule(
            &fam,
            &cat,
            &p,
            t_max,
            6,
            0.0,
            1,
            TimeEstimate::Conservative,
        )
        .unwrap();
        assert!(cons_sel.feasible.len() <= mean_sel.feasible.len());
        // Every conservative candidate is also mean-feasible.
        for c in &cons_sel.feasible {
            assert!(mean_sel
                .feasible
                .iter()
                .any(|m| m.instance == c.instance && m.n_nodes == c.n_nodes));
        }
    }

    #[test]
    fn mean_rule_equals_default_entry_point() {
        let (fam, cat) = trained_family();
        let p = profile(150);
        let a = select_configuration(&fam, &cat, &p, 5_000.0, 4, 0.0, 3).unwrap();
        let b = select_configuration_with_rule(
            &fam,
            &cat,
            &p,
            5_000.0,
            4,
            0.0,
            3,
            TimeEstimate::EnsembleMean,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let (fam, cat) = trained_family();
        let p = profile(100);
        assert!(select_configuration(&fam, &cat, &p, 0.0, 4, 0.0, 1).is_err());
        assert!(select_configuration(&fam, &cat, &p, 100.0, 0, 0.0, 1).is_err());
        assert!(select_configuration(&fam, &cat, &p, 100.0, 4, 1.5, 1).is_err());
        let empty = InstanceCatalog::new();
        assert!(select_configuration(&fam, &empty, &p, 100.0, 4, 0.0, 1).is_err());
        assert!(select_configuration_with_rule_threads(
            &fam,
            &cat,
            &p,
            100.0,
            4,
            0.0,
            1,
            TimeEstimate::EnsembleMean,
            0,
        )
        .is_err());
    }

    /// A family trained on `time = base − slope · (nodes − 1)`: positive at
    /// low node counts, increasingly negative beyond — the regime where the
    /// clamped ensemble mean collapses to exactly `0.0`.
    fn decreasing_target_family() -> (PredictorFamily, InstanceCatalog) {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..400 {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time = 500.0 - 400.0 * (nodes as f64 - 1.0);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).unwrap();
        (fam, cat)
    }

    #[test]
    fn all_negative_predictions_are_rejected() {
        // Every training target is negative, so every cell's clamped
        // ensemble mean is 0.0. Before the non-positive guard, all cells
        // were "feasible" at predicted_cost = 0 and the argmin returned a
        // nonsense free configuration; now the sweep must report that no
        // usable configuration exists.
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..400 {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time = -(100.0 + contracts as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).unwrap();
        let err = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.0, 1)
            .unwrap_err();
        assert!(
            matches!(err, CoreError::NoFeasibleConfiguration { .. }),
            "expected NoFeasibleConfiguration, got {err}"
        );
    }

    #[test]
    fn zero_cost_candidates_never_win() {
        // Mixed regime: low node counts predict positive times, high node
        // counts collapse to the 0.0 clamp. The zero-cost cells must be
        // counted in the diagnostics and excluded from the feasible set —
        // previously one of them won the greedy argmin at cost 0.
        let (fam, cat) = decreasing_target_family();
        let sel =
            select_configuration(&fam, &cat, &profile(200), 100_000.0, 6, 0.0, 1).unwrap();
        assert!(
            sel.rejected_nonpositive > 0,
            "high-node cells should hit the clamp: {sel:?}"
        );
        for c in &sel.feasible {
            assert!(c.predicted_secs > 0.0, "non-positive time survived: {c:?}");
            assert!(c.predicted_cost > 0.0, "zero-cost candidate survived: {c:?}");
        }
        assert!(sel.chosen.predicted_cost > 0.0);
    }

    /// A stub predictor whose `predict_each` counts member evaluations —
    /// every call evaluates all `members` stub models once.
    struct CountingPredictor {
        members: usize,
        member_evals: std::sync::atomic::AtomicUsize,
    }

    impl TimePredictor for CountingPredictor {
        fn predict_each(
            &self,
            _profile: &JobProfile,
            instance: &InstanceType,
            n_nodes: usize,
        ) -> Result<Vec<(&'static str, f64)>, CoreError> {
            const NAMES: [&str; 8] = ["M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7"];
            self.member_evals
                .fetch_add(self.members, std::sync::atomic::Ordering::Relaxed);
            Ok((0..self.members)
                .map(|m| {
                    let t = 100.0 + m as f64 + n_nodes as f64 * instance.vcpus as f64;
                    (NAMES[m], t)
                })
                .collect())
        }
    }

    #[test]
    fn each_member_is_evaluated_exactly_once_per_cell() {
        // Regression: the Conservative rule used to run `predict_mean`
        // *and* a second full `predict_each` per cell — a 2× member-eval
        // bug. Both rules must now evaluate each member exactly once per
        // grid cell.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cat = InstanceCatalog::paper_catalog();
        let max_nodes = 4;
        let cells = max_nodes * cat.iter().count();
        let stub = CountingPredictor {
            members: 6,
            member_evals: AtomicUsize::new(0),
        };
        for rule in [TimeEstimate::EnsembleMean, TimeEstimate::Conservative] {
            stub.member_evals.store(0, Ordering::Relaxed);
            select_configuration_with_rule_threads(
                &stub,
                &cat,
                &profile(100),
                1e9,
                max_nodes,
                0.0,
                1,
                rule,
                1,
            )
            .unwrap();
            assert_eq!(
                stub.member_evals.load(Ordering::Relaxed),
                cells * stub.members,
                "rule {rule:?} must evaluate each member exactly once per cell"
            );
        }
    }

    #[test]
    fn threaded_sweep_is_bit_identical_to_sequential() {
        let (fam, cat) = trained_family();
        let p = profile(200);
        let seq = select_configuration_with_rule_threads(
            &fam,
            &cat,
            &p,
            10_000.0,
            6,
            0.3,
            9,
            TimeEstimate::EnsembleMean,
            1,
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let par = select_configuration_with_rule_threads(
                &fam,
                &cat,
                &p,
                10_000.0,
                6,
                0.3,
                9,
                TimeEstimate::EnsembleMean,
                threads,
            )
            .unwrap();
            assert_eq!(seq, par, "divergence at n_threads = {threads}");
        }
    }
}
