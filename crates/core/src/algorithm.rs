//! Algorithm 1 — selection of the best-suited configuration.
//!
//! Faithful implementation of the paper's pseudocode:
//!
//! ```text
//! C = ∅
//! for n ∈ [1, max]:
//!   for m ∈ M:
//!     time ← (Σ_x p_x(m, n, f)) / |X|
//!     if time ≤ Tmax:
//!       cost ← hour_cost · time
//!       C ← C ∪ ⟨m, n, cost⟩
//! if RAND() < ε: selected ← random element of C
//! else:          selected ← argmin_cost C
//! ```
//!
//! The ε-branch "allows to enlarge the knowledge base, possibly reducing
//! the number of false positives on the expected execution time".

use crate::predictor::PredictorFamily;
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::InstanceCatalog;
use disar_math::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One feasible deploy configuration `⟨m, n, cost⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Instance-type name (`m`).
    pub instance: String,
    /// Node count (`n`).
    pub n_nodes: usize,
    /// Ensemble-averaged predicted execution time (seconds).
    pub predicted_secs: f64,
    /// Predicted cost: `hour_cost · time · n` (USD).
    pub predicted_cost: f64,
}

/// The outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen configuration.
    pub chosen: CandidateConfig,
    /// `true` when the ε-branch fired (random exploration).
    pub explored: bool,
    /// Every feasible configuration, sorted by cost ascending (diagnostic;
    /// the head is the greedy choice).
    pub feasible: Vec<CandidateConfig>,
}

/// How the per-model predictions are combined into the `time` Algorithm 1
/// filters on.
///
/// The paper observes that "while an overestimation only implies a higher
/// outlay, an underestimation might violate the timing constraints which
/// are fundamental to meet the deadlines imposed by the Directive" (§IV).
/// [`TimeEstimate::Conservative`] acts on that asymmetry: it filters on
/// the *worst* (largest) family member prediction instead of the mean,
/// trading cost for deadline safety. The ablation harness quantifies the
/// trade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimeEstimate {
    /// The paper's rule: arithmetic mean of the six models.
    EnsembleMean,
    /// Deadline-safe rule: the maximum of the six models (costs are still
    /// computed from the mean, which is the better point estimate).
    Conservative,
}

/// Runs Algorithm 1 over the catalog `M` and node counts `1..=max_nodes`.
///
/// When no configuration's averaged prediction meets `t_max`, returns
/// [`CoreError::NoFeasibleConfiguration`] carrying the best predicted time
/// (so callers can e.g. relax the deadline) — the paper leaves this case to
/// the operator.
///
/// # Errors
///
/// - [`CoreError::InvalidParameter`] for a non-positive `t_max`,
///   `max_nodes == 0`, ε outside `[0, 1]`, or an empty catalog;
/// - [`CoreError::Ml`] if the family is untrained;
/// - [`CoreError::NoFeasibleConfiguration`] when the deadline is
///   unattainable.
pub fn select_configuration(
    family: &PredictorFamily,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
) -> Result<Selection, CoreError> {
    select_configuration_with_rule(
        family,
        catalog,
        profile,
        t_max,
        max_nodes,
        epsilon,
        seed,
        TimeEstimate::EnsembleMean,
    )
}

/// [`select_configuration`] with an explicit deadline-filter rule.
///
/// # Errors
///
/// Same contract as [`select_configuration`].
#[allow(clippy::too_many_arguments)]
pub fn select_configuration_with_rule(
    family: &PredictorFamily,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
    rule: TimeEstimate,
) -> Result<Selection, CoreError> {
    if !(t_max > 0.0) {
        return Err(CoreError::InvalidParameter("t_max must be positive"));
    }
    if max_nodes == 0 {
        return Err(CoreError::InvalidParameter("max_nodes must be > 0"));
    }
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(CoreError::InvalidParameter("epsilon must be in [0, 1]"));
    }
    if catalog.is_empty() {
        return Err(CoreError::InvalidParameter("catalog is empty"));
    }

    let mut feasible: Vec<CandidateConfig> = Vec::new();
    let mut best_predicted = f64::INFINITY;
    for n in 1..=max_nodes {
        for inst in catalog.iter() {
            let time = family.predict_mean(profile, inst, n)?;
            let filter_time = match rule {
                TimeEstimate::EnsembleMean => time,
                TimeEstimate::Conservative => family
                    .predict_each(profile, inst, n)?
                    .into_iter()
                    .map(|(_, t)| t)
                    .fold(0.0_f64, f64::max),
            };
            best_predicted = best_predicted.min(filter_time);
            if filter_time <= t_max {
                feasible.push(CandidateConfig {
                    instance: inst.name.clone(),
                    n_nodes: n,
                    predicted_secs: time,
                    predicted_cost: inst.hourly_cost * (time / 3600.0) * n as f64,
                });
            }
        }
    }
    if feasible.is_empty() {
        return Err(CoreError::NoFeasibleConfiguration {
            t_max,
            best_predicted,
        });
    }
    feasible.sort_by(|a, b| {
        a.predicted_cost
            .partial_cmp(&b.predicted_cost)
            .expect("finite costs")
            .then_with(|| a.instance.cmp(&b.instance))
            .then_with(|| a.n_nodes.cmp(&b.n_nodes))
    });

    let mut rng = stream_rng(seed, 0xA160);
    let explored = rng.gen_range(0.0..1.0) < epsilon;
    let chosen = if explored {
        feasible[rng.gen_range(0..feasible.len())].clone()
    } else {
        feasible[0].clone()
    };
    Ok(Selection {
        chosen,
        explored,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{KnowledgeBase, RunRecord};
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    /// A family trained on a synthetic law: time = K / (power · nodes).
    fn trained_family() -> (PredictorFamily, InstanceCatalog) {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..400 {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb).unwrap();
        (fam, cat)
    }

    #[test]
    fn greedy_picks_cheapest_feasible() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.0, 1).unwrap();
        assert!(!sel.explored);
        assert_eq!(sel.chosen, sel.feasible[0]);
        // Sorted by cost.
        for w in sel.feasible.windows(2) {
            assert!(w[0].predicted_cost <= w[1].predicted_cost + 1e-12);
        }
    }

    #[test]
    fn tight_deadline_shrinks_feasible_set() {
        let (fam, cat) = trained_family();
        let loose = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.0, 1).unwrap();
        let tight = select_configuration(&fam, &cat, &profile(200), 700.0, 6, 0.0, 1).unwrap();
        assert!(tight.feasible.len() < loose.feasible.len());
        for c in &tight.feasible {
            assert!(c.predicted_secs <= 700.0);
        }
    }

    #[test]
    fn impossible_deadline_reports_best() {
        let (fam, cat) = trained_family();
        let err = select_configuration(&fam, &cat, &profile(400), 1e-3, 6, 0.0, 1).unwrap_err();
        match err {
            CoreError::NoFeasibleConfiguration { t_max, best_predicted } => {
                assert_eq!(t_max, 1e-3);
                assert!(best_predicted > 1e-3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn epsilon_one_always_explores() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 1.0, 3).unwrap();
        assert!(sel.explored);
        // Exploration picks a feasible config, not an arbitrary one.
        assert!(sel.feasible.contains(&sel.chosen));
    }

    #[test]
    fn epsilon_exploration_depends_on_seed_not_luck() {
        let (fam, cat) = trained_family();
        // With ε = 0.5, some seeds explore, some don't; both must be
        // deterministic per seed.
        let a1 = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, 7).unwrap();
        let a2 = select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, 7).unwrap();
        assert_eq!(a1, a2);
        let outcomes: Vec<bool> = (0..40)
            .map(|s| {
                select_configuration(&fam, &cat, &profile(200), 10_000.0, 6, 0.5, s)
                    .unwrap()
                    .explored
            })
            .collect();
        assert!(outcomes.iter().any(|&e| e));
        assert!(outcomes.iter().any(|&e| !e));
    }

    #[test]
    fn cost_formula_matches_paper() {
        let (fam, cat) = trained_family();
        let sel = select_configuration(&fam, &cat, &profile(200), 10_000.0, 4, 0.0, 1).unwrap();
        for c in &sel.feasible {
            let inst = cat.get(&c.instance).unwrap();
            let expect = inst.hourly_cost * (c.predicted_secs / 3600.0) * c.n_nodes as f64;
            assert!((c.predicted_cost - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn less_powerful_but_cheaper_instance_can_win() {
        // The paper stresses that "less powerful virtualized architectures
        // could be selected in place of more powerful ones, provided that
        // they allow to meet the time constraints". With a loose deadline
        // the cheapest-per-work instance must win over the biggest one.
        let (fam, cat) = trained_family();
        let sel =
            select_configuration(&fam, &cat, &profile(100), 100_000.0, 6, 0.0, 1).unwrap();
        assert_ne!(
            sel.chosen.instance, "m4.10xlarge",
            "the premium instance should not win on cost: {:?}",
            sel.chosen
        );
    }

    #[test]
    fn conservative_rule_is_a_subset_of_mean_rule() {
        // Filtering on the max of the six predictions can only shrink the
        // feasible set relative to filtering on their mean.
        let (fam, cat) = trained_family();
        let p = profile(250);
        let t_max = 900.0;
        let mean_sel =
            select_configuration(&fam, &cat, &p, t_max, 6, 0.0, 1).unwrap();
        let cons_sel = select_configuration_with_rule(
            &fam,
            &cat,
            &p,
            t_max,
            6,
            0.0,
            1,
            TimeEstimate::Conservative,
        )
        .unwrap();
        assert!(cons_sel.feasible.len() <= mean_sel.feasible.len());
        // Every conservative candidate is also mean-feasible.
        for c in &cons_sel.feasible {
            assert!(mean_sel
                .feasible
                .iter()
                .any(|m| m.instance == c.instance && m.n_nodes == c.n_nodes));
        }
    }

    #[test]
    fn mean_rule_equals_default_entry_point() {
        let (fam, cat) = trained_family();
        let p = profile(150);
        let a = select_configuration(&fam, &cat, &p, 5_000.0, 4, 0.0, 3).unwrap();
        let b = select_configuration_with_rule(
            &fam,
            &cat,
            &p,
            5_000.0,
            4,
            0.0,
            3,
            TimeEstimate::EnsembleMean,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let (fam, cat) = trained_family();
        let p = profile(100);
        assert!(select_configuration(&fam, &cat, &p, 0.0, 4, 0.0, 1).is_err());
        assert!(select_configuration(&fam, &cat, &p, 100.0, 0, 0.0, 1).is_err());
        assert!(select_configuration(&fam, &cat, &p, 100.0, 4, 1.5, 1).is_err());
        let empty = InstanceCatalog::new();
        assert!(select_configuration(&fam, &empty, &p, 100.0, 4, 0.0, 1).is_err());
    }
}
