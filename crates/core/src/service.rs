//! The concurrent multi-tenant deploy service.
//!
//! [`crate::pipeline::DeployPipeline`] overlaps one tenant's selections
//! with its own cloud runs; [`DeployService`] is the concurrent exterior
//! around the same bit-identity machinery, serving N companies at once
//! over one shared knowledge base:
//!
//! - **per-tenant handles** — every registered tenant submits
//!   [`PipelineJob`]s through its own bounded queue ([`TenantHandle`]);
//!   a full queue surfaces [`CoreError::Backpressure`] instead of
//!   growing without bound;
//! - **lock-free prediction reads** — selections read an atomically
//!   swapped, read-mostly [`PredictorSnapshot`] (an `arc-swap`-style
//!   double buffer rebuilt off the hot path after retrains). In steady
//!   state a reader costs one atomic generation load; it never blocks on
//!   a writer;
//! - **shard-local writes** — `record()` appends under the one
//!   per-(instance × tenant) shard lock that owns the record; no global
//!   lock exists;
//! - **batching ingester** — landed records stream to a single ingester
//!   thread that coalesces them and triggers at most one incremental
//!   retrain per dirty shard per batch, then publishes a fresh snapshot.
//!
//! # Bit-identity
//!
//! Under [`TransferPolicy::Isolated`] (the only policy the service
//! accepts — pooled families would make predictions depend on the
//! nondeterministic cross-tenant arrival interleaving) a tenant's
//! knowledge never crosses its own boundary, so each tenant's outcome
//! stream is **bit-identical to that tenant running alone** through
//! [`crate::tenant::TenantShardedDeployer`]: same per-tenant provider
//! seed, same
//! decision-counter seed stream, same retrain gates. Two rules keep the
//! asynchronous retrains on the solo schedule:
//!
//! 1. **flush-before-append** — a shard with a fired-but-unpublished
//!    retrain must not grow: the ingester retrains on the shard exactly
//!    as the solo loop saw it at the gate;
//! 2. **watermark stall** — an ML selection waits until every retrain
//!    its tenant has fired is published, mirroring the synchronous
//!    retrain the solo `record()` performs before the next selection.
//!
//! Bootstrap and manual selections consult neither families nor
//! snapshot, so they never wait.

use crate::deploy::{
    relative_residual, DeployDecision, DeployMode, DeployOutcome, DeployPolicy, Deployer,
    DeployerCore,
};
use crate::drift::DriftState;
use crate::knowledge::KnowledgeBase;
use crate::knowledge::RunRecord;
use crate::pipeline::{DeployPipeline, PipelineJob, PipelineStats};
use crate::predictor::{GridScratch, PredictorFamily, RetrainMode, TimePredictor};
use crate::profile::JobProfile;
use crate::tenant::{TenantId, TenantShardedKnowledgeBase, TransferPolicy};
use crate::CoreError;
use disar_cloudsim::{CloudProvider, InstanceCatalog, InstanceType, JobReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// The family minimum-sample floor the tenant layer pins (see
/// [`crate::tenant::TenantShardedPredictor::new`], which clamps
/// `min_samples` to at least 2). The service replicates the solo gates,
/// so it pins the same constant.
const FAMILY_MIN_SAMPLES: usize = 2;

/// Sizing knobs of a [`DeployService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Per-tenant pipeline depth (in-flight runs; `1` = sequential).
    pub depth: usize,
    /// Per-tenant submission-queue bound; a full queue rejects with
    /// [`CoreError::Backpressure`].
    pub queue_capacity: usize,
    /// Most landed-record messages the ingester coalesces into one batch.
    pub batch_max: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            depth: 4,
            queue_capacity: 64,
            batch_max: 32,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.depth == 0 {
            return Err(CoreError::InvalidParameter("service depth must be > 0"));
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidParameter(
                "service queue_capacity must be > 0",
            ));
        }
        if self.batch_max == 0 {
            return Err(CoreError::InvalidParameter("service batch_max must be > 0"));
        }
        Ok(())
    }
}

/// [`PipelineStats`] plus the service's admission, queue-depth and
/// backpressure counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Pipeline occupancy/overlap counters, aggregated over every tenant
    /// that has finished (jobs and overlap counts sum; `max_in_flight` is
    /// the max; `mean_in_flight` is the job-weighted mean).
    pub pipeline: PipelineStats,
    /// Registered tenants.
    pub tenants: usize,
    /// Jobs offered to `submit` (admitted + rejected).
    pub submitted: usize,
    /// Jobs accepted into a queue.
    pub admitted: usize,
    /// Jobs rejected with [`CoreError::Backpressure`].
    pub rejected: usize,
    /// Largest queue depth observed across all tenants.
    pub max_queue_depth: usize,
    /// Ingester batches processed (coalescing windows).
    pub ingest_batches: usize,
    /// Incremental shard retrains performed by the ingester.
    pub retrains: usize,
    /// Generation of the current predictor snapshot (0 = never published).
    pub snapshot_generation: u64,
}

/// One tenant's results after [`TenantHandle::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRun {
    /// The tenant the run belongs to.
    pub tenant: TenantId,
    /// Per-job outcomes in submission order.
    pub outcomes: Vec<DeployOutcome>,
    /// This tenant's aggregated pipeline counters.
    pub stats: PipelineStats,
}

/// An immutable, atomically swapped view of every tenant's trained
/// predictor families, plus the publish watermarks the bit-identity
/// stalls wait on.
#[derive(Clone, Default)]
pub struct PredictorSnapshot {
    generation: u64,
    families: BTreeMap<(String, TenantId), Arc<PredictorFamily>>,
    /// Published retrain-fire count per tenant (selection watermark).
    fires_by_tenant: BTreeMap<TenantId, u64>,
    /// Published retrain-fire count per (instance, tenant) shard
    /// (flush-before-append watermark).
    fires_by_shard: BTreeMap<(String, TenantId), u64>,
}

impl PredictorSnapshot {
    /// Monotone publish counter: 0 before the first retrain, +1 per
    /// published batch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The published family of one (instance, tenant), if any.
    pub fn family(&self, instance: &str, tenant: &TenantId) -> Option<&PredictorFamily> {
        self.families
            .get(&(instance.to_string(), tenant.clone()))
            .map(Arc::as_ref)
    }

    /// Number of published families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Iterates the published families with their (instance, tenant) keys.
    pub fn families(&self) -> impl Iterator<Item = (&(String, TenantId), &PredictorFamily)> {
        self.families.iter().map(|(k, f)| (k, f.as_ref()))
    }

    /// Published retrain fires of one tenant.
    pub fn fires_for_tenant(&self, tenant: &TenantId) -> u64 {
        self.fires_by_tenant.get(tenant).copied().unwrap_or(0)
    }

    fn fires_for_shard(&self, key: &(String, TenantId)) -> u64 {
        self.fires_by_shard.get(key).copied().unwrap_or(0)
    }
}

/// The swap point: writers publish a whole new [`PredictorSnapshot`];
/// readers take the read lock only for the pointer clone (and, via the
/// generation fast path, usually not even that). The condvar wakes
/// watermark waiters after each publish.
struct SnapshotCell {
    generation: AtomicU64,
    current: RwLock<Arc<PredictorSnapshot>>,
    /// `true` once the ingester is gone — waiters must error, not spin.
    gate: Mutex<bool>,
    cond: Condvar,
}

impl SnapshotCell {
    fn new() -> Self {
        SnapshotCell {
            generation: AtomicU64::new(0),
            current: RwLock::new(Arc::new(PredictorSnapshot::default())),
            gate: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn load(&self) -> Arc<PredictorSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Swaps in `next` and wakes every watermark waiter.
    fn publish(&self, next: PredictorSnapshot) {
        let generation = next.generation;
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(next);
        self.generation.store(generation, Ordering::Release);
        let _guard = self.gate.lock().expect("snapshot gate poisoned");
        self.cond.notify_all();
    }

    /// Marks the ingester gone (normal shutdown or failure) and wakes
    /// every waiter so they can error out instead of spinning.
    fn close(&self) {
        *self.gate.lock().expect("snapshot gate poisoned") = true;
        self.cond.notify_all();
    }

    /// Blocks until the current snapshot satisfies `pred`, rechecking on
    /// every publish.
    ///
    /// # Errors
    ///
    /// [`CoreError::ServiceStopped`] if the cell closes first.
    fn wait_for<F: Fn(&PredictorSnapshot) -> bool>(
        &self,
        pred: F,
    ) -> Result<Arc<PredictorSnapshot>, CoreError> {
        loop {
            let snap = self.load();
            if pred(&snap) {
                return Ok(snap);
            }
            let closed = self.gate.lock().expect("snapshot gate poisoned");
            // Re-check under the gate: publish() takes the gate after the
            // swap, so a satisfied predicate cannot slip between this
            // check and the wait below.
            let snap = self.load();
            if pred(&snap) {
                return Ok(snap);
            }
            if *closed {
                return Err(CoreError::ServiceStopped("predictor ingester stopped"));
            }
            // The timeout is belt-and-braces only: every publish and the
            // close path notify under the gate.
            let _ = self
                .cond
                .wait_timeout(closed, Duration::from_millis(50))
                .expect("snapshot gate poisoned");
        }
    }
}

/// A worker-local cache over [`SnapshotCell`]: in steady state (no new
/// publish) a read is one atomic load and no lock at all.
struct SnapshotReader {
    cached: Arc<PredictorSnapshot>,
}

impl SnapshotReader {
    fn new(cell: &SnapshotCell) -> Self {
        SnapshotReader { cached: cell.load() }
    }

    fn current(&mut self, cell: &SnapshotCell) -> &Arc<PredictorSnapshot> {
        if cell.generation.load(Ordering::Acquire) != self.cached.generation {
            self.cached = cell.load();
        }
        &self.cached
    }

    fn wait_for<F: Fn(&PredictorSnapshot) -> bool>(
        &mut self,
        cell: &SnapshotCell,
        pred: F,
    ) -> Result<&Arc<PredictorSnapshot>, CoreError> {
        if !pred(self.current(cell)) {
            self.cached = cell.wait_for(pred)?;
        }
        Ok(&self.cached)
    }
}

/// What one tenant sees of a [`PredictorSnapshot`] — the service-side
/// mirror of [`crate::tenant::TenantView`] under
/// [`TransferPolicy::Isolated`]: queries route to the tenant's own local
/// family per instance type.
struct SnapshotTenantView<'a> {
    snapshot: &'a PredictorSnapshot,
    tenant: &'a TenantId,
}

impl TimePredictor for SnapshotTenantView<'_> {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        match self.snapshot.family(&instance.name, self.tenant) {
            Some(f) if f.is_trained() => f.predict_each(profile, instance, n_nodes),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }

    fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        match self.snapshot.family(&instance.name, self.tenant) {
            Some(f) if f.is_trained() => f.predict_grid(profile, instance, nodes, out, scratch),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }
}

/// A landed-record notification to the ingester.
struct LandedMsg {
    instance: String,
    tenant: TenantId,
    /// Whether this landing fired the tenant's retrain gate.
    fired: bool,
    /// The retrain mode the recording side's escalation ladder selected
    /// at fire time (meaningful only when `fired`; the base policy mode
    /// otherwise). Carried in the message so the batching ingester needs
    /// no drift state of its own.
    mode: RetrainMode,
}

/// Everything the worker, ingester and handle threads share.
struct ServiceShared {
    policy: DeployPolicy,
    /// The two-key shard map; the outer lock guards only map growth —
    /// steady-state `record()` takes a read lock plus the one shard lock.
    shards: RwLock<BTreeMap<(String, TenantId), Arc<Mutex<KnowledgeBase>>>>,
    /// Per-tenant family seeds (fixed at registration).
    seeds: Mutex<BTreeMap<TenantId, u64>>,
    snapshot: SnapshotCell,
    // Admission / queue counters (ServiceStats).
    submitted: AtomicUsize,
    admitted: AtomicUsize,
    rejected: AtomicUsize,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    ingest_batches: AtomicUsize,
    retrains: AtomicUsize,
    /// Pipeline counters merged in as tenants finish.
    pipeline: Mutex<PipelineStats>,
}

impl ServiceShared {
    fn shard_handle(&self, instance: &str, tenant: &TenantId) -> Arc<Mutex<KnowledgeBase>> {
        let key = (instance.to_string(), tenant.clone());
        {
            let map = self.shards.read().expect("shard map poisoned");
            if let Some(shard) = map.get(&key) {
                return Arc::clone(shard);
            }
        }
        let mut map = self.shards.write().expect("shard map poisoned");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(KnowledgeBase::new()))),
        )
    }

    fn seed_of(&self, tenant: &TenantId) -> u64 {
        *self
            .seeds
            .lock()
            .expect("seed map poisoned")
            .get(tenant)
            .expect("tenant registered before use")
    }
}

/// Exact replica of the solo Isolated retrain gates, tracked per tenant
/// from counts alone (the same observation the solo `simulate_pending`
/// rests on: the gates only count).
struct IsolatedGates {
    /// Records this tenant has landed (the solo run's `kb.len()`).
    len: usize,
    /// Per-instance local record counts (the solo `local_lens`).
    local_lens: BTreeMap<String, usize>,
    /// Instances whose local family has had at least one fired retrain —
    /// fired implies trained (the gate requires `min_samples`).
    trained: BTreeSet<String>,
    /// Total retrain fires (the selection watermark target).
    fired_events: u64,
    /// Per-instance retrain fires (the flush-before-append target).
    shard_fires: BTreeMap<String, u64>,
}

impl IsolatedGates {
    fn new() -> Self {
        IsolatedGates {
            len: 0,
            local_lens: BTreeMap::new(),
            trained: BTreeSet::new(),
            fired_events: 0,
            shard_fires: BTreeMap::new(),
        }
    }
}

/// The virtual gate state once every pending decision has landed.
struct ServicePendingSim {
    virtual_len: usize,
    virtual_trained: bool,
    retrain_pending: bool,
}

/// The per-tenant [`Deployer`] backend a worker thread drives: decisions
/// replay the solo [`TenantShardedDeployer`] exactly; records land in the
/// shared shard map and stream to the ingester.
struct ServiceTenantDeployer {
    core: DeployerCore,
    tenant: TenantId,
    gates: IsolatedGates,
    shared: Arc<ServiceShared>,
    reader: SnapshotReader,
    ingest: mpsc::Sender<LandedMsg>,
    /// Per-instance drift state for this tenant's residual stream; a fire
    /// escalates the mode carried by the next fired [`LandedMsg`] only.
    drift: BTreeMap<String, DriftState>,
}

impl ServiceTenantDeployer {
    fn new(
        catalog: InstanceCatalog,
        tenant: TenantId,
        seed: u64,
        shared: Arc<ServiceShared>,
        ingest: mpsc::Sender<LandedMsg>,
    ) -> Self {
        let provider = Arc::new(CloudProvider::new(catalog, seed));
        let reader = SnapshotReader::new(&shared.snapshot);
        ServiceTenantDeployer {
            core: DeployerCore::new(provider, shared.policy.clone(), seed),
            tenant,
            gates: IsolatedGates::new(),
            shared,
            reader,
            ingest,
            drift: BTreeMap::new(),
        }
    }

    /// Mirror of the solo `simulate_pending` restricted to
    /// [`TransferPolicy::Isolated`] (no pooled branch).
    fn simulate_pending(&self, pending: &[DeployDecision]) -> ServicePendingSim {
        let mut len = self.gates.len;
        let mut rsr = self.core.runs_since_retrain;
        let mut retrain_pending = false;
        let mut local = self.gates.local_lens.clone();
        let mut newly: BTreeSet<&str> = BTreeSet::new();
        for d in pending {
            len += 1;
            rsr += 1;
            let local_len = local.entry(d.instance.clone()).or_insert(0);
            *local_len += 1;
            if rsr >= self.core.policy.retrain_every && *local_len >= FAMILY_MIN_SAMPLES {
                newly.insert(d.instance.as_str());
                retrain_pending = true;
                rsr = 0;
            }
        }
        let virtual_trained = self
            .core
            .provider
            .catalog()
            .names()
            .iter()
            .all(|n| self.gates.trained.contains(n.as_str()) || newly.contains(n.as_str()));
        ServicePendingSim {
            virtual_len: len,
            virtual_trained,
            retrain_pending,
        }
    }
}

impl Deployer for ServiceTenantDeployer {
    fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    fn provider_handle(&self) -> Arc<CloudProvider> {
        Arc::clone(&self.core.provider)
    }

    fn kb_len(&self) -> usize {
        self.gates.len
    }

    fn warm(&mut self) -> Result<(), CoreError> {
        // The service starts from an empty base; there is nothing to warm.
        Ok(())
    }

    fn selection_ready(&self, pending: &[DeployDecision]) -> bool {
        let sim = self.simulate_pending(pending);
        sim.virtual_len < self.core.policy.min_kb_samples
            || !sim.virtual_trained
            || !sim.retrain_pending
    }

    fn select(
        &mut self,
        profile: &JobProfile,
        pending: &[DeployDecision],
    ) -> Result<DeployDecision, CoreError> {
        self.core.policy.validate()?;
        let decision_seed = self.core.next_decision_seed();
        let sim = self.simulate_pending(pending);
        if sim.virtual_len < self.core.policy.min_kb_samples || !sim.virtual_trained {
            let (instance, n_nodes) = self.core.random_config(decision_seed);
            return Ok(DeployDecision {
                mode: DeployMode::Bootstrap,
                instance,
                n_nodes,
                predicted_secs: None,
            });
        }
        // Watermark stall: the solo loop retrains synchronously inside
        // record(), so by its next ML selection every fired retrain is
        // visible. Wait until the published snapshot has caught up with
        // every fire this tenant's landings produced.
        let target = self.gates.fired_events;
        let tenant = self.tenant.clone();
        let snap = self
            .reader
            .wait_for(&self.shared.snapshot, move |s| {
                s.fires_for_tenant(&tenant) >= target
            })?
            .clone();
        let view = SnapshotTenantView {
            snapshot: snap.as_ref(),
            tenant: &self.tenant,
        };
        self.core.ml_select(&view, profile, decision_seed)
    }

    fn begin_manual(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError> {
        self.core.manual_decision(instance, n_nodes)
    }

    fn record(
        &mut self,
        profile: &JobProfile,
        decision: &DeployDecision,
        report: &JobReport,
    ) -> Result<(), CoreError> {
        let inst = self.core.provider.catalog().get(&decision.instance)?.clone();
        // Flush-before-append: if this shard has a fired retrain the
        // ingester has not published yet, appending now would let that
        // retrain see records the solo schedule trained without. Wait for
        // the publish first (the fire message is already queued, so the
        // ingester cannot miss it).
        let fires = self
            .gates
            .shard_fires
            .get(&decision.instance)
            .copied()
            .unwrap_or(0);
        if fires > 0 {
            let key = (decision.instance.clone(), self.tenant.clone());
            self.reader.wait_for(&self.shared.snapshot, move |s| {
                s.fires_for_shard(&key) >= fires
            })?;
        }
        let record = RunRecord::new(
            *profile,
            &inst,
            decision.n_nodes,
            report.duration_secs,
            report.prorated_cost,
        )
        .with_tenant(self.tenant.clone());
        let shard = self.shared.shard_handle(&decision.instance, &self.tenant);
        let shard_len = {
            let mut guard = shard.lock().expect("shard poisoned");
            guard.record(record);
            guard.len()
        };
        self.gates.len += 1;
        *self
            .gates
            .local_lens
            .entry(decision.instance.clone())
            .or_insert(0) += 1;
        self.core.runs_since_retrain += 1;
        // Feed the prediction residual to this shard's drift detector
        // before the retrain gate. Detectors only escalate the retrain
        // *mode*, never whether a retrain fires, so the fire schedule —
        // and with it both bit-identity watermarks — is untouched.
        if self.core.policy.drift.enabled() {
            if let Some(residual) = relative_residual(decision, report) {
                let state = self
                    .drift
                    .entry(decision.instance.clone())
                    .or_insert_with(|| DriftState::new(&self.core.policy.drift));
                let _ = state.observe(residual);
            }
        }
        // The solo Isolated gate, verbatim: fire on the retrain schedule
        // once the shard holds the family minimum.
        let mut fired = false;
        let mut mode = self.core.policy.retrain_mode;
        if self.core.runs_since_retrain >= self.core.policy.retrain_every
            && shard_len >= FAMILY_MIN_SAMPLES
        {
            fired = true;
            self.core.runs_since_retrain = 0;
            self.gates.trained.insert(decision.instance.clone());
            self.gates.fired_events += 1;
            *self
                .gates
                .shard_fires
                .entry(decision.instance.clone())
                .or_insert(0) += 1;
            // Resolve the escalation ladder at fire time: the message
            // carries the mode, and the queued fire is guaranteed to be
            // retrained by the ingester, so the ladder resets here.
            if let Some(state) = self.drift.get_mut(&decision.instance) {
                mode = state.next_mode(self.core.policy.retrain_mode, &self.core.policy.drift);
                state.on_retrain_applied();
            }
        }
        self.ingest
            .send(LandedMsg {
                instance: decision.instance.clone(),
                tenant: self.tenant.clone(),
                fired,
                mode,
            })
            .map_err(|_| CoreError::ServiceStopped("predictor ingester stopped"))?;
        Ok(())
    }
}

/// Commands on a tenant's submission queue.
enum Cmd {
    Job(Box<PipelineJob>),
    Finish,
}

/// A tenant's submission endpoint. Created by [`DeployService::register`];
/// `submit` jobs (possibly from any thread), then [`TenantHandle::finish`]
/// to drain the queue and collect the outcomes.
pub struct TenantHandle {
    tenant: TenantId,
    capacity: usize,
    cmd_tx: SyncSender<Cmd>,
    result_rx: Receiver<Result<TenantRun, CoreError>>,
    shared: Arc<ServiceShared>,
}

impl TenantHandle {
    /// The tenant this handle submits for.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Enqueues one job without blocking.
    ///
    /// # Errors
    ///
    /// [`CoreError::Backpressure`] when the bounded queue is full;
    /// [`CoreError::ServiceStopped`] when the worker is gone.
    pub fn submit(&self, job: PipelineJob) -> Result<(), CoreError> {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        match self.cmd_tx.try_send(Cmd::Job(Box::new(job))) {
            Ok(()) => {
                self.shared.admitted.fetch_add(1, Ordering::Relaxed);
                let depth = self.shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.shared.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(CoreError::Backpressure {
                    capacity: self.capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(CoreError::ServiceStopped("tenant worker exited"))
            }
        }
    }

    /// Signals end-of-stream, waits for every queued job to land and
    /// returns this tenant's outcomes in submission order.
    ///
    /// # Errors
    ///
    /// The first deploy error of the tenant's stream (later queued jobs
    /// are dropped, as the solo loop would stop at the same point), or
    /// [`CoreError::ServiceStopped`] if the worker died.
    pub fn finish(self) -> Result<TenantRun, CoreError> {
        self.cmd_tx
            .send(Cmd::Finish)
            .map_err(|_| CoreError::ServiceStopped("tenant worker exited"))?;
        match self.result_rx.recv() {
            Ok(run) => run,
            Err(_) => Err(CoreError::ServiceStopped("tenant worker died")),
        }
    }
}

/// A not-yet-started tenant lane.
struct Registration {
    tenant: TenantId,
    seed: u64,
    cmd_rx: Receiver<Cmd>,
    result_tx: mpsc::Sender<Result<TenantRun, CoreError>>,
}

/// The concurrent multi-tenant deploy service (see the module docs).
///
/// Lifecycle: [`DeployService::new`] → [`DeployService::register`] each
/// tenant → [`DeployService::start`] → submit through the handles →
/// [`TenantHandle::finish`] each handle → [`DeployService::join`].
pub struct DeployService {
    catalog: InstanceCatalog,
    config: ServiceConfig,
    shared: Arc<ServiceShared>,
    ingest_tx: Option<mpsc::Sender<LandedMsg>>,
    // The two receiver-holding fields sit behind a `Mutex` only to keep
    // the service `Sync` (mpsc receivers are not) so tests and callers
    // can observe a started service from other threads; every mutation
    // happens behind `&mut self`.
    ingest_rx: Mutex<Option<Receiver<LandedMsg>>>,
    registrations: Mutex<Vec<Registration>>,
    tenants: BTreeSet<TenantId>,
    workers: Vec<JoinHandle<()>>,
    ingester: Option<JoinHandle<()>>,
    started: bool,
}

impl DeployService {
    /// Creates a stopped service over one instance catalog and one shared
    /// policy.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for an invalid policy or config,
    /// and for any transfer policy other than
    /// [`TransferPolicy::Isolated`]: pooled families are trained on the
    /// cross-tenant arrival interleaving, which concurrency makes
    /// nondeterministic — sharing knowledge across concurrent tenants
    /// deterministically is an open extension (DESIGN.md §11).
    pub fn new(
        catalog: InstanceCatalog,
        policy: DeployPolicy,
        config: ServiceConfig,
    ) -> Result<Self, CoreError> {
        policy.validate()?;
        config.validate()?;
        if policy.transfer != TransferPolicy::Isolated {
            return Err(CoreError::InvalidParameter(
                "DeployService requires TransferPolicy::Isolated",
            ));
        }
        let (ingest_tx, ingest_rx) = mpsc::channel();
        Ok(DeployService {
            catalog,
            config,
            shared: Arc::new(ServiceShared {
                policy,
                shards: RwLock::new(BTreeMap::new()),
                seeds: Mutex::new(BTreeMap::new()),
                snapshot: SnapshotCell::new(),
                submitted: AtomicUsize::new(0),
                admitted: AtomicUsize::new(0),
                rejected: AtomicUsize::new(0),
                queue_depth: AtomicUsize::new(0),
                max_queue_depth: AtomicUsize::new(0),
                ingest_batches: AtomicUsize::new(0),
                retrains: AtomicUsize::new(0),
                pipeline: Mutex::new(PipelineStats::default()),
            }),
            ingest_tx: Some(ingest_tx),
            ingest_rx: Mutex::new(Some(ingest_rx)),
            registrations: Mutex::new(Vec::new()),
            tenants: BTreeSet::new(),
            workers: Vec::new(),
            ingester: None,
            started: false,
        })
    }

    /// Registers a tenant lane. `seed` plays the role the solo
    /// deployer's seed does: it feeds this tenant's cloud noise streams,
    /// decision counter and family initialization, so a service run with
    /// seed `s` is comparable bit-for-bit to
    /// `TenantShardedDeployer::new(provider(s), policy, s)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] after `start()` or for a duplicate
    /// tenant.
    pub fn register(&mut self, tenant: TenantId, seed: u64) -> Result<TenantHandle, CoreError> {
        if self.started {
            return Err(CoreError::InvalidParameter(
                "register tenants before start()",
            ));
        }
        if !self.tenants.insert(tenant.clone()) {
            return Err(CoreError::InvalidParameter("tenant already registered"));
        }
        self.shared
            .seeds
            .lock()
            .expect("seed map poisoned")
            .insert(tenant.clone(), seed);
        let (cmd_tx, cmd_rx) = mpsc::sync_channel(self.config.queue_capacity);
        let (result_tx, result_rx) = mpsc::channel();
        self.registrations
            .get_mut()
            .expect("registrations poisoned")
            .push(Registration {
                tenant: tenant.clone(),
                seed,
                cmd_rx,
                result_tx,
            });
        Ok(TenantHandle {
            tenant,
            capacity: self.config.queue_capacity,
            cmd_tx,
            result_rx,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Spawns the ingester and one worker per registered tenant. Jobs
    /// submitted before `start()` wait in their queues (which is what
    /// makes [`CoreError::Backpressure`] deterministic to provoke).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when already started.
    pub fn start(&mut self) -> Result<(), CoreError> {
        if self.started {
            return Err(CoreError::InvalidParameter("service already started"));
        }
        self.started = true;
        let ingest_rx = self
            .ingest_rx
            .get_mut()
            .expect("ingest receiver poisoned")
            .take()
            .expect("ingest receiver present");
        let shared = Arc::clone(&self.shared);
        let batch_max = self.config.batch_max;
        self.ingester = Some(std::thread::spawn(move || {
            ingester_loop(&shared, &ingest_rx, batch_max);
        }));
        let ingest_tx = self.ingest_tx.clone().expect("ingest sender present");
        let registrations =
            std::mem::take(self.registrations.get_mut().expect("registrations poisoned"));
        for reg in registrations {
            let dep = ServiceTenantDeployer::new(
                self.catalog.clone(),
                reg.tenant,
                reg.seed,
                Arc::clone(&self.shared),
                ingest_tx.clone(),
            );
            let shared = Arc::clone(&self.shared);
            let depth = self.config.depth;
            let cmd_rx = reg.cmd_rx;
            let result_tx = reg.result_tx;
            self.workers.push(std::thread::spawn(move || {
                worker_loop(dep, &cmd_rx, depth, &result_tx, &shared);
            }));
        }
        Ok(())
    }

    /// Point-in-time service counters. Pipeline counters aggregate as
    /// tenants finish.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            pipeline: *self.shared.pipeline.lock().expect("stats poisoned"),
            tenants: self.tenants.len(),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            ingest_batches: self.shared.ingest_batches.load(Ordering::Relaxed),
            retrains: self.shared.retrains.load(Ordering::Relaxed),
            snapshot_generation: self.shared.snapshot.generation.load(Ordering::Acquire),
        }
    }

    /// The current predictor snapshot (for inspection and the
    /// linearizability tests).
    pub fn snapshot(&self) -> Arc<PredictorSnapshot> {
        self.shared.snapshot.load()
    }

    /// A copy of one (instance, tenant) shard, if it exists.
    pub fn shard(&self, instance: &str, tenant: &TenantId) -> Option<KnowledgeBase> {
        let key = (instance.to_string(), tenant.clone());
        let map = self.shared.shards.read().expect("shard map poisoned");
        map.get(&key)
            .map(|s| s.lock().expect("shard poisoned").clone())
    }

    /// Exports the accumulated knowledge as a two-key base (shard-major
    /// arrival order; see [`TenantShardedKnowledgeBase::from_shards`]).
    pub fn export_knowledge_base(&self) -> TenantShardedKnowledgeBase {
        let map = self.shared.shards.read().expect("shard map poisoned");
        TenantShardedKnowledgeBase::from_shards(
            map.values().map(|s| s.lock().expect("shard poisoned").clone()),
        )
    }

    /// Stops the service once every handle has finished: joins the
    /// workers, retires the ingester and returns the final counters.
    ///
    /// Call only after [`TenantHandle::finish`] (or drop) on every
    /// handle — a live handle keeps its worker waiting for jobs and
    /// `join` would block on it.
    ///
    /// # Errors
    ///
    /// [`CoreError::ServiceStopped`] if a worker or the ingester thread
    /// panicked.
    pub fn join(mut self) -> Result<ServiceStats, CoreError> {
        let mut lost = false;
        for worker in self.workers.drain(..) {
            lost |= worker.join().is_err();
        }
        // Workers are gone; dropping the service's sender disconnects the
        // ingester, which publishes nothing further and exits.
        self.ingest_tx = None;
        if let Some(ingester) = self.ingester.take() {
            lost |= ingester.join().is_err();
        }
        if lost {
            return Err(CoreError::ServiceStopped("a service thread panicked"));
        }
        Ok(self.stats())
    }
}

/// Merges one pipeline run's counters into a tenant/service aggregate.
fn merge_pipeline_stats(acc: &mut PipelineStats, s: &PipelineStats) {
    let total = acc.jobs + s.jobs;
    if total > 0 {
        acc.mean_in_flight = (acc.mean_in_flight * acc.jobs as f64
            + s.mean_in_flight * s.jobs as f64)
            / total as f64;
    }
    acc.jobs = total;
    acc.max_in_flight = acc.max_in_flight.max(s.max_in_flight);
    acc.overlapped_selections += s.overlapped_selections;
    acc.stalled_selections += s.stalled_selections;
}

/// One tenant's worker: drain whatever is queued, pipeline the batch,
/// repeat; report on `Finish` (or handle drop).
fn worker_loop(
    mut dep: ServiceTenantDeployer,
    cmd_rx: &Receiver<Cmd>,
    depth: usize,
    result_tx: &mpsc::Sender<Result<TenantRun, CoreError>>,
    shared: &Arc<ServiceShared>,
) {
    let tenant = dep.tenant.clone();
    let mut outcomes: Vec<DeployOutcome> = Vec::new();
    let mut stats = PipelineStats::default();
    let mut failed: Option<CoreError> = None;
    'serve: loop {
        let first = match cmd_rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => break, // handle dropped without finish()
        };
        let mut batch: Vec<PipelineJob> = Vec::new();
        let mut finish = false;
        match first {
            Cmd::Finish => break,
            Cmd::Job(job) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                batch.push(*job);
            }
        }
        // Coalesce whatever else is already queued, preserving order.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                Cmd::Finish => {
                    finish = true;
                    break;
                }
                Cmd::Job(job) => {
                    shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    batch.push(*job);
                }
            }
        }
        if failed.is_none() {
            // Bit-identity across batches: the pipeline drains fully
            // between run() calls and every counter lives in `dep`, so
            // batch boundaries cannot shift any decision.
            let mut pipeline =
                DeployPipeline::new(dep, depth).expect("depth validated by ServiceConfig");
            let res = pipeline.run(&batch);
            merge_pipeline_stats(&mut stats, pipeline.stats());
            dep = pipeline.into_deployer();
            match res {
                Ok(outs) => outcomes.extend(outs),
                Err(e) => failed = Some(e),
            }
        }
        if finish {
            break 'serve;
        }
    }
    merge_pipeline_stats(
        &mut shared.pipeline.lock().expect("stats poisoned"),
        &stats,
    );
    let run = match failed {
        None => Ok(TenantRun {
            tenant,
            outcomes,
            stats,
        }),
        Some(e) => Err(e),
    };
    let _ = result_tx.send(run);
}

/// The batching ingester: coalesce landed-record messages, retrain each
/// dirty shard once, publish one new snapshot per batch.
fn ingester_loop(shared: &Arc<ServiceShared>, rx: &Receiver<LandedMsg>, batch_max: usize) {
    let mut masters: BTreeMap<(String, TenantId), PredictorFamily> = BTreeMap::new();
    loop {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break, // every worker and the service handle are gone
        };
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        shared.ingest_batches.fetch_add(1, Ordering::Relaxed);
        // Dirty = shards whose gate fired in this batch. The
        // flush-before-append rule guarantees at most one fire per shard
        // per batch, so "one retrain per dirty shard" is exact, not an
        // approximation.
        let mut dirty: Vec<((String, TenantId), RetrainMode)> = Vec::new();
        for msg in batch.iter().filter(|m| m.fired) {
            let key = (msg.instance.clone(), msg.tenant.clone());
            if !dirty.iter().any(|(k, _)| *k == key) {
                dirty.push((key, msg.mode));
            }
        }
        if dirty.is_empty() {
            continue;
        }
        let mut next = (*shared.snapshot.load()).clone();
        for (key, mode) in &dirty {
            let seed = shared.seed_of(&key.1);
            let shard = shared.shard_handle(&key.0, &key.1);
            let guard = shard.lock().expect("shard poisoned");
            let family = masters
                .entry(key.clone())
                .or_insert_with(|| PredictorFamily::new(seed, FAMILY_MIN_SAMPLES));
            if let Err(_e) = family.retrain(&guard, *mode, shared.policy.n_threads) {
                // A retrain failure poisons the whole service: close the
                // cell so every watermark waiter errors out instead of
                // spinning forever.
                shared.snapshot.close();
                return;
            }
            shared.retrains.fetch_add(1, Ordering::Relaxed);
            next.families.insert(key.clone(), Arc::new(family.clone()));
        }
        for msg in batch.iter().filter(|m| m.fired) {
            *next.fires_by_tenant.entry(msg.tenant.clone()).or_insert(0) += 1;
            *next
                .fires_by_shard
                .entry((msg.instance.clone(), msg.tenant.clone()))
                .or_insert(0) += 1;
        }
        next.generation += 1;
        shared.snapshot.publish(next);
    }
    // Normal shutdown: wake any (stray) waiter so it errors instead of
    // blocking.
    shared.snapshot.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantShardedDeployer;
    use disar_cloudsim::Workload;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn workload(contracts: usize) -> Workload {
        Workload::new(
            30.0 * contracts as f64,
            0.02 * contracts as f64,
            0.8 * contracts as f64,
            0.05,
        )
        .unwrap()
    }

    fn test_policy() -> DeployPolicy {
        DeployPolicy::builder(50_000.0)
            .max_nodes(4)
            .min_kb_samples(8)
            .n_threads(1)
            .transfer(TransferPolicy::Isolated)
            .build()
    }

    fn jobs_for(tenant_ix: usize, n: usize) -> Vec<PipelineJob> {
        (0..n)
            .map(|i| {
                let c = 60 + (i * 23 + tenant_ix * 7) % 280;
                PipelineJob::auto(profile(c), workload(c))
            })
            .collect()
    }

    /// The ground truth: the same tenant running alone, sequentially,
    /// through the solo two-key deployer.
    fn solo_run(seed: u64, tenant: &TenantId, jobs: &[PipelineJob]) -> Vec<DeployOutcome> {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), seed);
        let mut solo = TenantShardedDeployer::new(provider, test_policy(), seed)
            .with_tenant(tenant.clone());
        jobs.iter()
            .map(|j| solo.deploy(&j.profile, &j.workload).unwrap())
            .collect()
    }

    #[test]
    fn service_is_send_and_sync() {
        // The linearizability tests observe a started service from other
        // threads through an `Arc`, which needs `DeployService: Send +
        // Sync` — pinned here so a field change cannot silently lose it.
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<DeployService>();
        assert_send_sync::<PredictorSnapshot>();
        // The handle owns its result receiver, so it is Send, not Sync.
        assert_send::<TenantHandle>();
    }

    #[test]
    fn rejects_bad_config_and_non_isolated_policy() {
        let cat = InstanceCatalog::paper_catalog();
        let pooled = DeployPolicy::builder(50_000.0)
            .transfer(TransferPolicy::Pooled)
            .build();
        assert!(matches!(
            DeployService::new(cat.clone(), pooled, ServiceConfig::default()),
            Err(CoreError::InvalidParameter(_))
        ));
        for bad in [
            ServiceConfig { depth: 0, ..ServiceConfig::default() },
            ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() },
            ServiceConfig { batch_max: 0, ..ServiceConfig::default() },
        ] {
            assert!(matches!(
                DeployService::new(cat.clone(), test_policy(), bad),
                Err(CoreError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn rejects_duplicate_and_post_start_registration() {
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            test_policy(),
            ServiceConfig::default(),
        )
        .unwrap();
        let t = TenantId::new("acme-life");
        let h = service.register(t.clone(), 7).unwrap();
        assert!(matches!(
            service.register(t.clone(), 8),
            Err(CoreError::InvalidParameter(_))
        ));
        service.start().unwrap();
        assert!(matches!(
            service.register(TenantId::new("late"), 9),
            Err(CoreError::InvalidParameter(_))
        ));
        h.finish().unwrap();
        service.join().unwrap();
    }

    #[test]
    fn single_tenant_stream_is_bit_identical_to_solo() {
        let tenant = TenantId::new("acme-life");
        let jobs = jobs_for(0, 14);
        let expected = solo_run(11, &tenant, &jobs);

        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            test_policy(),
            ServiceConfig { depth: 3, queue_capacity: 32, batch_max: 8 },
        )
        .unwrap();
        let handle = service.register(tenant.clone(), 11).unwrap();
        service.start().unwrap();
        for j in &jobs {
            handle.submit(j.clone()).unwrap();
        }
        let run = handle.finish().unwrap();
        assert_eq!(run.outcomes, expected);
        assert_eq!(run.stats.jobs, jobs.len());

        // The shared shards hold exactly the solo base, shard by shard.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 11);
        let mut solo = TenantShardedDeployer::new(provider, test_policy(), 11)
            .with_tenant(tenant.clone());
        for j in &jobs {
            solo.deploy(&j.profile, &j.workload).unwrap();
        }
        for (key, shard) in solo.knowledge_base().shards() {
            let got = service.shard(&key.0, &key.1).expect("service shard exists");
            assert_eq!(got.records(), shard.records());
        }
        let stats = service.join().unwrap();
        assert_eq!(stats.admitted, jobs.len());
        assert_eq!(stats.rejected, 0);
        assert!(stats.retrains > 0);
        assert!(stats.snapshot_generation > 0);
    }

    #[test]
    fn concurrent_tenants_each_match_their_solo_run() {
        let tenants: Vec<TenantId> = (0..3)
            .map(|i| TenantId::new(format!("company-{i}")))
            .collect();
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            test_policy(),
            ServiceConfig { depth: 2, queue_capacity: 32, batch_max: 4 },
        )
        .unwrap();
        let handles: Vec<TenantHandle> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| service.register(t.clone(), 20 + i as u64).unwrap())
            .collect();
        service.start().unwrap();
        let all_jobs: Vec<Vec<PipelineJob>> =
            (0..tenants.len()).map(|i| jobs_for(i, 12)).collect();
        // Interleave submissions across tenants to exercise concurrency.
        for j in 0..12 {
            for (i, h) in handles.iter().enumerate() {
                h.submit(all_jobs[i][j].clone()).unwrap();
            }
        }
        for (i, h) in handles.into_iter().enumerate() {
            let run = h.finish().unwrap();
            let expected = solo_run(20 + i as u64, &tenants[i], &all_jobs[i]);
            assert_eq!(run.outcomes, expected, "tenant {i} diverged from solo");
        }
        service.join().unwrap();
    }

    #[test]
    fn full_queue_surfaces_backpressure() {
        let capacity = 4;
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            test_policy(),
            ServiceConfig { depth: 1, queue_capacity: capacity, batch_max: 8 },
        )
        .unwrap();
        let tenant = TenantId::new("acme-life");
        let handle = service.register(tenant, 5).unwrap();
        // Workers are not started yet, so nothing drains: fills are
        // deterministic.
        let jobs = jobs_for(0, capacity + 2);
        for j in &jobs[..capacity] {
            handle.submit(j.clone()).unwrap();
        }
        for j in &jobs[capacity..] {
            match handle.submit(j.clone()) {
                Err(CoreError::Backpressure { capacity: c }) => assert_eq!(c, capacity),
                other => panic!("expected Backpressure, got {other:?}"),
            }
        }
        service.start().unwrap();
        let run = handle.finish().unwrap();
        assert_eq!(run.outcomes.len(), capacity);
        let stats = service.join().unwrap();
        assert_eq!(stats.submitted, capacity + 2);
        assert_eq!(stats.admitted, capacity);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.max_queue_depth, capacity);
    }

    #[test]
    fn exported_base_matches_shard_contents() {
        let tenant = TenantId::new("acme-life");
        let jobs = jobs_for(0, 6);
        let mut service = DeployService::new(
            InstanceCatalog::paper_catalog(),
            test_policy(),
            ServiceConfig::default(),
        )
        .unwrap();
        let handle = service.register(tenant.clone(), 3).unwrap();
        service.start().unwrap();
        for j in &jobs {
            handle.submit(j.clone()).unwrap();
        }
        handle.finish().unwrap();
        let exported = service.export_knowledge_base();
        assert_eq!(exported.len(), jobs.len());
        assert!(exported
            .records_in_arrival_order()
            .all(|r| r.tenant == tenant));
        service.join().unwrap();
    }
}
