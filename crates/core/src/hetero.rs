//! Heterogeneous configuration selection — the paper's §VI future work,
//! implemented.
//!
//! Algorithm 1 generalizes naturally: a *mixed* deploy pairs two instance
//! groups and splits the parallel work so both groups finish together. If
//! the (homogeneous) predictors estimate that the whole job would take
//! `t_1` on group 1 and `t_2` on group 2, the barrier-balancing split gives
//! group 1 the share `s_1 = t_2 / (t_1 + t_2)`, and the predicted makespan
//! is the "parallel resistor" combination
//!
//! ```text
//! t_mix = t_1 · t_2 / (t_1 + t_2)
//! ```
//!
//! — always faster than either group alone. Crucially, the predictions
//! come from the *same knowledge base* of homogeneous runs: no new
//! training data is needed to start exploring mixed deploys, which is why
//! the paper could leave this as a drop-in extension.

use crate::predictor::{GridScratch, TimePredictor};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::{InstanceCatalog, InstanceType, NodeGroup};
use disar_math::parallel::parallel_map_with;
use disar_math::rng::stream_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A candidate (possibly mixed) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroCandidate {
    /// The node groups (one = homogeneous, two = mixed).
    pub groups: Vec<NodeGroup>,
    /// Predicted makespan in seconds.
    pub predicted_secs: f64,
    /// Predicted prorated cost in USD.
    pub predicted_cost: f64,
}

/// The outcome of heterogeneous selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroSelection {
    /// The chosen candidate.
    pub chosen: HeteroCandidate,
    /// `true` when the ε-branch fired.
    pub explored: bool,
    /// All feasible candidates sorted by cost (head = greedy choice).
    pub feasible: Vec<HeteroCandidate>,
}

/// Runs the heterogeneous generalization of Algorithm 1: all homogeneous
/// configurations plus all two-type mixes with `n1 + n2 <= max_nodes`,
/// barrier-balanced work splits, `T_max` filtering, cost minimization and
/// ε-greedy exploration.
///
/// # Errors
///
/// Same contract as [`crate::select_configuration`]:
/// [`CoreError::InvalidParameter`] for bad arguments, [`CoreError::Ml`] for
/// an untrained family, [`CoreError::NoFeasibleConfiguration`] when the
/// deadline is unattainable.
pub fn select_hetero_configuration<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
) -> Result<HeteroSelection, CoreError> {
    select_hetero_configuration_threads(family, catalog, profile, t_max, max_nodes, epsilon, seed, 1)
}

/// [`select_hetero_configuration`] with the homogeneous prediction grid
/// spread over up to `n_threads` worker threads.
///
/// Only the `|M| · max_nodes` ensemble predictions run in parallel — the
/// mixing step is pure arithmetic on their results and stays sequential —
/// so the selection is bit-identical to `n_threads = 1`.
///
/// # Errors
///
/// Same contract as [`select_hetero_configuration`], plus
/// [`CoreError::InvalidParameter`] for `n_threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn select_hetero_configuration_threads<P: TimePredictor + ?Sized>(
    family: &P,
    catalog: &InstanceCatalog,
    profile: &JobProfile,
    t_max: f64,
    max_nodes: usize,
    epsilon: f64,
    seed: u64,
    n_threads: usize,
) -> Result<HeteroSelection, CoreError> {
    if !(t_max > 0.0) {
        return Err(CoreError::InvalidParameter("t_max must be positive"));
    }
    if max_nodes == 0 {
        return Err(CoreError::InvalidParameter("max_nodes must be > 0"));
    }
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(CoreError::InvalidParameter("epsilon must be in [0, 1]"));
    }
    if catalog.is_empty() {
        return Err(CoreError::InvalidParameter("catalog is empty"));
    }
    if n_threads == 0 {
        return Err(CoreError::InvalidParameter("n_threads must be > 0"));
    }

    // Homogeneous predictions t[(m, n)] reused by the mixing step, laid
    // out in the sequential loop's (type-major, node-minor) order. One
    // worker takes one instance type, featurizes its whole node column
    // once and reads every member's batched kernel from a single
    // `predict_grid` pass; the per-node mean is summed in member order and
    // clamped exactly like `predict_mean(...)?.max(1e-9)` was, so the
    // values are bit-identical to the per-cell path.
    let names = catalog.names();
    let insts: Vec<&InstanceType> = names
        .iter()
        .map(|name| catalog.get(name))
        .collect::<Result<_, _>>()?;
    let nodes: Vec<usize> = (1..=max_nodes).collect();
    let per_type: Vec<Result<Vec<f64>, CoreError>> = parallel_map_with(
        insts.len(),
        n_threads,
        || (GridScratch::new(), Vec::new()),
        |mi, (scratch, block)| {
            let members = family.predict_grid(profile, insts[mi], &nodes, block, scratch)?;
            Ok((0..nodes.len())
                .map(|i| {
                    let mut sum = 0.0;
                    for m in 0..members {
                        sum += block[m * nodes.len() + i];
                    }
                    (sum / members as f64).max(0.0).max(1e-9)
                })
                .collect())
        },
    );
    let mut homo: Vec<(usize, usize, f64)> = Vec::with_capacity(insts.len() * max_nodes);
    for (mi, res) in per_type.into_iter().enumerate() {
        let means = res?;
        debug_assert_eq!(means.len(), nodes.len());
        for (&n, &t) in nodes.iter().zip(&means) {
            homo.push((mi, n, t));
        }
    }

    let mut feasible: Vec<HeteroCandidate> = Vec::new();
    let mut best_predicted = f64::INFINITY;
    let mut consider = |groups: Vec<NodeGroup>, secs: f64, cost: f64| {
        best_predicted = best_predicted.min(secs);
        if secs <= t_max {
            feasible.push(HeteroCandidate {
                groups,
                predicted_secs: secs,
                predicted_cost: cost,
            });
        }
    };

    // Homogeneous candidates (exactly Algorithm 1's set).
    for &(mi, n, t) in &homo {
        let inst = catalog.get(&names[mi])?;
        let cost = inst.hourly_cost * (t / 3600.0) * n as f64;
        consider(
            vec![NodeGroup::new(&names[mi], n, 1.0).expect("valid group")],
            t,
            cost,
        );
    }

    // Mixed candidates: unordered pairs of distinct types.
    for &(mi, ni, ti) in &homo {
        for &(mj, nj, tj) in &homo {
            if mj <= mi || ni + nj > max_nodes {
                continue;
            }
            let share_i = tj / (ti + tj);
            let t_mix = ti * tj / (ti + tj);
            let inst_i = catalog.get(&names[mi])?;
            let inst_j = catalog.get(&names[mj])?;
            let cost = (inst_i.hourly_cost * ni as f64 + inst_j.hourly_cost * nj as f64)
                * (t_mix / 3600.0);
            consider(
                vec![
                    NodeGroup::new(&names[mi], ni, share_i).expect("share in (0,1)"),
                    NodeGroup::new(&names[mj], nj, 1.0 - share_i).expect("share in (0,1)"),
                ],
                t_mix,
                cost,
            );
        }
    }

    if feasible.is_empty() {
        return Err(CoreError::NoFeasibleConfiguration {
            t_max,
            best_predicted,
        });
    }
    feasible.sort_by(|a, b| {
        a.predicted_cost
            .partial_cmp(&b.predicted_cost)
            .expect("finite costs")
            .then_with(|| a.groups.len().cmp(&b.groups.len()))
            .then_with(|| a.groups[0].instance.cmp(&b.groups[0].instance))
            .then_with(|| a.groups[0].n_nodes.cmp(&b.groups[0].n_nodes))
    });

    let mut rng = stream_rng(seed, 0x43E7);
    let explored = rng.gen_range(0.0..1.0) < epsilon;
    let chosen = if explored {
        feasible[rng.gen_range(0..feasible.len())].clone()
    } else {
        feasible[0].clone()
    };
    Ok(HeteroSelection {
        chosen,
        explored,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{KnowledgeBase, RunRecord};
    use crate::predictor::{PredictorFamily, RetrainMode};
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn trained_family() -> (PredictorFamily, InstanceCatalog) {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let mut kb = KnowledgeBase::new();
        for i in 0..400 {
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 6 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            kb.record(RunRecord::new(profile(contracts), inst, nodes, time, 0.0));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).unwrap();
        (fam, cat)
    }

    #[test]
    fn hetero_set_contains_all_homogeneous_candidates() {
        let (fam, cat) = trained_family();
        let homo =
            crate::select_configuration(&fam, &cat, &profile(200), 50_000.0, 4, 0.0, 1).unwrap();
        let hetero =
            select_hetero_configuration(&fam, &cat, &profile(200), 50_000.0, 4, 0.0, 1).unwrap();
        let homo_in_hetero = hetero
            .feasible
            .iter()
            .filter(|c| c.groups.len() == 1)
            .count();
        assert_eq!(homo_in_hetero, homo.feasible.len());
        // Hetero strictly enlarges the candidate set.
        assert!(hetero.feasible.len() > homo.feasible.len());
    }

    #[test]
    fn hetero_never_costs_more_than_homogeneous_greedy() {
        // The homogeneous optimum is in the hetero candidate set, so the
        // hetero greedy pick can only match or beat it on predicted cost.
        let (fam, cat) = trained_family();
        let homo =
            crate::select_configuration(&fam, &cat, &profile(200), 2_000.0, 6, 0.0, 1).unwrap();
        let hetero =
            select_hetero_configuration(&fam, &cat, &profile(200), 2_000.0, 6, 0.0, 1).unwrap();
        assert!(hetero.chosen.predicted_cost <= homo.chosen.predicted_cost + 1e-9);
    }

    #[test]
    fn mixed_candidates_balance_the_barrier() {
        let (fam, cat) = trained_family();
        let sel =
            select_hetero_configuration(&fam, &cat, &profile(300), 50_000.0, 6, 0.0, 1).unwrap();
        for c in sel.feasible.iter().filter(|c| c.groups.len() == 2) {
            let shares: f64 = c.groups.iter().map(|g| g.work_share).sum();
            assert!((shares - 1.0).abs() < 1e-9);
            // Mixed time must beat either group running everything alone —
            // the parallel-resistor identity.
            assert!(c.predicted_secs > 0.0);
        }
    }

    #[test]
    fn tight_deadline_may_need_a_mix() {
        // Find a deadline between the best homogeneous time and the best
        // mixed time: hetero still returns a pick, homogeneous may not.
        let (fam, cat) = trained_family();
        let all = select_hetero_configuration(&fam, &cat, &profile(400), 1e9, 3, 0.0, 1).unwrap();
        let best_mixed = all
            .feasible
            .iter()
            .filter(|c| c.groups.len() == 2)
            .map(|c| c.predicted_secs)
            .fold(f64::INFINITY, f64::min);
        let best_homo = all
            .feasible
            .iter()
            .filter(|c| c.groups.len() == 1)
            .map(|c| c.predicted_secs)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_mixed < best_homo,
            "a two-type mix on 3 nodes should beat any single type on <=3 nodes"
        );
        let t_max = (best_mixed + best_homo) / 2.0;
        let hetero =
            select_hetero_configuration(&fam, &cat, &profile(400), t_max, 3, 0.0, 1).unwrap();
        assert_eq!(hetero.chosen.groups.len(), 2, "only a mix meets {t_max}");
        assert!(matches!(
            crate::select_configuration(&fam, &cat, &profile(400), t_max, 3, 0.0, 1),
            Err(CoreError::NoFeasibleConfiguration { .. })
        ));
    }

    #[test]
    fn epsilon_explores_deterministically() {
        let (fam, cat) = trained_family();
        let a = select_hetero_configuration(&fam, &cat, &profile(200), 50_000.0, 4, 0.5, 9)
            .unwrap();
        let b = select_hetero_configuration(&fam, &cat, &profile(200), 50_000.0, 4, 0.5, 9)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let (fam, cat) = trained_family();
        let p = profile(100);
        assert!(select_hetero_configuration(&fam, &cat, &p, 0.0, 4, 0.0, 1).is_err());
        assert!(select_hetero_configuration(&fam, &cat, &p, 100.0, 0, 0.0, 1).is_err());
        assert!(select_hetero_configuration(&fam, &cat, &p, 100.0, 4, -0.1, 1).is_err());
        assert!(
            select_hetero_configuration_threads(&fam, &cat, &p, 100.0, 4, 0.0, 1, 0).is_err()
        );
    }

    #[test]
    fn threaded_hetero_is_bit_identical_to_sequential() {
        let (fam, cat) = trained_family();
        let p = profile(250);
        let seq =
            select_hetero_configuration_threads(&fam, &cat, &p, 50_000.0, 5, 0.4, 11, 1).unwrap();
        for threads in [2, 4, 9] {
            let par =
                select_hetero_configuration_threads(&fam, &cat, &p, 50_000.0, 5, 0.4, 11, threads)
                    .unwrap();
            assert_eq!(seq, par, "divergence at n_threads = {threads}");
        }
    }

    #[test]
    fn selected_mix_runs_on_the_simulated_cloud() {
        // End-to-end: train on *real* simulator observations (like the
        // production loop does), pick a mixed configuration, execute it,
        // and check the realized makespan is in the prediction's ballpark.
        let provider = disar_cloudsim::CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        let cat = provider.catalog().clone();
        let names = cat.names();
        let workload_of = |contracts: usize| {
            disar_cloudsim::Workload::new(
                30.0 * contracts as f64,
                0.02 * contracts as f64,
                0.8 * contracts as f64,
                0.05,
            )
            .unwrap()
        };
        let mut kb = KnowledgeBase::new();
        for i in 0..240 {
            let contracts = 50 + (i * 53) % 400;
            let inst = cat.get(&names[i % names.len()]).unwrap();
            let nodes = i % 4 + 1;
            let r = provider
                .run_job_with_seed(&inst.name, nodes, &workload_of(contracts), i as u64)
                .unwrap();
            kb.record(RunRecord::new(
                profile(contracts),
                inst,
                nodes,
                r.duration_secs,
                r.prorated_cost,
            ));
        }
        let mut fam = PredictorFamily::new(5, 2);
        fam.retrain(&kb, RetrainMode::Full, 1).unwrap();

        let sel =
            select_hetero_configuration(&fam, &cat, &profile(300), 50_000.0, 4, 0.0, 1).unwrap();
        let mixed = sel
            .feasible
            .iter()
            .find(|c| c.groups.len() == 2)
            .expect("some mix is feasible");
        let r = provider
            .run_hetero_job_with_seed(&mixed.groups, &workload_of(300), 3)
            .unwrap();
        assert!(r.duration_secs > 0.0);
        let rel = (r.duration_secs - mixed.predicted_secs).abs() / mixed.predicted_secs;
        assert!(
            rel < 0.6,
            "prediction {} vs realized {}",
            mixed.predicted_secs,
            r.duration_secs
        );
    }
}
