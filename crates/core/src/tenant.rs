//! Tenant-aware knowledge sharding and cross-company transfer.
//!
//! The paper observes that the knowledge base's parameters "are not
//! necessarily bound to a specific" company: the job profile and machine
//! capabilities are numeric, so execution-time knowledge gathered while
//! serving one insurance undertaking can inform provisioning for another.
//! This module makes that claim operational. Records carry a [`TenantId`],
//! the base is partitioned by the *two-key* (instance type × tenant)
//! ([`TenantShardedKnowledgeBase`]), and a pluggable [`TransferPolicy`]
//! decides whose records a tenant's predictions may learn from:
//!
//! - [`TransferPolicy::Isolated`] — every tenant trains only on its own
//!   runs (the regulatory-conservative default: no information crosses a
//!   company boundary);
//! - [`TransferPolicy::Pooled`] — all tenants train on the union of
//!   records per instance type (the paper's transfer argument taken at
//!   face value);
//! - [`TransferPolicy::BorrowUntil`] — a tenant borrows the pooled model
//!   per instance type until it has accumulated enough *local*
//!   observations there, then switches to its own (cold-start borrowing).
//!
//! [`TenantShardedDeployer`] packages the layout behind the existing
//! [`Deployer`] trait, so [`crate::pipeline::DeployPipeline`], the bench
//! campaign and the experiment drivers run unchanged over a multi-tenant
//! base. With a single tenant and [`TransferPolicy::Isolated`] (or
//! [`TransferPolicy::Pooled`] — the partitions coincide), the backend is
//! bit-identical to [`crate::deploy::ShardedDeployer`].

use crate::deploy::{
    relative_residual, DeployDecision, DeployMode, DeployOutcome, DeployPolicy, Deployer,
    DeployerCore, PendingSim,
};
use crate::drift::DriftState;
use crate::knowledge::{check_schema, KnowledgeBase, KnowledgeStore, RunRecord, SchemaVersion};
use crate::predictor::{GridScratch, PredictorFamily, RetrainMode, TimePredictor};
use crate::profile::JobProfile;
use crate::CoreError;
use disar_cloudsim::{CloudProvider, InstanceType, JobReport, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Identifies the company (tenant) a run belongs to.
///
/// A plain string key: tenants are administrative, not numeric, and never
/// enter the feature vector. The default tenant (`"default"`) is what every
/// pre-tenancy record and single-tenant deployment uses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TenantId(String);

impl TenantId {
    /// Creates a tenant id from a name.
    pub fn new(name: impl Into<String>) -> Self {
        TenantId(name.into())
    }

    /// The tenant name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId("default".to_string())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How knowledge crosses company boundaries (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransferPolicy {
    /// Each tenant trains and predicts only on its own records.
    #[default]
    Isolated,
    /// All tenants share one model per instance type, trained on the union
    /// of every tenant's records.
    Pooled,
    /// Predict from the pooled model for an instance type until the tenant
    /// holds at least this many *local* records there, then switch to the
    /// tenant's own model. `BorrowUntil(0)` behaves like
    /// [`TransferPolicy::Isolated`] with pooled models kept warm.
    BorrowUntil(usize),
}

impl TransferPolicy {
    /// Whether per-(instance, tenant) local models are trained and may
    /// serve predictions.
    pub fn uses_local(self) -> bool {
        !matches!(self, TransferPolicy::Pooled)
    }

    /// Whether per-instance pooled models are trained and may serve
    /// predictions.
    pub fn uses_pooled(self) -> bool {
        !matches!(self, TransferPolicy::Isolated)
    }
}

/// A knowledge base partitioned by the two-key (instance type × tenant).
///
/// Each two-key shard is a plain [`KnowledgeBase`] (with its own
/// incrementally maintained featurized cache), so a `record()` touches
/// exactly one shard and a local retrain scales with one tenant's records
/// on one instance type. Alongside the two-key shards the base maintains
/// *pooled* per-instance copies — the union of all tenants' records for
/// each instance type, in arrival order — so pooled retrains need no
/// re-partitioning pass. The pooled copies double record memory; they are
/// derived state, excluded from equality, skipped by serialization and
/// rebuilt on [`TenantShardedKnowledgeBase::load`].
///
/// The global arrival order is kept alongside the shards, so the exact
/// monolithic record stream is always reconstructible
/// ([`TenantShardedKnowledgeBase::to_monolithic`]) — two-key sharding
/// never loses or reorders information.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TenantShardedKnowledgeBase {
    /// On-disk format version; stamped on save, checked on load. Excluded
    /// from equality (records are what a base *is*).
    #[serde(default)]
    pub schema_version: SchemaVersion,
    /// `(instance, tenant)` of each shard, in first-seen order.
    keys: Vec<(String, TenantId)>,
    shards: Vec<KnowledgeBase>,
    /// Shard slot of each record, in global arrival order.
    arrival: Vec<u32>,
    /// Derived per-instance unions (first-seen instance order), rebuilt on
    /// load.
    #[serde(skip)]
    pooled_names: Vec<String>,
    #[serde(skip)]
    pooled: Vec<KnowledgeBase>,
}

/// Equality is over the two-key shards and arrival order only — the pooled
/// copies (like the per-shard dataset caches) are derived state.
impl PartialEq for TenantShardedKnowledgeBase {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.shards == other.shards && self.arrival == other.arrival
    }
}

impl TenantShardedKnowledgeBase {
    /// Creates an empty two-key base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a two-key base holding the same record stream as `kb`,
    /// routing each record by its own tenant tag.
    pub fn from_monolithic(kb: &KnowledgeBase) -> Self {
        let mut sharded = TenantShardedKnowledgeBase::new();
        for r in kb.records() {
            sharded.record(r.clone());
        }
        sharded
    }

    /// Assembles a two-key base from per-shard record streams (e.g. the
    /// deploy service's shard map). Each record routes by its own
    /// instance/tenant tags, so the per-shard streams are preserved
    /// exactly; the global arrival order is shard-major in the order
    /// given — the cross-shard interleaving of the original stream is
    /// not reconstructible from shards alone and is not claimed.
    pub fn from_shards<I>(shards: I) -> Self
    where
        I: IntoIterator<Item = KnowledgeBase>,
    {
        let mut out = TenantShardedKnowledgeBase::new();
        for shard in shards {
            for r in shard.records() {
                out.record(r.clone());
            }
        }
        out
    }

    /// Appends one run to the shard owning its (instance, tenant) key and
    /// to the instance's pooled copy, creating both on first sight.
    pub fn record(&mut self, record: RunRecord) {
        let slot = match self
            .keys
            .iter()
            .position(|(i, t)| *i == record.instance && *t == record.tenant)
        {
            Some(slot) => slot,
            None => {
                self.keys
                    .push((record.instance.clone(), record.tenant.clone()));
                self.shards.push(KnowledgeBase::new());
                self.keys.len() - 1
            }
        };
        self.arrival.push(slot as u32);
        self.pool_record(record.clone());
        self.shards[slot].record(record);
    }

    fn pool_record(&mut self, record: RunRecord) {
        let slot = match self.pooled_names.iter().position(|n| *n == record.instance) {
            Some(slot) => slot,
            None => {
                self.pooled_names.push(record.instance.clone());
                self.pooled.push(KnowledgeBase::new());
                self.pooled_names.len() - 1
            }
        };
        self.pooled[slot].record(record);
    }

    fn rebuild_pooled(&mut self) {
        self.pooled_names.clear();
        self.pooled.clear();
        let records: Vec<RunRecord> = self.records_in_arrival_order().cloned().collect();
        for r in records {
            self.pool_record(r);
        }
    }

    /// Total number of stored runs across all shards.
    pub fn len(&self) -> usize {
        self.arrival.len()
    }

    /// `true` when no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.arrival.is_empty()
    }

    /// Number of two-key shards (distinct (instance, tenant) pairs seen).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The (instance, tenant) keys with a shard, in first-seen order.
    pub fn shard_keys(&self) -> &[(String, TenantId)] {
        &self.keys
    }

    /// Distinct tenants seen, in first-seen order.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = Vec::new();
        for (_, t) in &self.keys {
            if !out.contains(t) {
                out.push(t.clone());
            }
        }
        out
    }

    /// The shard holding one tenant's records on one instance type.
    pub fn shard(&self, instance: &str, tenant: &TenantId) -> Option<&KnowledgeBase> {
        self.keys
            .iter()
            .position(|(i, t)| i == instance && t == tenant)
            .map(|slot| &self.shards[slot])
    }

    /// The pooled (all-tenant) copy of one instance type's records, in
    /// arrival order.
    pub fn pooled_shard(&self, instance: &str) -> Option<&KnowledgeBase> {
        self.pooled_names
            .iter()
            .position(|n| n == instance)
            .map(|slot| &self.pooled[slot])
    }

    /// Iterates `((instance, tenant), shard)` pairs in first-seen order.
    pub fn shards(&self) -> impl Iterator<Item = (&(String, TenantId), &KnowledgeBase)> {
        self.keys.iter().zip(self.shards.iter())
    }

    /// Iterates `(instance name, pooled copy)` pairs in first-seen order.
    pub fn pooled_shards(&self) -> impl Iterator<Item = (&str, &KnowledgeBase)> {
        self.pooled_names
            .iter()
            .map(String::as_str)
            .zip(self.pooled.iter())
    }

    /// Per-instance record counts of one tenant's shards — the local-
    /// observation counts [`TransferPolicy::BorrowUntil`] routes on.
    pub fn local_lens(&self, tenant: &TenantId) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for ((instance, t), shard) in self.shards() {
            if t == tenant {
                out.insert(instance.clone(), shard.len());
            }
        }
        out
    }

    /// Iterates every record in global arrival order — the exact stream a
    /// monolithic [`KnowledgeBase`] fed the same runs would hold.
    pub fn records_in_arrival_order(&self) -> impl Iterator<Item = &RunRecord> + '_ {
        let mut cursors = vec![0usize; self.shards.len()];
        self.arrival.iter().map(move |&slot| {
            let slot = slot as usize;
            let r = &self.shards[slot].records()[cursors[slot]];
            cursors[slot] += 1;
            r
        })
    }

    /// Reconstructs the equivalent monolithic base (records in arrival
    /// order, tenant tags intact).
    pub fn to_monolithic(&self) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for r in self.records_in_arrival_order() {
            kb.record(r.clone());
        }
        kb
    }

    /// Saves the two-key base as pretty JSON (pooled copies are derived
    /// and not written).
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let json = serde_json::to_string_pretty(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a base previously written with
    /// [`TenantShardedKnowledgeBase::save`], rebuilding the pooled copies.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let json = std::fs::read_to_string(path)?;
        let mut kb: TenantShardedKnowledgeBase = serde_json::from_str(&json)?;
        check_schema(kb.schema_version)?;
        kb.rebuild_pooled();
        Ok(kb)
    }
}

impl KnowledgeStore for TenantShardedKnowledgeBase {
    fn record(&mut self, record: RunRecord) {
        TenantShardedKnowledgeBase::record(self, record);
    }

    fn len(&self) -> usize {
        TenantShardedKnowledgeBase::len(self)
    }

    fn records_in_arrival_order(&self) -> Box<dyn Iterator<Item = &RunRecord> + '_> {
        Box::new(TenantShardedKnowledgeBase::records_in_arrival_order(self))
    }

    fn to_monolithic(&self) -> KnowledgeBase {
        TenantShardedKnowledgeBase::to_monolithic(self)
    }

    fn save(&self, path: &Path) -> Result<(), CoreError> {
        TenantShardedKnowledgeBase::save(self, path)
    }
}

/// One [`PredictorFamily`] per two-key shard, plus (policy permitting) one
/// per pooled instance shard, with a [`TransferPolicy`] routing every
/// query to the family a tenant is entitled to.
///
/// Families are created from the same `(seed, min_samples)` pair, so a
/// local family is bit-identical to a monolithic family trained on the
/// same shard — the invariant the backend-equivalence proofs rest on.
pub struct TenantShardedPredictor {
    transfer: TransferPolicy,
    /// instance → tenant → that tenant's local family for the instance.
    local: BTreeMap<String, BTreeMap<TenantId, PredictorFamily>>,
    /// instance → the all-tenant pooled family.
    pooled: BTreeMap<String, PredictorFamily>,
    seed: u64,
    min_samples: usize,
}

impl TenantShardedPredictor {
    /// Creates an empty two-key predictor; families materialize lazily on
    /// the first retrain of their shard, all seeded identically.
    pub fn new(seed: u64, min_samples: usize, transfer: TransferPolicy) -> Self {
        TenantShardedPredictor {
            transfer,
            local: BTreeMap::new(),
            pooled: BTreeMap::new(),
            seed,
            min_samples: min_samples.max(2),
        }
    }

    /// The knowledge-base size below which a shard's training is refused.
    pub fn min_samples(&self) -> usize {
        self.min_samples
    }

    /// The active transfer policy.
    pub fn transfer(&self) -> TransferPolicy {
        self.transfer
    }

    /// The local family of one (instance, tenant), if it exists.
    pub fn local_family(&self, instance: &str, tenant: &TenantId) -> Option<&PredictorFamily> {
        self.local.get(instance).and_then(|m| m.get(tenant))
    }

    /// The pooled family of one instance type, if it exists.
    pub fn pooled_family(&self, instance: &str) -> Option<&PredictorFamily> {
        self.pooled.get(instance)
    }

    /// `true` once the (instance, tenant) pair has a trained local family.
    pub fn is_trained_local(&self, instance: &str, tenant: &TenantId) -> bool {
        self.local_family(instance, tenant)
            .is_some_and(PredictorFamily::is_trained)
    }

    /// `true` once the instance type has a trained pooled family.
    pub fn is_trained_pooled(&self, instance: &str) -> bool {
        self.pooled_family(instance)
            .is_some_and(PredictorFamily::is_trained)
    }

    /// Number of trained local families across all (instance, tenant)
    /// pairs.
    pub fn trained_local_shards(&self) -> usize {
        self.local
            .values()
            .flat_map(BTreeMap::values)
            .filter(|f| f.is_trained())
            .count()
    }

    /// The family `tenant`'s queries on `instance` route to under the
    /// transfer policy, given the tenant's local observation count there.
    pub fn route(
        &self,
        instance: &str,
        tenant: &TenantId,
        local_len: usize,
    ) -> Option<&PredictorFamily> {
        match self.transfer {
            TransferPolicy::Isolated => self.local_family(instance, tenant),
            TransferPolicy::Pooled => self.pooled_family(instance),
            TransferPolicy::BorrowUntil(n) => {
                if local_len >= n {
                    self.local_family(instance, tenant)
                } else {
                    self.pooled_family(instance)
                }
            }
        }
    }

    /// Retrains the local family of one (instance, tenant) on that shard's
    /// records, creating the family on first use. `mode` and `n_threads`
    /// behave as in [`PredictorFamily::retrain`].
    ///
    /// # Errors
    ///
    /// Same contract as [`PredictorFamily::retrain`].
    pub fn retrain_local(
        &mut self,
        instance: &str,
        tenant: &TenantId,
        shard: &KnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        let seed = self.seed;
        let min_samples = self.min_samples;
        self.local
            .entry(instance.to_string())
            .or_default()
            .entry(tenant.clone())
            .or_insert_with(|| PredictorFamily::new(seed, min_samples))
            .retrain(shard, mode, n_threads)
    }

    /// Retrains the pooled family of one instance type on the pooled
    /// shard's records, creating the family on first use.
    ///
    /// # Errors
    ///
    /// Same contract as [`PredictorFamily::retrain`].
    pub fn retrain_pooled(
        &mut self,
        instance: &str,
        shard: &KnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        let seed = self.seed;
        let min_samples = self.min_samples;
        self.pooled
            .entry(instance.to_string())
            .or_insert_with(|| PredictorFamily::new(seed, min_samples))
            .retrain(shard, mode, n_threads)
    }

    /// Retrains every shard the transfer policy consults that holds at
    /// least `min_samples` records — the bulk warm-up after a load or
    /// bootstrap; smaller shards are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Propagates the first shard-retrain failure.
    pub fn retrain_all(
        &mut self,
        kb: &TenantShardedKnowledgeBase,
        mode: RetrainMode,
        n_threads: usize,
    ) -> Result<(), CoreError> {
        if self.transfer.uses_local() {
            let keys: Vec<(String, TenantId)> = kb.shard_keys().to_vec();
            for (instance, tenant) in &keys {
                let shard = kb.shard(instance, tenant).expect("key came from the base");
                if shard.len() >= self.min_samples {
                    self.retrain_local(instance, tenant, shard, mode, n_threads)?;
                }
            }
        }
        if self.transfer.uses_pooled() {
            let names: Vec<String> = kb.pooled_shards().map(|(n, _)| n.to_string()).collect();
            for instance in &names {
                let shard = kb.pooled_shard(instance).expect("name came from the base");
                if shard.len() >= self.min_samples {
                    self.retrain_pooled(instance, shard, mode, n_threads)?;
                }
            }
        }
        Ok(())
    }

    /// A [`TimePredictor`] view of the predictor as seen by one tenant,
    /// routing with the given per-instance local observation counts
    /// (usually [`TenantShardedKnowledgeBase::local_lens`], or the virtual
    /// counts of a pipeline's pending decisions).
    pub fn view<'a>(
        &'a self,
        tenant: &'a TenantId,
        local_lens: BTreeMap<String, usize>,
    ) -> TenantView<'a> {
        TenantView {
            predictor: self,
            tenant,
            local_lens,
        }
    }
}

/// What one tenant sees of a [`TenantShardedPredictor`]: Algorithm 1
/// queries route per instance type to the local or pooled family the
/// transfer policy grants this tenant.
pub struct TenantView<'a> {
    predictor: &'a TenantShardedPredictor,
    tenant: &'a TenantId,
    local_lens: BTreeMap<String, usize>,
}

impl TimePredictor for TenantView<'_> {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        let local_len = self.local_lens.get(&instance.name).copied().unwrap_or(0);
        match self.predictor.route(&instance.name, self.tenant, local_len) {
            Some(f) if f.is_trained() => f.predict_each(profile, instance, n_nodes),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }

    fn predict_grid(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        nodes: &[usize],
        out: &mut Vec<f64>,
        scratch: &mut GridScratch,
    ) -> Result<usize, CoreError> {
        let local_len = self.local_lens.get(&instance.name).copied().unwrap_or(0);
        match self.predictor.route(&instance.name, self.tenant, local_len) {
            Some(f) if f.is_trained() => f.predict_grid(profile, instance, nodes, out, scratch),
            _ => Err(disar_ml::MlError::NotFitted.into()),
        }
    }
}

/// [`PendingSim`] plus the virtual local observation counts the routing
/// needs.
struct TenantPendingSim {
    sim: PendingSim,
    /// The current tenant's per-instance local counts once every pending
    /// record has landed.
    virtual_local: BTreeMap<String, usize>,
}

/// The self-optimizing deployer over the two-key tenant layout.
///
/// Behaviourally a [`crate::deploy::ShardedDeployer`] whose records land
/// in (instance × tenant) shards, whose retrains follow the
/// [`TransferPolicy`] (local families, pooled families, or both), and
/// whose selections see only the families the active tenant is entitled
/// to. The deployer serves one tenant at a time
/// ([`TenantShardedDeployer::set_tenant`] switches); pending pipeline
/// decisions are attributed to the tenant that was active when they were
/// selected, so switch tenants only between pipeline batches.
pub struct TenantShardedDeployer {
    core: DeployerCore,
    kb: TenantShardedKnowledgeBase,
    predictor: TenantShardedPredictor,
    tenant: TenantId,
    /// Per-(instance × tenant) drift state: a fire escalates only the
    /// affected shard's next retrain (inert unless the policy enables it).
    drift: BTreeMap<(String, TenantId), DriftState>,
    /// Number of drift-detector fires so far across all shards.
    drift_fires: u64,
}

impl TenantShardedDeployer {
    /// Creates a tenant-aware deployer with an empty knowledge base,
    /// serving the default tenant under `policy.transfer`.
    pub fn new(provider: CloudProvider, policy: DeployPolicy, seed: u64) -> Self {
        Self::from_shared(Arc::new(provider), policy, seed)
    }

    /// Creates a tenant-aware deployer over an already-shared provider.
    pub fn from_shared(provider: Arc<CloudProvider>, policy: DeployPolicy, seed: u64) -> Self {
        TenantShardedDeployer {
            predictor: TenantShardedPredictor::new(seed, 2, policy.transfer),
            core: DeployerCore::new(provider, policy, seed),
            kb: TenantShardedKnowledgeBase::new(),
            tenant: TenantId::default(),
            drift: BTreeMap::new(),
            drift_fires: 0,
        }
    }

    /// Seeds the deployer with a pre-existing two-key base (e.g. loaded
    /// from disk, or [`TenantShardedKnowledgeBase::from_monolithic`]).
    /// Call [`TenantShardedDeployer::warm`] afterwards to train the
    /// shards without waiting for fresh runs.
    pub fn with_knowledge_base(mut self, kb: TenantShardedKnowledgeBase) -> Self {
        self.kb = kb;
        self
    }

    /// Sets the tenant subsequent deploys are attributed to
    /// (builder-style).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Switches the tenant subsequent deploys are attributed to. Do not
    /// switch while pipeline decisions are in flight (see the type docs).
    pub fn set_tenant(&mut self, tenant: TenantId) {
        self.tenant = tenant;
    }

    /// The tenant deploys are currently attributed to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The current two-key knowledge base.
    pub fn knowledge_base(&self) -> &TenantShardedKnowledgeBase {
        &self.kb
    }

    /// Consumes the deployer, returning the two-key base (and dropping
    /// this handle on the shared provider).
    pub fn into_knowledge_base(self) -> TenantShardedKnowledgeBase {
        self.kb
    }

    /// The two-key predictor (e.g. for offline evaluation).
    pub fn predictor(&self) -> &TenantShardedPredictor {
        &self.predictor
    }

    /// The active policy.
    pub fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    /// The underlying cloud provider.
    pub fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    /// Retrains every shard the transfer policy consults that holds
    /// enough records — the bulk warm-up for a pre-seeded base.
    ///
    /// # Errors
    ///
    /// Propagates the first shard-retrain failure.
    pub fn warm(&mut self) -> Result<(), CoreError> {
        self.core.policy.validate()?;
        let mode = self.core.policy.retrain_mode;
        self.predictor
            .retrain_all(&self.kb, mode, self.core.policy.n_threads)
    }

    /// Number of drift-detector fires so far across all (instance ×
    /// tenant) shards (0 with the default
    /// [`crate::drift::DetectorKind::Off`] policy).
    pub fn drift_fires(&self) -> u64 {
        self.drift_fires
    }

    /// Deploys one job: the full select → run → record → retrain cycle
    /// for the active tenant.
    ///
    /// # Errors
    ///
    /// Propagates policy validation, Algorithm 1 (including
    /// [`CoreError::NoFeasibleConfiguration`]) and cloud failures.
    pub fn deploy(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy(self, profile, workload)
    }

    /// Deploys with an operator-forced configuration (manual override);
    /// the run is still recorded and learned from.
    ///
    /// # Errors
    ///
    /// Propagates cloud failures (unknown instance, zero nodes).
    pub fn deploy_manual(
        &mut self,
        profile: &JobProfile,
        workload: &Workload,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployOutcome, CoreError> {
        Deployer::deploy_manual(self, profile, workload, instance, n_nodes)
    }

    /// Replays the two-key retrain schedule over the pending decisions
    /// (attributed to the active tenant). The gates count global records,
    /// local shard sizes and pooled shard sizes — all derivable from the
    /// decisions' instances alone — so the virtual state is exact.
    fn simulate_pending(&self, pending: &[DeployDecision]) -> TenantPendingSim {
        let transfer = self.core.policy.transfer;
        let min_samples = self.predictor.min_samples();
        let mut len = self.kb.len();
        let mut rsr = self.core.runs_since_retrain;
        let mut retrain_pending = false;
        let mut local = self.kb.local_lens(&self.tenant);
        let mut pooled_lens: BTreeMap<&str, usize> = BTreeMap::new();
        let mut newly_local: BTreeSet<&str> = BTreeSet::new();
        let mut newly_pooled: BTreeSet<&str> = BTreeSet::new();
        for d in pending {
            len += 1;
            rsr += 1;
            let local_len = local.entry(d.instance.clone()).or_insert(0);
            *local_len += 1;
            let pooled_len = pooled_lens
                .entry(d.instance.as_str())
                .or_insert_with(|| self.kb.pooled_shard(&d.instance).map_or(0, |s| s.len()));
            *pooled_len += 1;
            if rsr >= self.core.policy.retrain_every {
                let mut fired = false;
                if transfer.uses_local() && *local_len >= min_samples {
                    newly_local.insert(d.instance.as_str());
                    fired = true;
                }
                if transfer.uses_pooled() && *pooled_len >= min_samples {
                    newly_pooled.insert(d.instance.as_str());
                    fired = true;
                }
                if fired {
                    retrain_pending = true;
                    rsr = 0;
                }
            }
        }
        // Covered = every catalog type routes (with its virtual local
        // count) to a family that is trained now or retrains among the
        // pending records.
        let virtual_covered = self.core.provider.catalog().names().iter().all(|n| {
            let local_len = local.get(n.as_str()).copied().unwrap_or(0);
            let use_local = match transfer {
                TransferPolicy::Isolated => true,
                TransferPolicy::Pooled => false,
                TransferPolicy::BorrowUntil(k) => local_len >= k,
            };
            if use_local {
                self.predictor.is_trained_local(n, &self.tenant) || newly_local.contains(n.as_str())
            } else {
                self.predictor.is_trained_pooled(n) || newly_pooled.contains(n.as_str())
            }
        });
        TenantPendingSim {
            sim: PendingSim {
                virtual_len: len,
                virtual_trained: virtual_covered,
                retrain_pending,
            },
            virtual_local: local,
        }
    }
}

impl Deployer for TenantShardedDeployer {
    fn policy(&self) -> &DeployPolicy {
        &self.core.policy
    }

    fn provider(&self) -> &CloudProvider {
        &self.core.provider
    }

    fn provider_handle(&self) -> Arc<CloudProvider> {
        Arc::clone(&self.core.provider)
    }

    fn kb_len(&self) -> usize {
        self.kb.len()
    }

    fn warm(&mut self) -> Result<(), CoreError> {
        TenantShardedDeployer::warm(self)
    }

    fn selection_ready(&self, pending: &[DeployDecision]) -> bool {
        let sim = self.simulate_pending(pending).sim;
        sim.virtual_len < self.core.policy.min_kb_samples
            || !sim.virtual_trained
            || !sim.retrain_pending
    }

    fn select(
        &mut self,
        profile: &JobProfile,
        pending: &[DeployDecision],
    ) -> Result<DeployDecision, CoreError> {
        self.core.policy.validate()?;
        let decision_seed = self.core.next_decision_seed();

        let sim = self.simulate_pending(pending);
        if sim.sim.virtual_len < self.core.policy.min_kb_samples || !sim.sim.virtual_trained {
            let (instance, n_nodes) = self.core.random_config(decision_seed);
            return Ok(DeployDecision {
                mode: DeployMode::Bootstrap,
                instance,
                n_nodes,
                predicted_secs: None,
            });
        }
        let view = self.predictor.view(&self.tenant, sim.virtual_local);
        self.core.ml_select(&view, profile, decision_seed)
    }

    fn begin_manual(
        &mut self,
        instance: &str,
        n_nodes: usize,
    ) -> Result<DeployDecision, CoreError> {
        self.core.manual_decision(instance, n_nodes)
    }

    fn record(
        &mut self,
        profile: &JobProfile,
        decision: &DeployDecision,
        report: &JobReport,
    ) -> Result<(), CoreError> {
        let inst = self.core.provider.catalog().get(&decision.instance)?.clone();
        self.kb.record(
            RunRecord::new(
                *profile,
                &inst,
                decision.n_nodes,
                report.duration_secs,
                report.prorated_cost,
            )
            .with_tenant(self.tenant.clone()),
        );
        self.core.runs_since_retrain += 1;
        // Feed the prediction residual to this shard's drift detector
        // before the retrain gate. Detectors only modulate the retrain
        // *mode*, never whether a retrain fires, so the recorded outcome
        // stream stays independent of detector state (the pending-replay
        // contract [`TenantShardedDeployer::simulate_pending`] relies on).
        let shard_key = (decision.instance.clone(), self.tenant.clone());
        if self.core.policy.drift.enabled() {
            if let Some(residual) = relative_residual(decision, report) {
                let state = self
                    .drift
                    .entry(shard_key.clone())
                    .or_insert_with(|| DriftState::new(&self.core.policy.drift));
                if state.observe(residual) {
                    self.drift_fires += 1;
                }
            }
        }
        if self.core.runs_since_retrain >= self.core.policy.retrain_every {
            let transfer = self.core.policy.transfer;
            let n_threads = self.core.policy.n_threads;
            let mode = self.drift.get(&shard_key).map_or(
                self.core.policy.retrain_mode,
                |s| s.next_mode(self.core.policy.retrain_mode, &self.core.policy.drift),
            );
            let mut fired = false;
            if transfer.uses_local() {
                let shard = self
                    .kb
                    .shard(&decision.instance, &self.tenant)
                    .expect("record() created the shard");
                if shard.len() >= self.predictor.min_samples() {
                    self.predictor.retrain_local(
                        &decision.instance,
                        &self.tenant,
                        shard,
                        mode,
                        n_threads,
                    )?;
                    fired = true;
                }
            }
            if transfer.uses_pooled() {
                let shard = self
                    .kb
                    .pooled_shard(&decision.instance)
                    .expect("record() created the pooled shard");
                if shard.len() >= self.predictor.min_samples() {
                    self.predictor
                        .retrain_pooled(&decision.instance, shard, mode, n_threads)?;
                    fired = true;
                }
            }
            if fired {
                self.core.runs_since_retrain = 0;
                if let Some(s) = self.drift.get_mut(&shard_key) {
                    s.on_retrain_applied();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::ShardedDeployer;
    use disar_cloudsim::InstanceCatalog;
    use disar_engine::EebCharacteristics;

    fn profile(contracts: usize) -> JobProfile {
        JobProfile {
            characteristics: EebCharacteristics {
                representative_contracts: contracts,
                max_horizon: 20,
                fund_assets: 30,
                risk_factors: 2,
            },
            n_outer: 1000,
            n_inner: 50,
        }
    }

    fn workload(contracts: usize) -> Workload {
        Workload::new(
            30.0 * contracts as f64,
            0.02 * contracts as f64,
            0.8 * contracts as f64,
            0.05,
        )
        .unwrap()
    }

    /// An interleaved two-tenant record stream.
    fn mixed_records(n: usize) -> Vec<RunRecord> {
        let cat = InstanceCatalog::paper_catalog();
        let names = cat.names();
        let tenants = [TenantId::new("acme-life"), TenantId::new("bolt-re")];
        (0..n)
            .map(|i| {
                let inst = cat.get(&names[i % names.len()]).unwrap();
                RunRecord::new(
                    profile(50 + (i * 37) % 400),
                    inst,
                    i % 4 + 1,
                    10.0 + i as f64,
                    0.01 * i as f64,
                )
                .with_tenant(tenants[i % tenants.len()].clone())
            })
            .collect()
    }

    fn test_policy(transfer: TransferPolicy) -> DeployPolicy {
        DeployPolicy::builder(50_000.0)
            .max_nodes(4)
            .min_kb_samples(8)
            .n_threads(1)
            .transfer(transfer)
            .build()
    }

    #[test]
    fn two_key_routing_and_local_lens() {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(24) {
            kb.record(r);
        }
        let n_types = InstanceCatalog::paper_catalog().names().len();
        assert_eq!(kb.len(), 24);
        assert_eq!(kb.tenants().len(), 2);
        assert_eq!(kb.shard_count(), n_types * 2);
        let a = TenantId::new("acme-life");
        for ((instance, tenant), shard) in kb.shards() {
            assert!(shard
                .records()
                .iter()
                .all(|r| r.instance == *instance && r.tenant == *tenant));
            assert_eq!(shard.len(), 2);
        }
        // Pooled copies aggregate both tenants per instance type.
        for (name, pooled) in kb.pooled_shards() {
            assert_eq!(pooled.len(), 4);
            assert!(pooled.records().iter().all(|r| r.instance == name));
        }
        let lens = kb.local_lens(&a);
        assert_eq!(lens.len(), n_types);
        assert!(lens.values().all(|&l| l == 2));
        assert!(kb.shard("c3.4xlarge", &TenantId::new("nobody")).is_none());
    }

    #[test]
    fn arrival_order_survives_two_key_sharding() {
        let records = mixed_records(25);
        let mut kb = TenantShardedKnowledgeBase::new();
        let mut mono = KnowledgeBase::new();
        for r in &records {
            kb.record(r.clone());
            mono.record(r.clone());
        }
        let replayed: Vec<&RunRecord> = kb.records_in_arrival_order().collect();
        assert_eq!(replayed.len(), records.len());
        for (got, want) in replayed.iter().zip(&records) {
            assert_eq!(*got, want);
        }
        assert_eq!(kb.to_monolithic(), mono);
        assert_eq!(TenantShardedKnowledgeBase::from_monolithic(&mono), kb);
        // Pooled copies preserve per-instance arrival order too.
        for (name, pooled) in kb.pooled_shards() {
            let want: Vec<&RunRecord> =
                records.iter().filter(|r| r.instance == name).collect();
            assert_eq!(pooled.records().iter().collect::<Vec<_>>(), want);
        }
    }

    #[test]
    fn schema_version_gates_tenant_load() {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(6) {
            kb.record(r);
        }
        let dir = std::env::temp_dir().join("disar-tkb-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Pre-version file (no stamp) still loads, defaulting to CURRENT.
        let mut v = serde_json::to_value(&kb).unwrap();
        v.as_object_mut().unwrap().remove("schema_version").unwrap();
        let path = dir.join("tkb_pre_version.json");
        std::fs::write(&path, v.to_string()).unwrap();
        let loaded = TenantShardedKnowledgeBase::load(&path).unwrap();
        assert_eq!(loaded.schema_version, SchemaVersion::CURRENT);
        assert_eq!(loaded, kb);
        std::fs::remove_file(&path).ok();

        // A newer-than-supported stamp is rejected loudly.
        kb.schema_version = SchemaVersion(SchemaVersion::CURRENT.0 + 1);
        let path = dir.join("tkb_future.json");
        kb.save(&path).unwrap();
        assert!(matches!(
            TenantShardedKnowledgeBase::load(&path),
            Err(CoreError::UnsupportedSchema { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_rebuilds_pooled_copies() {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(18) {
            kb.record(r);
        }
        let dir = std::env::temp_dir().join("disar-tkb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tkb.json");
        kb.save(&path).unwrap();
        let loaded = TenantShardedKnowledgeBase::load(&path).unwrap();
        assert_eq!(kb, loaded);
        assert_eq!(loaded.to_monolithic(), kb.to_monolithic());
        for (name, pooled) in kb.pooled_shards() {
            assert_eq!(loaded.pooled_shard(name).unwrap(), pooled);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transfer_policy_routing_table() {
        assert!(TransferPolicy::Isolated.uses_local());
        assert!(!TransferPolicy::Isolated.uses_pooled());
        assert!(!TransferPolicy::Pooled.uses_local());
        assert!(TransferPolicy::Pooled.uses_pooled());
        assert!(TransferPolicy::BorrowUntil(5).uses_local());
        assert!(TransferPolicy::BorrowUntil(5).uses_pooled());
    }

    /// Trains local families for tenant A and a pooled family, then checks
    /// each policy routes queries to the family it promises.
    #[test]
    fn routing_respects_transfer_policy() {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(48) {
            kb.record(r);
        }
        let a = TenantId::new("acme-life");
        let instance = "c3.4xlarge";
        let local_shard = kb.shard(instance, &a).unwrap();
        let pooled_shard = kb.pooled_shard(instance).unwrap();

        for transfer in [
            TransferPolicy::Isolated,
            TransferPolicy::Pooled,
            TransferPolicy::BorrowUntil(3),
        ] {
            let mut p = TenantShardedPredictor::new(7, 2, transfer);
            if transfer.uses_local() {
                p.retrain_local(instance, &a, local_shard, RetrainMode::Incremental, 1)
                    .unwrap();
            }
            if transfer.uses_pooled() {
                p.retrain_pooled(instance, pooled_shard, RetrainMode::Incremental, 1)
                    .unwrap();
            }
            // Reference families trained on the same shards.
            let mut local_ref = PredictorFamily::new(7, 2);
            local_ref
                .retrain(local_shard, RetrainMode::Incremental, 1)
                .unwrap();
            let mut pooled_ref = PredictorFamily::new(7, 2);
            pooled_ref
                .retrain(pooled_shard, RetrainMode::Incremental, 1)
                .unwrap();

            let cat = InstanceCatalog::paper_catalog();
            let inst = cat.get(instance).unwrap();
            let below = p.route(instance, &a, 2).unwrap();
            let above = p.route(instance, &a, 3).unwrap();
            let (want_below, want_above): (&PredictorFamily, &PredictorFamily) = match transfer {
                TransferPolicy::Isolated => (&local_ref, &local_ref),
                TransferPolicy::Pooled => (&pooled_ref, &pooled_ref),
                TransferPolicy::BorrowUntil(_) => (&pooled_ref, &local_ref),
            };
            for (got, want) in [(below, want_below), (above, want_above)] {
                assert_eq!(
                    got.predict_each(&profile(123), inst, 2).unwrap(),
                    want.predict_each(&profile(123), inst, 2).unwrap(),
                    "routing diverged under {transfer:?}"
                );
            }
        }
    }

    #[test]
    fn single_tenant_isolated_matches_sharded_deployer() {
        // The acceptance invariant, deterministic edition: one tenant,
        // Isolated transfer → selections, outcomes and the canonical KB
        // stream are bit-identical to the instance-sharded backend.
        let run_tenant = || {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 23);
            let mut d =
                TenantShardedDeployer::new(provider, test_policy(TransferPolicy::Isolated), 23);
            let outs: Vec<DeployOutcome> = (0..30)
                .map(|i| {
                    let c = 70 + (i * 13) % 250;
                    d.deploy(&profile(c), &workload(c)).unwrap()
                })
                .collect();
            (outs, d.into_knowledge_base().to_monolithic())
        };
        let run_sharded = || {
            let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 23);
            let mut d = ShardedDeployer::new(provider, test_policy(TransferPolicy::Isolated), 23);
            let outs: Vec<DeployOutcome> = (0..30)
                .map(|i| {
                    let c = 70 + (i * 13) % 250;
                    d.deploy(&profile(c), &workload(c)).unwrap()
                })
                .collect();
            (outs, d.into_knowledge_base().to_monolithic())
        };
        let (t_outs, t_kb) = run_tenant();
        let (s_outs, s_kb) = run_sharded();
        assert_eq!(t_outs, s_outs);
        assert_eq!(t_kb, s_kb);
    }

    #[test]
    fn pooled_transfer_lets_a_new_tenant_skip_bootstrap() {
        // Tenant A bootstraps the pooled families; a fresh tenant B then
        // deploys ML-first under Pooled, but must re-bootstrap under
        // Isolated.
        let reach_ml = |d: &mut TenantShardedDeployer| {
            for i in 0..200 {
                let c = 80 + (i * 19) % 300;
                if d.deploy(&profile(c), &workload(c)).unwrap().mode != DeployMode::Bootstrap {
                    return true;
                }
            }
            false
        };
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 31);
        let mut pooled =
            TenantShardedDeployer::new(provider, test_policy(TransferPolicy::Pooled), 31)
                .with_tenant(TenantId::new("acme-life"));
        assert!(reach_ml(&mut pooled), "tenant A never reached the ML phase");
        pooled.set_tenant(TenantId::new("bolt-re"));
        let out = pooled.deploy(&profile(150), &workload(150)).unwrap();
        assert!(
            matches!(out.mode, DeployMode::MlGreedy | DeployMode::MlExplored),
            "pooled transfer should serve the new tenant immediately"
        );

        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 31);
        let mut isolated =
            TenantShardedDeployer::new(provider, test_policy(TransferPolicy::Isolated), 31)
                .with_tenant(TenantId::new("acme-life"));
        assert!(reach_ml(&mut isolated), "tenant A never reached the ML phase");
        isolated.set_tenant(TenantId::new("bolt-re"));
        let out = isolated.deploy(&profile(150), &workload(150)).unwrap();
        assert_eq!(
            out.mode,
            DeployMode::Bootstrap,
            "isolated tenants must not see each other's knowledge"
        );
    }

    #[test]
    fn borrow_until_switches_from_pooled_to_local() {
        // Under BorrowUntil(n), a tenant's routing flips to its own family
        // exactly when its local count on the instance reaches n.
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(48) {
            kb.record(r);
        }
        let a = TenantId::new("acme-life");
        let instance = "c3.4xlarge";
        let mut p = TenantShardedPredictor::new(3, 2, TransferPolicy::BorrowUntil(4));
        p.retrain_local(
            instance,
            &a,
            kb.shard(instance, &a).unwrap(),
            RetrainMode::Incremental,
            1,
        )
        .unwrap();
        p.retrain_pooled(
            instance,
            kb.pooled_shard(instance).unwrap(),
            RetrainMode::Incremental,
            1,
        )
        .unwrap();
        let cat = InstanceCatalog::paper_catalog();
        let inst = cat.get(instance).unwrap();
        let predict = |lens: usize| {
            let view = p.view(&a, BTreeMap::from([(instance.to_string(), lens)]));
            view.predict_each(&profile(123), inst, 2).unwrap()
        };
        assert_eq!(predict(0), predict(3), "below the threshold: pooled");
        assert_eq!(predict(4), predict(9), "at/past the threshold: local");
        assert_ne!(
            predict(3),
            predict(4),
            "pooled and local families should differ on a two-tenant base"
        );
    }

    #[test]
    fn warm_trains_preseeded_two_key_base() {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in mixed_records(48) {
            kb.record(r);
        }
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 41);
        let mut d = TenantShardedDeployer::new(
            provider,
            test_policy(TransferPolicy::BorrowUntil(10)),
            41,
        )
        .with_knowledge_base(kb)
        .with_tenant(TenantId::new("acme-life"));
        d.warm().unwrap();
        let n_types = InstanceCatalog::paper_catalog().names().len();
        // Both tenants' local families and every pooled family trained.
        assert_eq!(d.predictor().trained_local_shards(), n_types * 2);
        for name in InstanceCatalog::paper_catalog().names() {
            assert!(d.predictor().is_trained_pooled(&name));
        }
        // Local counts (2 each) sit below BorrowUntil(10): the first
        // selection routes pooled and is ML immediately.
        let out = d.deploy(&profile(150), &workload(150)).unwrap();
        assert!(matches!(
            out.mode,
            DeployMode::MlGreedy | DeployMode::MlExplored
        ));
    }

    #[test]
    fn tenant_readiness_tracks_two_key_gates() {
        // Mirrors the sharded readiness test: once in the ML phase with
        // retrain_every = 1, any pending record fires a retrain → not
        // ready; an empty pending set is always ready.
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 53);
        let mut d =
            TenantShardedDeployer::new(provider, test_policy(TransferPolicy::Isolated), 53);
        let mut ml = false;
        for i in 0..120 {
            let c = 60 + (i * 29) % 280;
            if d.deploy(&profile(c), &workload(c)).unwrap().mode != DeployMode::Bootstrap {
                ml = true;
                break;
            }
        }
        assert!(ml, "ML phase never reached");
        let pending = vec![DeployDecision {
            mode: DeployMode::Manual,
            instance: "c3.4xlarge".to_string(),
            n_nodes: 1,
            predicted_secs: None,
        }];
        assert!(d.selection_ready(&[]));
        assert!(!d.selection_ready(&pending));
    }
}
