//! Property-based tests of the DISAR orchestration layer.

use disar_actuarial::portfolio::PortfolioSpec;
use disar_alm::SegregatedFund;
use disar_engine::complexity::ComplexityModel;
use disar_engine::eeb::{decompose, EebKind};
use disar_engine::simulation::{MarketModel, SimulationSpec, DEFAULT_LANE};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SimulationSpec> {
    (
        50usize..400,
        10usize..200,
        2usize..30,
        prop_oneof![
            Just(MarketModel::RatesEquity),
            Just(MarketModel::RatesEquityFx),
            Just(MarketModel::Full),
        ],
        0u64..100,
    )
        .prop_map(|(n_policies, n_outer, n_inner, market, seed)| {
            let portfolio = PortfolioSpec {
                n_policies,
                ..PortfolioSpec::default()
            }
            .generate("prop", seed)
            .expect("valid spec");
            SimulationSpec {
                portfolio,
                fund: SegregatedFund::italian_typical(20),
                market,
                n_outer,
                n_inner,
                steps_per_year: 12,
                seed,
                lane: DEFAULT_LANE,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decomposition conserves model points (in the type-B view), pairs
    /// every block with a type-A sibling, and yields balanced block sizes.
    #[test]
    fn decomposition_invariants(spec in spec_strategy(), n_blocks in 1usize..10) {
        let points = spec.portfolio.model_points.len();
        prop_assume!(n_blocks <= points);
        let eebs = decompose(&spec, n_blocks).expect("valid");
        prop_assert_eq!(eebs.len(), 2 * n_blocks);
        let b_sizes: Vec<usize> = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| e.model_points.len())
            .collect();
        prop_assert_eq!(b_sizes.iter().sum::<usize>(), points);
        let min = b_sizes.iter().min().expect("non-empty");
        let max = b_sizes.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1);
        for e in &eebs {
            prop_assert_eq!(
                e.characteristics.representative_contracts,
                e.model_points.len()
            );
            prop_assert_eq!(e.characteristics.risk_factors, spec.market.risk_factors());
        }
    }

    /// Complexity estimates are positive, linear in path pairs, and
    /// monotone in every characteristic parameter.
    #[test]
    fn complexity_monotonicity(spec in spec_strategy()) {
        let m = ComplexityModel::default();
        let eebs = decompose(&spec, 2).expect("valid");
        let b = eebs
            .iter()
            .find(|e| e.kind == EebKind::AlmValuation)
            .expect("exists");
        let w = m.work_units(b, &spec);
        prop_assert!(w > 0.0);

        let mut doubled = spec.clone();
        doubled.n_outer *= 2;
        let w2 = m.work_units(b, &doubled);
        prop_assert!((w2 / w - 2.0).abs() < 1e-9);

        let mut bigger = b.clone();
        bigger.characteristics.representative_contracts += 10;
        prop_assert!(m.work_units(&bigger, &spec) > w);
        let mut longer = b.clone();
        longer.characteristics.max_horizon += 5;
        prop_assert!(m.work_units(&longer, &spec) > w);
    }

    /// The merged cloud workload equals the sum of per-block workloads.
    #[test]
    fn merged_workload_additive(spec in spec_strategy(), n_blocks in 1usize..8) {
        prop_assume!(n_blocks <= spec.portfolio.model_points.len());
        let m = ComplexityModel::default();
        let eebs = decompose(&spec, n_blocks).expect("valid");
        let merged = m.merged_workload(&eebs, &spec).expect("has type-B");
        let sum: f64 = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| m.workload(e, &spec).expect("type-B").work_units)
            .sum();
        prop_assert!((merged.work_units - sum).abs() < 1e-6 * sum.max(1.0));
    }
}
