use std::error::Error;
use std::fmt;

/// Error type for the DISAR orchestration layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// The actuarial substrate failed.
    Actuarial(String),
    /// The ALM valuation failed.
    Alm(String),
    /// The stochastic substrate failed.
    Stochastic(String),
    /// The cloud simulator rejected a request.
    Cloud(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            EngineError::Actuarial(what) => write!(f, "actuarial engine failed: {what}"),
            EngineError::Alm(what) => write!(f, "ALM engine failed: {what}"),
            EngineError::Stochastic(what) => write!(f, "scenario generation failed: {what}"),
            EngineError::Cloud(what) => write!(f, "cloud request failed: {what}"),
        }
    }
}

impl Error for EngineError {}

impl From<disar_actuarial::ActuarialError> for EngineError {
    fn from(e: disar_actuarial::ActuarialError) -> Self {
        EngineError::Actuarial(e.to_string())
    }
}

impl From<disar_alm::AlmError> for EngineError {
    fn from(e: disar_alm::AlmError) -> Self {
        EngineError::Alm(e.to_string())
    }
}

impl From<disar_stochastic::StochasticError> for EngineError {
    fn from(e: disar_stochastic::StochasticError) -> Self {
        EngineError::Stochastic(e.to_string())
    }
}

impl From<disar_cloudsim::CloudError> for EngineError {
    fn from(e: disar_cloudsim::CloudError) -> Self {
        EngineError::Cloud(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: EngineError = disar_actuarial::ActuarialError::EmptyPortfolio.into();
        assert!(matches!(e, EngineError::Actuarial(_)));
        let e: EngineError = disar_cloudsim::CloudError::InvalidParameter("x").into();
        assert!(matches!(e, EngineError::Cloud(_)));
    }
}
