//! Simulation specification and market-model construction.
//!
//! A [`SimulationSpec`] is everything a Solvency II run needs: the policy
//! portfolio, the segregated fund backing it, the market model (risk
//! drivers + correlations) and the Monte Carlo sizes `nP`/`nQ`. It also
//! carries the *characteristic parameters* the paper's ML models key on.

use crate::EngineError;
use disar_actuarial::portfolio::Portfolio;
use disar_alm::{NestedConfig, SegregatedFund};
use disar_stochastic::drivers::{Cir, FxRate, Gbm, Vasicek};
use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};
use disar_stochastic::CorrelationMatrix;
use serde::{Deserialize, Serialize};

// Re-exported so spec-building callers can say `lane: DEFAULT_LANE` without
// depending on disar-stochastic directly.
pub use disar_stochastic::scenario::DEFAULT_LANE;

fn default_lane() -> usize {
    DEFAULT_LANE
}

/// How rich the market model is — drives the paper's "number of financial
/// risk-factors" feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarketModel {
    /// Short rate + equity (2 risk factors).
    RatesEquity,
    /// Short rate + equity + FX (3 risk factors).
    RatesEquityFx,
    /// Short rate + equity + FX + credit intensity (4 risk factors).
    Full,
}

impl MarketModel {
    /// Number of financial risk factors in the model.
    pub fn risk_factors(self) -> usize {
        match self {
            MarketModel::RatesEquity => 2,
            MarketModel::RatesEquityFx => 3,
            MarketModel::Full => 4,
        }
    }

    /// Index of the equity driver in generators built from this model.
    pub fn equity_driver(self) -> usize {
        1
    }

    /// Index of the short-rate driver in generators built from this model.
    pub fn rate_driver(self) -> usize {
        0
    }

    /// Builds a scenario generator over `horizon` years at `steps_per_year`
    /// resolution. Driver order: rate, equity, \[fx\], \[credit\].
    ///
    /// # Errors
    ///
    /// Propagates driver/grid construction failures (none for the built-in
    /// parameterization).
    pub fn build_generator(
        self,
        horizon: f64,
        steps_per_year: usize,
    ) -> Result<ScenarioGenerator, EngineError> {
        let mut builder = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.025, 0.35, 0.028, 0.009, 0.18)?))
            .driver(Box::new(Gbm::new(100.0, 0.065, 0.17, 0.025)?));
        let correlation = match self {
            MarketModel::RatesEquity => {
                CorrelationMatrix::new(vec![vec![1.0, -0.25], vec![-0.25, 1.0]])?
            }
            MarketModel::RatesEquityFx => {
                builder = builder.driver(Box::new(FxRate::new(1.1, 0.01, 0.09, 0.005)?));
                CorrelationMatrix::new(vec![
                    vec![1.0, -0.25, 0.10],
                    vec![-0.25, 1.0, -0.15],
                    vec![0.10, -0.15, 1.0],
                ])?
            }
            MarketModel::Full => {
                builder = builder
                    .driver(Box::new(FxRate::new(1.1, 0.01, 0.09, 0.005)?))
                    .driver(Box::new(Cir::default_intensity(0.012, 0.6, 0.015, 0.05)?));
                CorrelationMatrix::new(vec![
                    vec![1.0, -0.25, 0.10, 0.20],
                    vec![-0.25, 1.0, -0.15, -0.30],
                    vec![0.10, -0.15, 1.0, 0.05],
                    vec![0.20, -0.30, 0.05, 1.0],
                ])?
            }
        };
        builder
            .correlation(correlation)
            .grid(TimeGrid::new(horizon, steps_per_year)?)
            .build()
            .map_err(EngineError::from)
    }
}

/// A complete Solvency II simulation request — what a DISAR user submits
/// through DiInt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationSpec {
    /// The policy portfolio.
    pub portfolio: Portfolio,
    /// The segregated fund backing the portfolio.
    pub fund: SegregatedFund,
    /// Market-model richness.
    pub market: MarketModel,
    /// Outer ("natural") path count `nP`.
    pub n_outer: usize,
    /// Inner (risk-neutral) path count `nQ`.
    pub n_inner: usize,
    /// Scenario resolution (steps per year of the fine grid).
    pub steps_per_year: usize,
    /// Master seed of the whole run.
    pub seed: u64,
    /// Path-block (lane) width of the scenario kernels; `1` is the scalar
    /// escape hatch. Bit-identical results for every width — a throughput
    /// knob only.
    #[serde(default = "default_lane")]
    pub lane: usize,
}

impl SimulationSpec {
    /// The paper's §IV setting: `nQ = 50`, `nP = 1000`, monthly grid.
    pub fn paper_defaults(
        portfolio: Portfolio,
        fund: SegregatedFund,
        seed: u64,
    ) -> Self {
        SimulationSpec {
            portfolio,
            fund,
            market: MarketModel::RatesEquity,
            n_outer: 1000,
            n_inner: 50,
            steps_per_year: 12,
            seed,
            lane: DEFAULT_LANE,
        }
    }

    /// The nested-Monte-Carlo configuration this spec induces: its path
    /// counts and seed at the regulatory 99.5 % confidence, sequential
    /// plain sampling. Callers that parallelize do so *across* EEBs (the
    /// master's LPT schedule), so the per-EEB nested run stays
    /// single-threaded — which also lets it reuse one caller-owned
    /// `ValuationWorkspace` across EEBs.
    pub fn nested_config(&self) -> NestedConfig {
        NestedConfig {
            n_outer: self.n_outer,
            n_inner: self.n_inner,
            confidence: 0.995,
            seed: self.seed,
            threads: 1,
            antithetic: false,
            lane: self.lane,
        }
    }

    /// Validates the Monte Carlo sizes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidParameter`] for zero path counts or
    /// resolution.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.n_outer == 0 || self.n_inner == 0 {
            return Err(EngineError::InvalidParameter(
                "n_outer and n_inner must be > 0",
            ));
        }
        if self.steps_per_year == 0 {
            return Err(EngineError::InvalidParameter("steps_per_year must be > 0"));
        }
        if self.lane == 0 {
            return Err(EngineError::InvalidParameter("lane must be > 0"));
        }
        if self.portfolio.model_points.is_empty() {
            return Err(EngineError::InvalidParameter("portfolio is empty"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_actuarial::portfolio::PortfolioSpec;
    use disar_stochastic::scenario::Measure;

    fn small_portfolio() -> Portfolio {
        PortfolioSpec {
            n_policies: 100,
            ..PortfolioSpec::default()
        }
        .generate("t", 1)
        .unwrap()
    }

    #[test]
    fn risk_factor_counts() {
        assert_eq!(MarketModel::RatesEquity.risk_factors(), 2);
        assert_eq!(MarketModel::RatesEquityFx.risk_factors(), 3);
        assert_eq!(MarketModel::Full.risk_factors(), 4);
    }

    #[test]
    fn generators_have_declared_driver_count() {
        for m in [
            MarketModel::RatesEquity,
            MarketModel::RatesEquityFx,
            MarketModel::Full,
        ] {
            let g = m.build_generator(5.0, 12).unwrap();
            assert_eq!(g.n_drivers(), m.risk_factors());
            // Smoke-generate a couple of paths.
            let set = g.generate(Measure::RiskNeutral, 2, 1, None).unwrap();
            assert_eq!(set.n_drivers(), m.risk_factors());
            assert_eq!(set.short_rate_index(), Some(0));
        }
    }

    #[test]
    fn paper_defaults_match_section_iv() {
        let spec = SimulationSpec::paper_defaults(
            small_portfolio(),
            SegregatedFund::italian_typical(30),
            7,
        );
        assert_eq!(spec.n_outer, 1000);
        assert_eq!(spec.n_inner, 50);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn nested_config_mirrors_spec() {
        let spec = SimulationSpec::paper_defaults(
            small_portfolio(),
            SegregatedFund::italian_typical(30),
            42,
        );
        let cfg = spec.nested_config();
        assert_eq!(cfg.n_outer, spec.n_outer);
        assert_eq!(cfg.n_inner, spec.n_inner);
        assert_eq!(cfg.seed, spec.seed);
        assert_eq!(cfg.confidence, 0.995);
        assert_eq!(cfg.threads, 1);
        assert!(!cfg.antithetic);
        assert_eq!(cfg.lane, spec.lane);
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        let mut spec = SimulationSpec::paper_defaults(
            small_portfolio(),
            SegregatedFund::italian_typical(30),
            7,
        );
        spec.n_outer = 0;
        assert!(spec.validate().is_err());
        spec.n_outer = 10;
        spec.steps_per_year = 0;
        assert!(spec.validate().is_err());
        spec.steps_per_year = 12;
        spec.lane = 0;
        assert!(spec.validate().is_err());
    }
}
