//! Complexity estimation — DiMaS "estimates the complexity of the
//! elaborations" (§II).
//!
//! The cost drivers of a type-B EEB are exactly the paper's characteristic
//! parameters: a nested valuation touches every (outer path × inner path ×
//! policy year × representative contract), risk-factor count scales the
//! scenario-generation work, and the fund's asset count scales the per-step
//! bookkeeping. The estimator maps an EEB to a [`Workload`] in abstract
//! work units (≈ reference-core seconds) that the cloud simulator prices.

use crate::eeb::{Eeb, EebKind};
use crate::simulation::SimulationSpec;
use crate::EngineError;
use disar_cloudsim::Workload;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the complexity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexityModel {
    /// Work units per (contract × horizon-year × path-pair) for type B.
    pub alm_unit_cost: f64,
    /// Work units per (contract × horizon-year) for type A.
    pub actuarial_unit_cost: f64,
    /// Extra work per risk factor (scenario generation), multiplicative.
    pub risk_factor_cost: f64,
    /// Extra work per fund asset position, multiplicative per 10 assets.
    pub asset_cost: f64,
    /// Memory per representative contract (GiB).
    pub memory_per_contract_gib: f64,
    /// Scatter+gather payload per contract (MiB).
    pub transfer_per_contract_mib: f64,
    /// Serial (non-parallelizable) fraction of a type-B job.
    pub serial_fraction: f64,
}

impl Default for ComplexityModel {
    fn default() -> Self {
        ComplexityModel {
            alm_unit_cost: 2.4e-6,
            actuarial_unit_cost: 1e-5,
            risk_factor_cost: 0.35,
            asset_cost: 0.08,
            memory_per_contract_gib: 0.02,
            transfer_per_contract_mib: 0.8,
            serial_fraction: 0.05,
        }
    }
}

impl ComplexityModel {
    /// Estimated work units for one EEB under the given simulation sizes.
    pub fn work_units(&self, eeb: &Eeb, spec: &SimulationSpec) -> f64 {
        let c = &eeb.characteristics;
        let contracts = c.representative_contracts as f64;
        let horizon = c.max_horizon as f64;
        let factor_scale = 1.0 + self.risk_factor_cost * (c.risk_factors as f64 - 1.0);
        let asset_scale = 1.0 + self.asset_cost * (c.fund_assets as f64 / 10.0);
        match eeb.kind {
            EebKind::ActuarialValuation => {
                self.actuarial_unit_cost * contracts * horizon
            }
            EebKind::AlmValuation => {
                let path_pairs = (spec.n_outer * spec.n_inner) as f64;
                self.alm_unit_cost
                    * contracts
                    * horizon
                    * path_pairs
                    * factor_scale
                    * asset_scale
                    * spec.steps_per_year as f64
                    / 12.0
            }
        }
    }

    /// The full cloud workload of one type-B EEB.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidParameter`] when called on a type-A
    /// block (those are not offloaded) or when the estimate degenerates.
    pub fn workload(&self, eeb: &Eeb, spec: &SimulationSpec) -> Result<Workload, EngineError> {
        if eeb.kind != EebKind::AlmValuation {
            return Err(EngineError::InvalidParameter(
                "only type-B EEBs are offloaded to the cloud",
            ));
        }
        let contracts = eeb.characteristics.representative_contracts as f64;
        Workload::new(
            self.work_units(eeb, spec),
            self.memory_per_contract_gib * contracts,
            self.transfer_per_contract_mib * contracts,
            self.serial_fraction,
        )
        .map_err(|_| EngineError::InvalidParameter("degenerate workload estimate"))
    }

    /// Merged workload of several type-B EEBs submitted as one cloud job.
    ///
    /// # Errors
    ///
    /// Propagates [`ComplexityModel::workload`]; rejects an empty slice.
    pub fn merged_workload(
        &self,
        eebs: &[Eeb],
        spec: &SimulationSpec,
    ) -> Result<Workload, EngineError> {
        let mut iter = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation);
        let first = iter
            .next()
            .ok_or(EngineError::InvalidParameter("no type-B EEBs to merge"))?;
        let mut acc = self.workload(first, spec)?;
        for e in iter {
            acc = acc.merge(&self.workload(e, spec)?);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eeb::decompose;
    use crate::simulation::MarketModel;
    use disar_actuarial::portfolio::PortfolioSpec;
    use disar_alm::SegregatedFund;

    fn spec(n_outer: usize, n_inner: usize, market: MarketModel) -> SimulationSpec {
        let portfolio = PortfolioSpec {
            n_policies: 1_500,
            ..PortfolioSpec::default()
        }
        .generate("t", 5)
        .unwrap();
        SimulationSpec {
            portfolio,
            fund: SegregatedFund::italian_typical(30),
            market,
            n_outer,
            n_inner,
            steps_per_year: 12,
            seed: 1,
            lane: crate::simulation::DEFAULT_LANE,
        }
    }

    #[test]
    fn type_b_dominates_type_a() {
        let s = spec(1000, 50, MarketModel::RatesEquity);
        let eebs = decompose(&s, 3).unwrap();
        let m = ComplexityModel::default();
        let a: f64 = eebs
            .iter()
            .filter(|e| e.kind == EebKind::ActuarialValuation)
            .map(|e| m.work_units(e, &s))
            .sum();
        let b: f64 = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| m.work_units(e, &s))
            .sum();
        assert!(
            b > 100.0 * a,
            "ALM work ({b}) must dwarf actuarial work ({a}) — the paper's premise"
        );
    }

    #[test]
    fn work_scales_linearly_in_paths() {
        let s1 = spec(500, 50, MarketModel::RatesEquity);
        let s2 = spec(1000, 50, MarketModel::RatesEquity);
        let m = ComplexityModel::default();
        let e1 = decompose(&s1, 2).unwrap();
        let e2 = decompose(&s2, 2).unwrap();
        let b1 = m.work_units(&e1[1], &s1);
        let b2 = m.work_units(&e2[1], &s2);
        assert!((b2 / b1 - 2.0).abs() < 1e-9, "ratio {}", b2 / b1);
    }

    #[test]
    fn more_risk_factors_more_work() {
        let s2 = spec(500, 50, MarketModel::RatesEquity);
        let s4 = spec(500, 50, MarketModel::Full);
        let m = ComplexityModel::default();
        let b2 = m.work_units(&decompose(&s2, 2).unwrap()[1], &s2);
        let b4 = m.work_units(&decompose(&s4, 2).unwrap()[1], &s4);
        assert!(b4 > b2);
    }

    #[test]
    fn workload_only_for_type_b() {
        let s = spec(100, 10, MarketModel::RatesEquity);
        let eebs = decompose(&s, 2).unwrap();
        let m = ComplexityModel::default();
        let a = eebs
            .iter()
            .find(|e| e.kind == EebKind::ActuarialValuation)
            .unwrap();
        let b = eebs
            .iter()
            .find(|e| e.kind == EebKind::AlmValuation)
            .unwrap();
        assert!(m.workload(a, &s).is_err());
        let wl = m.workload(b, &s).unwrap();
        assert!(wl.work_units > 0.0);
        assert!(wl.memory_gib > 0.0);
        assert_eq!(wl.serial_fraction, m.serial_fraction);
    }

    #[test]
    fn merged_workload_adds_up() {
        let s = spec(100, 10, MarketModel::RatesEquity);
        let eebs = decompose(&s, 3).unwrap();
        let m = ComplexityModel::default();
        let merged = m.merged_workload(&eebs, &s).unwrap();
        let sum: f64 = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| m.workload(e, &s).unwrap().work_units)
            .sum();
        assert!((merged.work_units - sum).abs() < 1e-9);
        assert!(m.merged_workload(&[], &s).is_err());
    }

    #[test]
    fn paper_scale_runs_take_minutes_not_days() {
        // The paper reports execution times up to ~4000 s (Fig. 2). A full
        // paper-scale simulation (1000×50) on our default complexity model
        // should land in that order of magnitude on one reference core
        // (before the ~5-9× instance speedup).
        let s = spec(1000, 50, MarketModel::RatesEquity);
        let m = ComplexityModel::default();
        let merged = m
            .merged_workload(&decompose(&s, 5).unwrap(), &s)
            .unwrap();
        assert!(
            (1_000.0..100_000.0).contains(&merged.work_units),
            "sequential seconds ≈ {}",
            merged.work_units
        );
    }
}
