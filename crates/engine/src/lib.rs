//! The DISAR architecture: orchestration of elementary elaboration blocks.
//!
//! This crate reproduces the client/server organization of §II:
//!
//! - [`eeb`]: *elementary elaboration blocks* — "a set of elaborations
//!   identified by common characteristics that make them identical from the
//!   point of view of risks" — of type A (actuarial valuation) and type B
//!   (ALM valuation), plus the per-EEB characteristic parameters that form
//!   the paper's ML feature vector;
//! - [`simulation`]: the simulation specification (portfolio, segregated
//!   fund, market model, `nP`/`nQ`) and market-model construction;
//! - [`complexity`]: DiMaS's complexity estimation — mapping an EEB to a
//!   [`disar_cloudsim::Workload`] the cloud can price;
//! - [`scheduler`]: longest-processing-time scheduling of EEBs over
//!   computing units;
//! - [`master`]: **DiMaS**, the master service: decomposes input into EEBs,
//!   estimates complexity, schedules, dispatches to DiActEng/DiAlmEng, and
//!   gathers results. Two backends are provided: a *local grid* of threads
//!   (real computation, real wall-clock) and the *simulated cloud*
//!   (workload handed to [`disar_cloudsim`]).

pub mod complexity;
pub mod eeb;
pub mod master;
pub mod progress;
pub mod scheduler;
pub mod simulation;

mod error;

pub use eeb::{Eeb, EebCharacteristics, EebKind};
pub use error::EngineError;
pub use master::DisarMaster;
pub use simulation::SimulationSpec;
