//! Elementary elaboration blocks (EEBs).
//!
//! "DISAR allows an efficient parallelization of the computation because it
//! relies on elementary elaboration blocks (EEB), which are a set of
//! elaborations identified by common characteristics that make them
//! identical from the point of view of risks. In particular, two types of
//! EEBs are considered: A) actuarial valuation … and B) Asset-Liability
//! Management valuation" (§II).
//!
//! An [`Eeb`] is a slice of the portfolio (a group of model points sharing
//! product characteristics) tagged with its type and with the
//! characteristic parameters the paper feeds to the ML models:
//! representative-contract count, maximum horizon, segregated-fund asset
//! number and financial risk-factor count.

use crate::simulation::SimulationSpec;
use crate::EngineError;
use disar_actuarial::model_points::ModelPoint;
use serde::{Deserialize, Serialize};

/// The two EEB types of §II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EebKind {
    /// Type A: actuarial valuation (probabilized cash flows) — DiActEng.
    ActuarialValuation,
    /// Type B: market-consistent ALM valuation — DiAlmEng. The
    /// time-dominant kind the paper offloads to the cloud.
    AlmValuation,
}

/// The characteristic parameters of an EEB — "the parameters … that induce
/// the highest variability in the execution time" (§III), i.e. the ML
/// feature vector `f`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EebCharacteristics {
    /// Number of representative contracts in the block.
    pub representative_contracts: usize,
    /// Maximum time horizon (years) over the block's contracts.
    pub max_horizon: u32,
    /// Segregated-fund asset count.
    pub fund_assets: usize,
    /// Number of financial risk factors of the market model.
    pub risk_factors: usize,
}

impl EebCharacteristics {
    /// Flattens into the ML feature order used across the workspace.
    pub fn to_features(&self) -> Vec<f64> {
        let mut f = Vec::with_capacity(4);
        self.features_into(&mut f);
        f
    }

    /// Appends the features of [`EebCharacteristics::to_features`] onto
    /// `out` — the allocation-free variant for batched featurization.
    pub fn features_into(&self, out: &mut Vec<f64>) {
        out.push(self.representative_contracts as f64);
        out.push(self.max_horizon as f64);
        out.push(self.fund_assets as f64);
        out.push(self.risk_factors as f64);
    }

    /// The feature names matching [`EebCharacteristics::to_features`].
    pub fn feature_names() -> Vec<String> {
        vec![
            "representative_contracts".to_string(),
            "max_horizon".to_string(),
            "fund_assets".to_string(),
            "risk_factors".to_string(),
        ]
    }
}

/// One elementary elaboration block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eeb {
    /// Stable identifier within the simulation.
    pub id: usize,
    /// Block type (A or B).
    pub kind: EebKind,
    /// The model points this block elaborates.
    pub model_points: Vec<ModelPoint>,
    /// The characteristic parameters of the block.
    pub characteristics: EebCharacteristics,
}

/// Splits a simulation's portfolio into `n_blocks` type-B EEBs (plus their
/// type-A siblings), balancing representative contracts across blocks.
///
/// The paper uses 15 EEBs over three portfolios; the decomposition here
/// deals model points round-robin after sorting by horizon so blocks get
/// heterogeneous-but-balanced work, then derives each block's
/// characteristics.
///
/// # Errors
///
/// Returns [`EngineError::InvalidParameter`] if `n_blocks` is zero or
/// exceeds the number of model points.
pub fn decompose(spec: &SimulationSpec, n_blocks: usize) -> Result<Vec<Eeb>, EngineError> {
    spec.validate()?;
    let points = &spec.portfolio.model_points;
    if n_blocks == 0 {
        return Err(EngineError::InvalidParameter("n_blocks must be > 0"));
    }
    if n_blocks > points.len() {
        return Err(EngineError::InvalidParameter(
            "n_blocks exceeds available model points",
        ));
    }

    // Sort indices by horizon (descending) and deal round-robin.
    let omega = 120;
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(points[i].contract.term_years(omega)));
    let mut buckets: Vec<Vec<ModelPoint>> = vec![Vec::new(); n_blocks];
    for (pos, &i) in order.iter().enumerate() {
        buckets[pos % n_blocks].push(points[i].clone());
    }

    let mut eebs = Vec::with_capacity(2 * n_blocks);
    let mut id = 0;
    for bucket in buckets {
        let characteristics = EebCharacteristics {
            representative_contracts: bucket.len(),
            max_horizon: bucket
                .iter()
                .map(|p| p.contract.term_years(omega))
                .max()
                .unwrap_or(0),
            fund_assets: spec.fund.asset_count(),
            risk_factors: spec.market.risk_factors(),
        };
        // Each bucket yields a type-A block (cheap) and a type-B block
        // (the cloud-offloaded one) over the same policies.
        eebs.push(Eeb {
            id,
            kind: EebKind::ActuarialValuation,
            model_points: bucket.clone(),
            characteristics,
        });
        id += 1;
        eebs.push(Eeb {
            id,
            kind: EebKind::AlmValuation,
            model_points: bucket,
            characteristics,
        });
        id += 1;
    }
    Ok(eebs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::MarketModel;
    use disar_actuarial::portfolio::PortfolioSpec;
    use disar_alm::SegregatedFund;

    fn spec() -> SimulationSpec {
        let portfolio = PortfolioSpec {
            n_policies: 2_000,
            ..PortfolioSpec::default()
        }
        .generate("t", 3)
        .unwrap();
        SimulationSpec {
            portfolio,
            fund: SegregatedFund::italian_typical(25),
            market: MarketModel::Full,
            n_outer: 100,
            n_inner: 20,
            steps_per_year: 12,
            seed: 1,
            lane: crate::simulation::DEFAULT_LANE,
        }
    }

    #[test]
    fn decompose_produces_a_and_b_pairs() {
        let s = spec();
        let eebs = decompose(&s, 5).unwrap();
        assert_eq!(eebs.len(), 10);
        let a = eebs
            .iter()
            .filter(|e| e.kind == EebKind::ActuarialValuation)
            .count();
        assert_eq!(a, 5);
    }

    #[test]
    fn every_model_point_lands_in_exactly_one_type_b_block() {
        let s = spec();
        let total = s.portfolio.model_points.len();
        let eebs = decompose(&s, 4).unwrap();
        let in_blocks: usize = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| e.model_points.len())
            .sum();
        assert_eq!(in_blocks, total);
    }

    #[test]
    fn characteristics_are_consistent() {
        let s = spec();
        let eebs = decompose(&s, 3).unwrap();
        for e in &eebs {
            assert_eq!(e.characteristics.representative_contracts, e.model_points.len());
            assert_eq!(e.characteristics.fund_assets, 25);
            assert_eq!(e.characteristics.risk_factors, 4);
            let max_h = e
                .model_points
                .iter()
                .map(|p| p.contract.term_years(120))
                .max()
                .unwrap();
            assert_eq!(e.characteristics.max_horizon, max_h);
        }
    }

    #[test]
    fn blocks_are_balanced() {
        let s = spec();
        let eebs = decompose(&s, 5).unwrap();
        let sizes: Vec<usize> = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .map(|e| e.model_points.len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "round-robin must balance: {sizes:?}");
    }

    #[test]
    fn feature_vector_roundtrip() {
        let c = EebCharacteristics {
            representative_contracts: 120,
            max_horizon: 35,
            fund_assets: 30,
            risk_factors: 2,
        };
        let f = c.to_features();
        assert_eq!(f, vec![120.0, 35.0, 30.0, 2.0]);
        assert_eq!(EebCharacteristics::feature_names().len(), f.len());
    }

    #[test]
    fn invalid_block_counts_rejected() {
        let s = spec();
        assert!(decompose(&s, 0).is_err());
        assert!(decompose(&s, s.portfolio.model_points.len() + 1).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let s = spec();
        let eebs = decompose(&s, 6).unwrap();
        let mut ids: Vec<usize> = eebs.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), eebs.len());
    }
}
