//! EEB scheduling — DiMaS "establishes the elaboration schedule \[and\]
//! distributes the elementary requests to the processing units" (§II).
//!
//! EEBs are independent, so scheduling is the classical minimum-makespan
//! problem on identical machines. We implement the Longest-Processing-Time
//! (LPT) heuristic (Graham 1969, 4/3-approximate), which is what matters in
//! practice: without it, one long EEB at the end of the queue leaves every
//! other node idle — the exact waste the paper's cost model punishes.

use crate::EngineError;
use serde::{Deserialize, Serialize};

/// An assignment of items (by index) to units, plus the per-unit loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `assignment[u]` = indices of the items given to unit `u`.
    pub assignment: Vec<Vec<usize>>,
    /// Total load per unit.
    pub loads: Vec<f64>,
}

impl Schedule {
    /// The makespan (maximum unit load).
    pub fn makespan(&self) -> f64 {
        self.loads.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean idle fraction across units relative to the makespan.
    pub fn idle_fraction(&self) -> f64 {
        let m = self.makespan();
        if m == 0.0 {
            return 0.0;
        }
        let idle: f64 = self.loads.iter().map(|l| (m - l) / m).sum();
        idle / self.loads.len() as f64
    }
}

/// LPT list scheduling: sorts items by decreasing cost and greedily assigns
/// each to the currently least-loaded unit.
///
/// # Errors
///
/// Returns [`EngineError::InvalidParameter`] for zero units, an empty item
/// list, or non-finite/negative costs.
///
/// # Example
///
/// ```
/// use disar_engine::scheduler::lpt_schedule;
///
/// let s = lpt_schedule(&[5.0, 3.0, 3.0, 2.0, 2.0, 2.0], 3).unwrap();
/// // LPT yields 7 here (OPT is 6: {5}, {3,3}, {2,2,2}) — within the 4/3 bound.
/// assert_eq!(s.makespan(), 7.0);
/// ```
pub fn lpt_schedule(costs: &[f64], n_units: usize) -> Result<Schedule, EngineError> {
    if n_units == 0 {
        return Err(EngineError::InvalidParameter("n_units must be > 0"));
    }
    if costs.is_empty() {
        return Err(EngineError::InvalidParameter("no items to schedule"));
    }
    if costs.iter().any(|c| !c.is_finite() || *c < 0.0) {
        return Err(EngineError::InvalidParameter(
            "costs must be finite and non-negative",
        ));
    }
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("finite costs")
            .then(a.cmp(&b))
    });
    let mut assignment = vec![Vec::new(); n_units];
    let mut loads = vec![0.0; n_units];
    for &i in &order {
        // Least-loaded unit; ties broken by unit index for determinism.
        let (u, _) = loads
            .iter()
            .enumerate()
            .min_by(|(ua, la), (ub, lb)| {
                la.partial_cmp(lb).expect("finite loads").then(ua.cmp(ub))
            })
            .expect("n_units > 0");
        assignment[u].push(i);
        loads[u] += costs[i];
    }
    Ok(Schedule { assignment, loads })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_items_assigned_once() {
        let costs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let s = lpt_schedule(&costs, 4).unwrap();
        let mut seen: Vec<usize> = s.assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn loads_match_assignment() {
        let costs = [4.0, 7.0, 1.0, 3.0, 3.0];
        let s = lpt_schedule(&costs, 2).unwrap();
        for (u, items) in s.assignment.iter().enumerate() {
            let sum: f64 = items.iter().map(|&i| costs[i]).sum();
            assert!((sum - s.loads[u]).abs() < 1e-12);
        }
        let total: f64 = s.loads.iter().sum();
        assert!((total - 18.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_beats_naive_on_adversarial_input() {
        // Naive in-order round-robin puts the long job last; LPT doesn't.
        let costs = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 6.0];
        let s = lpt_schedule(&costs, 2).unwrap();
        assert!(s.makespan() <= 6.0 + 1e-12, "makespan {}", s.makespan());
    }

    #[test]
    fn single_unit_gets_everything() {
        let s = lpt_schedule(&[2.0, 3.0], 1).unwrap();
        assert_eq!(s.makespan(), 5.0);
        assert_eq!(s.idle_fraction(), 0.0);
    }

    #[test]
    fn more_units_than_items_leaves_some_idle() {
        let s = lpt_schedule(&[5.0, 5.0], 4).unwrap();
        assert_eq!(s.makespan(), 5.0);
        assert!((s.idle_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let costs = [3.0, 3.0, 3.0, 3.0];
        let a = lpt_schedule(&costs, 2).unwrap();
        let b = lpt_schedule(&costs, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        assert!(lpt_schedule(&[], 2).is_err());
        assert!(lpt_schedule(&[1.0], 0).is_err());
        assert!(lpt_schedule(&[f64::NAN], 1).is_err());
        assert!(lpt_schedule(&[-1.0], 1).is_err());
    }

    #[test]
    fn regression_graham_bound_case() {
        // Shrunken proptest case from tests/properties.proptest-regressions
        // (`lpt_invariants`), pinned as a named unit test. LPT sorts to
        // [1, 2, 0, 3]; items 1 and 2 land on units 0 and 1, then both
        // remaining items stack on unit 2 — the makespan is the sum of the
        // largest and smallest item and must stay within Graham's bound.
        let costs = [
            89.16616312347239,
            91.77390791426042,
            91.25261144936896,
            65.68923378877567,
        ];
        let m = 3;
        let s = lpt_schedule(&costs, m).unwrap();
        let mut seen: Vec<usize> = s.assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!((s.makespan() - (costs[0] + costs[3])).abs() < 1e-12);
        let total: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0, f64::max);
        let graham = total / m as f64 + (1.0 - 1.0 / m as f64) * max_item;
        assert!(s.makespan() <= graham + 1e-9, "{} > {graham}", s.makespan());
        assert!(s.makespan() >= (total / m as f64).max(max_item) - 1e-9);
    }

    #[test]
    fn balanced_within_graham_bound() {
        // Graham's list-scheduling bound holds for any list order, hence
        // for LPT: makespan <= total/m + (1 - 1/m) * max_item. (The tighter
        // 4/3 LPT bound is relative to OPT, which we cannot compute here.)
        let costs: Vec<f64> = (0..50).map(|i| ((i * 37) % 23 + 1) as f64).collect();
        let m = 6;
        let s = lpt_schedule(&costs, m).unwrap();
        let total: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0, f64::max);
        let graham = total / m as f64 + (1.0 - 1.0 / m as f64) * max_item;
        assert!(s.makespan() <= graham + 1e-9);
        assert!(s.makespan() >= (total / m as f64).max(max_item) - 1e-9);
    }
}
