//! Progress monitoring — the DiInt side of the architecture.
//!
//! "A set of Clients, each hosting the Disar Interface (DiInt) that allows
//! to set computational parameters and monitors the progress of the
//! elaborations" (§II). The master emits [`ProgressEvent`]s as EEBs move
//! through the pipeline; any [`ProgressMonitor`] can observe them. The
//! built-in [`RecordingMonitor`] collects a thread-safe event log suitable
//! for progress bars, audits, or the tests below.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One lifecycle event of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgressEvent {
    /// The portfolio was decomposed into EEBs.
    Decomposed {
        /// Number of type-B blocks.
        n_type_b: usize,
    },
    /// A computing unit started elaborating an EEB.
    EebStarted {
        /// EEB index within the type-B list.
        eeb: usize,
        /// Computing-unit index.
        unit: usize,
    },
    /// A computing unit finished an EEB.
    EebCompleted {
        /// EEB index within the type-B list.
        eeb: usize,
        /// Computing-unit index.
        unit: usize,
    },
    /// All partial results were gathered and combined.
    Gathered,
}

/// Observer of simulation progress. Implementations must be cheap and
/// non-blocking: events are emitted from worker threads.
pub trait ProgressMonitor: Send + Sync {
    /// Called for every lifecycle event, in per-unit order (cross-unit
    /// interleaving is scheduling-dependent).
    fn on_event(&self, event: ProgressEvent);
}

/// A monitor that ignores everything (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopMonitor;

impl ProgressMonitor for NoopMonitor {
    fn on_event(&self, _event: ProgressEvent) {}
}

/// A monitor that records every event in arrival order.
#[derive(Debug, Default)]
pub struct RecordingMonitor {
    events: Mutex<Vec<ProgressEvent>>,
}

impl RecordingMonitor {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<ProgressEvent> {
        self.events.lock().clone()
    }

    /// Number of completed EEBs observed so far — a progress fraction's
    /// numerator.
    pub fn completed(&self) -> usize {
        self.events
            .lock()
            .iter()
            .filter(|e| matches!(e, ProgressEvent::EebCompleted { .. }))
            .count()
    }
}

impl ProgressMonitor for RecordingMonitor {
    fn on_event(&self, event: ProgressEvent) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_order_and_counts() {
        let m = RecordingMonitor::new();
        m.on_event(ProgressEvent::Decomposed { n_type_b: 2 });
        m.on_event(ProgressEvent::EebStarted { eeb: 0, unit: 0 });
        m.on_event(ProgressEvent::EebCompleted { eeb: 0, unit: 0 });
        m.on_event(ProgressEvent::Gathered);
        assert_eq!(m.completed(), 1);
        let ev = m.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0], ProgressEvent::Decomposed { n_type_b: 2 });
        assert_eq!(ev[3], ProgressEvent::Gathered);
    }

    #[test]
    fn recorder_is_threadsafe() {
        let m = std::sync::Arc::new(RecordingMonitor::new());
        let handles: Vec<_> = (0..8)
            .map(|u| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for e in 0..50 {
                        m.on_event(ProgressEvent::EebStarted { eeb: e, unit: u });
                        m.on_event(ProgressEvent::EebCompleted { eeb: e, unit: u });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(m.completed(), 400);
        assert_eq!(m.events().len(), 800);
    }

    #[test]
    fn noop_is_free() {
        NoopMonitor.on_event(ProgressEvent::Gathered);
    }
}
