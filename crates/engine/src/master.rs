//! DiMaS — the Disar Master Service.
//!
//! "DiMaS divides all the input data in EEBs, thus it acts as the
//! orchestrator of the system. It defines … the elementary elaboration
//! blocks, estimates the complexity of the elaborations, establishes the
//! elaboration schedule, distributes the elementary requests to the
//! processing units and monitors the process" (§II).
//!
//! Two execution backends are provided:
//!
//! - [`DisarMaster::run_local`] — a *local grid* of worker threads doing the
//!   real nested Monte Carlo valuation (DiActEng + DiAlmEng), with EEBs
//!   distributed by LPT scheduling. This path produces true SCR numbers and
//!   true wall-clock times;
//! - [`DisarMaster::run_cloud`] — the *transparent cloud deploy*: the merged
//!   type-B workload is handed to the simulated cloud, which returns the
//!   realized duration and cost that feed the provisioning knowledge base.

use crate::complexity::ComplexityModel;
use crate::eeb::{decompose, Eeb, EebCharacteristics, EebKind};
use crate::scheduler::lpt_schedule;
use crate::simulation::SimulationSpec;
use crate::EngineError;
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::DurationLapse;
use disar_actuarial::mortality::LifeTable;
use disar_alm::liability::LiabilityPosition;
use disar_alm::nested::NestedMonteCarlo;
use disar_alm::ValuationWorkspace;
use disar_cloudsim::{CloudProvider, JobReport, Workload};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of a full local (real-computation) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalOutcome {
    /// Aggregate Solvency Capital Requirement across all EEBs.
    pub scr: f64,
    /// Aggregate best-estimate liability.
    pub bel: f64,
    /// Mean of the aggregate `Y_1` distribution.
    pub mean_y1: f64,
    /// 99.5 % quantile of the aggregate `Y_1` distribution.
    pub var_quantile: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Number of type-B EEBs processed.
    pub n_type_b: usize,
}

/// The master service, configured for one simulation.
pub struct DisarMaster {
    spec: SimulationSpec,
    complexity: ComplexityModel,
    n_blocks: usize,
}

impl DisarMaster {
    /// Creates a master for the given spec with the paper's 15-EEB-like
    /// default block count (clamped to the portfolio size).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidParameter`] for an invalid spec.
    pub fn new(spec: SimulationSpec) -> Result<Self, EngineError> {
        spec.validate()?;
        let n_blocks = 5.min(spec.portfolio.model_points.len());
        Ok(DisarMaster {
            spec,
            complexity: ComplexityModel::default(),
            n_blocks,
        })
    }

    /// Overrides the number of type-B blocks the portfolio is split into.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidParameter`] for zero or more blocks
    /// than model points.
    pub fn with_blocks(mut self, n_blocks: usize) -> Result<Self, EngineError> {
        if n_blocks == 0 || n_blocks > self.spec.portfolio.model_points.len() {
            return Err(EngineError::InvalidParameter(
                "n_blocks must be in 1..=model_points",
            ));
        }
        self.n_blocks = n_blocks;
        Ok(self)
    }

    /// The simulation spec this master orchestrates.
    pub fn spec(&self) -> &SimulationSpec {
        &self.spec
    }

    /// Decomposes the portfolio into EEBs (type A + type B pairs).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::eeb::decompose`] failures.
    pub fn eebs(&self) -> Result<Vec<Eeb>, EngineError> {
        decompose(&self.spec, self.n_blocks)
    }

    /// Job-level characteristic parameters (the merged feature vector `f`
    /// the provisioner predicts on).
    ///
    /// # Errors
    ///
    /// Propagates decomposition failures.
    pub fn characteristics(&self) -> Result<EebCharacteristics, EngineError> {
        let eebs = self.eebs()?;
        let type_b: Vec<&Eeb> = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .collect();
        Ok(EebCharacteristics {
            representative_contracts: type_b
                .iter()
                .map(|e| e.characteristics.representative_contracts)
                .sum(),
            max_horizon: type_b
                .iter()
                .map(|e| e.characteristics.max_horizon)
                .max()
                .unwrap_or(0),
            fund_assets: self.spec.fund.asset_count(),
            risk_factors: self.spec.market.risk_factors(),
        })
    }

    /// The merged type-B cloud workload of the whole simulation.
    ///
    /// # Errors
    ///
    /// Propagates decomposition/estimation failures.
    pub fn cloud_workload(&self) -> Result<Workload, EngineError> {
        let eebs = self.eebs()?;
        self.complexity.merged_workload(&eebs, &self.spec)
    }

    /// Runs the simulation on the simulated cloud: the transparent deploy
    /// path. Returns the cloud's job report (realized duration and cost).
    ///
    /// # Errors
    ///
    /// Propagates estimation and cloud failures.
    pub fn run_cloud(
        &self,
        provider: &CloudProvider,
        instance: &str,
        n_nodes: usize,
    ) -> Result<JobReport, EngineError> {
        let workload = self.cloud_workload()?;
        provider
            .run_job(instance, n_nodes, &workload)
            .map_err(EngineError::from)
    }

    /// Runs the *real* valuation on a local grid of `threads` computing
    /// units: type-A EEBs through DiActEng, type-B EEBs through nested
    /// Monte Carlo, distributed by LPT on estimated complexity.
    ///
    /// All type-B EEBs share the same outer-path seed, so their `Y_1`
    /// vectors are comonotone by scenario and add element-wise; the SCR is
    /// computed on the aggregate distribution (as DISAR combines
    /// locally-computed values after the gather).
    ///
    /// # Errors
    ///
    /// Propagates actuarial, stochastic and ALM failures.
    pub fn run_local(&self, threads: usize) -> Result<LocalOutcome, EngineError> {
        self.run_local_monitored(threads, &crate::progress::NoopMonitor)
    }

    /// [`DisarMaster::run_local`] with a [`crate::progress::ProgressMonitor`]
    /// observing EEB lifecycle events (the DiInt view).
    ///
    /// # Errors
    ///
    /// Same contract as [`DisarMaster::run_local`].
    pub fn run_local_monitored(
        &self,
        threads: usize,
        monitor: &dyn crate::progress::ProgressMonitor,
    ) -> Result<LocalOutcome, EngineError> {
        if threads == 0 {
            return Err(EngineError::InvalidParameter("threads must be > 0"));
        }
        let start = Instant::now();
        let eebs = self.eebs()?;
        monitor.on_event(crate::progress::ProgressEvent::Decomposed {
            n_type_b: eebs
                .iter()
                .filter(|e| e.kind == EebKind::AlmValuation)
                .count(),
        });

        // DiActEng: probabilized schedules for every type-B block (the
        // type-A work, cheap and done up front).
        let table = LifeTable::italian_population();
        let lapse = DurationLapse::italian_typical();
        let act = ActuarialEngine::new(&table, &lapse);
        let type_b: Vec<&Eeb> = eebs
            .iter()
            .filter(|e| e.kind == EebKind::AlmValuation)
            .collect();
        let mut positions_per_eeb: Vec<Vec<LiabilityPosition>> = Vec::with_capacity(type_b.len());
        for eeb in &type_b {
            let mut positions = Vec::with_capacity(eeb.model_points.len());
            for mp in &eeb.model_points {
                positions.push(LiabilityPosition {
                    schedule: act.cash_flow_schedule(mp)?,
                    profit_sharing: mp.contract.profit_sharing,
                });
            }
            positions_per_eeb.push(positions);
        }

        // DiAlmEng: nested Monte Carlo per type-B EEB, scheduled by LPT.
        let horizon = self
            .characteristics()?
            .max_horizon
            .max(1) as f64;
        let outer_gen = self.spec.market.build_generator(1.0, self.spec.steps_per_year)?;
        let inner_gen = self
            .spec
            .market
            .build_generator(horizon, self.spec.steps_per_year)?;
        let costs: Vec<f64> = type_b
            .iter()
            .map(|e| self.complexity.work_units(e, &self.spec))
            .collect();
        let schedule = lpt_schedule(&costs, threads.min(type_b.len()))?;

        let nested = NestedMonteCarlo::new(
            &outer_gen,
            &inner_gen,
            &self.spec.fund,
            self.spec.market.equity_driver(),
            self.spec.market.rate_driver(),
        )?;
        let config = self.spec.nested_config();

        // One worker per schedule unit, each draining its EEB list.
        let positions_ref = &positions_per_eeb;
        let nested_ref = &nested;
        let config_ref = &config;
        let results: Vec<Result<Vec<(usize, disar_alm::NestedResult)>, EngineError>> =
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = schedule
                    .assignment
                    .iter()
                    .enumerate()
                    .map(|(unit, unit_items)| {
                        let items = unit_items.clone();
                        s.spawn(move |_| {
                            let mut out = Vec::with_capacity(items.len());
                            // One workspace per worker, reused across the
                            // sequential nested runs of its whole EEB list.
                            let mut ws = ValuationWorkspace::new();
                            for i in items {
                                monitor.on_event(
                                    crate::progress::ProgressEvent::EebStarted { eeb: i, unit },
                                );
                                let res = nested_ref
                                    .run_with_workspace(&positions_ref[i], config_ref, &mut ws)
                                    .map_err(EngineError::from)?;
                                monitor.on_event(
                                    crate::progress::ProgressEvent::EebCompleted { eeb: i, unit },
                                );
                                out.push((i, res));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("thread scope failed");

        // Gather: element-wise aggregation of Y_1 across EEBs.
        let mut y1_total: Vec<f64> = vec![0.0; self.spec.n_outer];
        let mut bel = 0.0;
        for unit in results {
            for (_, res) in unit? {
                for (t, y) in y1_total.iter_mut().zip(&res.y1) {
                    *t += y;
                }
                bel += res.bel;
            }
        }
        monitor.on_event(crate::progress::ProgressEvent::Gathered);
        let mean_y1 = disar_math::stats::mean(&y1_total);
        let var_quantile = disar_math::stats::quantile(&y1_total, 0.995);
        // Approximate aggregate discount with BEL/mean ratio when positive.
        let avg_df = if mean_y1 > 0.0 {
            (bel / mean_y1).min(1.0)
        } else {
            1.0
        };
        Ok(LocalOutcome {
            scr: (var_quantile - mean_y1) * avg_df,
            bel,
            mean_y1,
            var_quantile,
            wall_secs: start.elapsed().as_secs_f64(),
            n_type_b: type_b.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::MarketModel;
    use disar_actuarial::portfolio::PortfolioSpec;
    use disar_alm::SegregatedFund;
    use disar_cloudsim::InstanceCatalog;

    fn tiny_spec(seed: u64) -> SimulationSpec {
        let portfolio = PortfolioSpec {
            n_policies: 150,
            term_range: (5, 10),
            product_weights: (0.4, 0.6, 0.0, 0.0),
            ..PortfolioSpec::default()
        }
        .generate("t", seed)
        .unwrap();
        SimulationSpec {
            portfolio,
            fund: SegregatedFund::italian_typical(20),
            market: MarketModel::RatesEquity,
            n_outer: 40,
            n_inner: 8,
            steps_per_year: 4,
            seed,
            lane: crate::simulation::DEFAULT_LANE,
        }
    }

    #[test]
    fn local_run_produces_sane_scr() {
        let master = DisarMaster::new(tiny_spec(3)).unwrap().with_blocks(3).unwrap();
        let out = master.run_local(2).unwrap();
        assert!(out.bel > 0.0);
        assert!(out.scr >= 0.0);
        assert!(out.var_quantile >= out.mean_y1);
        assert!(out.wall_secs > 0.0);
        assert_eq!(out.n_type_b, 3);
    }

    #[test]
    fn local_run_thread_count_invariant() {
        let master = DisarMaster::new(tiny_spec(5)).unwrap().with_blocks(3).unwrap();
        let a = master.run_local(1).unwrap();
        let b = master.run_local(3).unwrap();
        assert_eq!(a.scr, b.scr, "results must not depend on the schedule");
        assert_eq!(a.bel, b.bel);
    }

    #[test]
    fn cloud_run_reports_duration_and_cost() {
        let master = DisarMaster::new(tiny_spec(7)).unwrap();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 99);
        let r = master.run_cloud(&provider, "c3.4xlarge", 4).unwrap();
        assert_eq!(r.n_nodes, 4);
        assert!(r.duration_secs > 0.0);
        assert!(r.prorated_cost > 0.0);
    }

    #[test]
    fn characteristics_aggregate_over_blocks() {
        let master = DisarMaster::new(tiny_spec(9)).unwrap().with_blocks(4).unwrap();
        let c = master.characteristics().unwrap();
        assert_eq!(
            c.representative_contracts,
            master.spec().portfolio.model_points.len()
        );
        assert!(c.max_horizon >= 5 && c.max_horizon <= 10);
        assert_eq!(c.risk_factors, 2);
        assert_eq!(c.fund_assets, 20);
    }

    #[test]
    fn workload_positive() {
        let master = DisarMaster::new(tiny_spec(11)).unwrap();
        let wl = master.cloud_workload().unwrap();
        assert!(wl.work_units > 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let master = DisarMaster::new(tiny_spec(13)).unwrap();
        assert!(master.run_local(0).is_err());
        let n = tiny_spec(13).portfolio.model_points.len();
        assert!(DisarMaster::new(tiny_spec(13))
            .unwrap()
            .with_blocks(n + 1)
            .is_err());
        assert!(DisarMaster::new(tiny_spec(13))
            .unwrap()
            .with_blocks(0)
            .is_err());
    }

    #[test]
    fn monitor_sees_full_lifecycle() {
        use crate::progress::{ProgressEvent, RecordingMonitor};
        let master = DisarMaster::new(tiny_spec(17)).unwrap().with_blocks(3).unwrap();
        let monitor = RecordingMonitor::new();
        let out = master.run_local_monitored(2, &monitor).unwrap();
        let events = monitor.events();
        assert_eq!(events[0], ProgressEvent::Decomposed { n_type_b: 3 });
        assert_eq!(*events.last().unwrap(), ProgressEvent::Gathered);
        assert_eq!(monitor.completed(), out.n_type_b);
        // Every EEB starts before it completes.
        for eeb in 0..3 {
            let start = events
                .iter()
                .position(|e| matches!(e, ProgressEvent::EebStarted { eeb: i, .. } if *i == eeb));
            let done = events
                .iter()
                .position(|e| matches!(e, ProgressEvent::EebCompleted { eeb: i, .. } if *i == eeb));
            assert!(start.unwrap() < done.unwrap());
        }
    }

    #[test]
    fn unknown_instance_propagates() {
        let master = DisarMaster::new(tiny_spec(15)).unwrap();
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
        assert!(matches!(
            master.run_cloud(&provider, "q9.giant", 2),
            Err(EngineError::Cloud(_))
        ));
    }
}
