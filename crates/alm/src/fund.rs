//! The segregated fund with book-value accounting.
//!
//! Italian profit-sharing returns are credited from the *book-value* return
//! of the segregated fund, not its market return. The fund manager smooths
//! returns by (a) holding bonds at amortized cost — their contribution is a
//! slowly moving *book yield*, modelled as an exponential moving average of
//! market rates — and (b) deciding each year what fraction of unrealized
//! equity gains to realize. This module implements exactly that mechanism;
//! its single output is the annual fund return series `I_t` that feeds the
//! contract readjustment of Eq. (3)–(5).

use crate::AlmError;
use disar_stochastic::scenario::{ScenarioSet, ScenarioView};
use serde::{Deserialize, Serialize};

/// A segregated fund: asset mix, accounting state and management strategy.
///
/// # Example
///
/// ```
/// use disar_alm::SegregatedFund;
///
/// let fund = SegregatedFund::italian_typical(30);
/// assert_eq!(fund.asset_count(), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegregatedFund {
    bond_weight: f64,
    equity_weight: f64,
    dividend_yield: f64,
    /// EMA factor of the bond book yield (`1.0` = frozen at initial).
    book_yield_smoothing: f64,
    initial_book_yield: f64,
    /// Fraction of positive unrealized equity gains realized each year.
    gain_realization: f64,
    /// Fraction of unrealized equity *losses* recognized each year
    /// (impairment policy).
    loss_recognition: f64,
    /// Number of asset positions — a pure complexity driver (the paper's
    /// "segregated fund asset number" ML feature): more positions mean more
    /// bookkeeping work per step, not a different return.
    asset_count: usize,
}

impl SegregatedFund {
    /// Builds a fund with full parameter control.
    ///
    /// # Errors
    ///
    /// Returns [`AlmError::InvalidParameter`] unless the weights are
    /// non-negative and sum to at most 1, all fractions are in `[0, 1]`, and
    /// `asset_count > 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bond_weight: f64,
        equity_weight: f64,
        dividend_yield: f64,
        book_yield_smoothing: f64,
        initial_book_yield: f64,
        gain_realization: f64,
        loss_recognition: f64,
        asset_count: usize,
    ) -> Result<Self, AlmError> {
        if bond_weight < 0.0 || equity_weight < 0.0 || bond_weight + equity_weight > 1.0 + 1e-12 {
            return Err(AlmError::InvalidParameter(
                "weights must be non-negative and sum to <= 1",
            ));
        }
        for (v, what) in [
            (dividend_yield, "dividend_yield"),
            (book_yield_smoothing, "book_yield_smoothing"),
            (gain_realization, "gain_realization"),
            (loss_recognition, "loss_recognition"),
        ] {
            if !(0.0..=1.0).contains(&v) {
                let _ = what;
                return Err(AlmError::InvalidParameter("fractions must be in [0, 1]"));
            }
        }
        if asset_count == 0 {
            return Err(AlmError::InvalidParameter("asset_count must be > 0"));
        }
        Ok(SegregatedFund {
            bond_weight,
            equity_weight,
            dividend_yield,
            book_yield_smoothing,
            initial_book_yield,
            gain_realization,
            loss_recognition,
            asset_count,
        })
    }

    /// A typical Italian segregated fund: 85 % bonds at amortized cost,
    /// 15 % equity, 2 % dividend yield, strong book-yield smoothing and a
    /// 30 % annual gain-realization policy.
    pub fn italian_typical(asset_count: usize) -> Self {
        SegregatedFund {
            bond_weight: 0.85,
            equity_weight: 0.15,
            dividend_yield: 0.02,
            book_yield_smoothing: 0.85,
            initial_book_yield: 0.03,
            gain_realization: 0.30,
            loss_recognition: 0.50,
            asset_count: asset_count.max(1),
        }
    }

    /// Number of asset positions (complexity driver).
    pub fn asset_count(&self) -> usize {
        self.asset_count
    }

    /// Equity weight of the strategic mix.
    pub fn equity_weight(&self) -> f64 {
        self.equity_weight
    }

    /// Computes the annual fund-return series `I_1 … I_n` along one
    /// scenario path.
    ///
    /// `equity_driver` and `rate_driver` are driver indices in `set`. Years
    /// are aggregated from the fine grid: the equity return of year `k` is
    /// the index ratio over the year, the bond book yield follows an EMA of
    /// the year's average short rate.
    ///
    /// # Errors
    ///
    /// Returns [`AlmError::ScenarioMismatch`] for out-of-range indices or a
    /// grid shorter than one year.
    pub fn annual_returns(
        &self,
        set: &ScenarioSet,
        path: usize,
        equity_driver: usize,
        rate_driver: usize,
    ) -> Result<Vec<f64>, AlmError> {
        let mut returns = Vec::new();
        self.annual_returns_into(&set.view(), path, equity_driver, rate_driver, &mut returns)?;
        Ok(returns)
    }

    /// Allocation-free core of [`SegregatedFund::annual_returns`]: writes
    /// the annual return series into `out` (cleared first), reading the
    /// scenario through a [`ScenarioView`] so either a [`ScenarioSet`] or a
    /// reused `ScenarioBuffer` can back it. Bit-identical to
    /// [`SegregatedFund::annual_returns`] — same fold, same order.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegregatedFund::annual_returns`].
    pub fn annual_returns_into(
        &self,
        set: &ScenarioView<'_>,
        path: usize,
        equity_driver: usize,
        rate_driver: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), AlmError> {
        if path >= set.n_paths() {
            return Err(AlmError::ScenarioMismatch(format!(
                "path {path} out of range ({})",
                set.n_paths()
            )));
        }
        if equity_driver >= set.n_drivers() || rate_driver >= set.n_drivers() {
            return Err(AlmError::ScenarioMismatch(
                "driver index out of range".to_string(),
            ));
        }
        let spy = set.grid().steps_per_year();
        let n_years = set.grid().n_steps() / spy;
        if n_years == 0 {
            return Err(AlmError::ScenarioMismatch(
                "grid shorter than one year".to_string(),
            ));
        }
        let equity = set.path(path, equity_driver);
        let rates = set.path(path, rate_driver);

        out.clear();
        out.reserve(n_years); // no-op once the buffer is warm
        let mut book_yield = self.initial_book_yield;
        let mut unrealized = 0.0_f64; // per unit of fund book value
        for k in 0..n_years {
            let a = k * spy;
            let b = (k + 1) * spy;
            let eq_return = equity[b] / equity[a] - 1.0;
            let avg_rate =
                rates[a..=b].iter().sum::<f64>() / (spy + 1) as f64;

            // Bond book yield: EMA towards the current market rate.
            book_yield = self.book_yield_smoothing * book_yield
                + (1.0 - self.book_yield_smoothing) * avg_rate;

            // Equity: dividends are cash income; the price move accrues to
            // the unrealized-gains pot, of which the strategy realizes a
            // fraction (asymmetric for gains vs losses).
            let dividends = self.equity_weight * self.dividend_yield;
            let price_move = self.equity_weight * (eq_return - self.dividend_yield);
            unrealized += price_move;
            let realized = if unrealized >= 0.0 {
                self.gain_realization * unrealized
            } else {
                self.loss_recognition * unrealized
            };
            unrealized -= realized;

            out.push(self.bond_weight * book_yield + dividends + realized);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_math::stats;
    use disar_stochastic::drivers::{Gbm, Vasicek};
    use disar_stochastic::scenario::{Measure, ScenarioGenerator, TimeGrid};

    fn scenario_set(horizon: f64, n_paths: usize, equity_sigma: f64) -> ScenarioSet {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.0).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.06, equity_sigma, 0.03).unwrap()))
            .grid(TimeGrid::new(horizon, 12).unwrap())
            .build()
            .unwrap()
            .generate(Measure::RealWorld, n_paths, 77, None)
            .unwrap()
    }

    #[test]
    fn returns_have_one_entry_per_year() {
        let set = scenario_set(10.0, 3, 0.2);
        let fund = SegregatedFund::italian_typical(20);
        let r = fund.annual_returns(&set, 0, 1, 0).unwrap();
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn book_returns_smoother_than_market() {
        // The whole point of book-value accounting: fund returns are less
        // volatile than the underlying equity market returns.
        let set = scenario_set(20.0, 40, 0.25);
        let fund = SegregatedFund::italian_typical(20);
        let mut fund_sd = Vec::new();
        let mut market_sd = Vec::new();
        for p in 0..set.n_paths() {
            let fr = fund.annual_returns(&set, p, 1, 0).unwrap();
            fund_sd.push(stats::std_dev(&fr));
            let eq = set.path(p, 1);
            let spy = set.grid().steps_per_year();
            let mr: Vec<f64> = (0..20)
                .map(|k| eq[(k + 1) * spy] / eq[k * spy] - 1.0)
                .collect();
            market_sd.push(stats::std_dev(&mr));
        }
        let f = stats::mean(&fund_sd);
        let m = stats::mean(&market_sd);
        assert!(f < 0.5 * m, "fund sd {f} should be far below market sd {m}");
    }

    #[test]
    fn all_bond_fund_tracks_book_yield() {
        let set = scenario_set(5.0, 2, 0.2);
        let fund = SegregatedFund::new(1.0, 0.0, 0.0, 1.0, 0.04, 0.0, 0.0, 10).unwrap();
        // Smoothing = 1.0 freezes the book yield at its initial value.
        let r = fund.annual_returns(&set, 0, 1, 0).unwrap();
        for x in r {
            assert!((x - 0.04).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_equity_weight_raises_volatility() {
        let set = scenario_set(20.0, 30, 0.25);
        let lo = SegregatedFund::new(0.95, 0.05, 0.02, 0.85, 0.03, 0.3, 0.5, 10).unwrap();
        let hi = SegregatedFund::new(0.55, 0.45, 0.02, 0.85, 0.03, 0.3, 0.5, 10).unwrap();
        let mut sd_lo = Vec::new();
        let mut sd_hi = Vec::new();
        for p in 0..set.n_paths() {
            sd_lo.push(stats::std_dev(&lo.annual_returns(&set, p, 1, 0).unwrap()));
            sd_hi.push(stats::std_dev(&hi.annual_returns(&set, p, 1, 0).unwrap()));
        }
        assert!(stats::mean(&sd_hi) > stats::mean(&sd_lo));
    }

    #[test]
    fn constructor_validation() {
        assert!(SegregatedFund::new(0.9, 0.2, 0.02, 0.8, 0.03, 0.3, 0.5, 10).is_err());
        assert!(SegregatedFund::new(-0.1, 0.5, 0.02, 0.8, 0.03, 0.3, 0.5, 10).is_err());
        assert!(SegregatedFund::new(0.8, 0.2, 1.5, 0.8, 0.03, 0.3, 0.5, 10).is_err());
        assert!(SegregatedFund::new(0.8, 0.2, 0.02, 0.8, 0.03, 0.3, 0.5, 0).is_err());
    }

    #[test]
    fn index_validation() {
        let set = scenario_set(2.0, 2, 0.2);
        let fund = SegregatedFund::italian_typical(5);
        assert!(fund.annual_returns(&set, 99, 1, 0).is_err());
        assert!(fund.annual_returns(&set, 0, 7, 0).is_err());
        assert!(fund.annual_returns(&set, 0, 1, 7).is_err());
    }

    #[test]
    fn deterministic_per_path() {
        let set = scenario_set(5.0, 4, 0.2);
        let fund = SegregatedFund::italian_typical(5);
        let a = fund.annual_returns(&set, 2, 1, 0).unwrap();
        let b = fund.annual_returns(&set, 2, 1, 0).unwrap();
        assert_eq!(a, b);
        let c = fund.annual_returns(&set, 3, 1, 0).unwrap();
        assert_ne!(a, c);
    }
}
