//! Scenario-wise liability valuation.
//!
//! Combines the three ingredients the DISAR factorization separates:
//!
//! 1. the *probabilized cash-flow schedule* from DiActEng (actuarial
//!    decrements, financial-independent);
//! 2. the *fund return series* `I_t` from the segregated fund on one
//!    scenario;
//! 3. the *readjustment* `Φ_t` of Eq. (2) and the scenario's discount
//!    factors.
//!
//! The present value of a schedule on a scenario is
//!
//! ```text
//! PV = Σ_t  flow_t · Φ_t · df(t)
//! ```
//!
//! where `flow_t` are pre-readjustment currency units (benefits are linear
//! in the readjusted insured sum, so this is exact, "without loss of
//! information").

use crate::fund::SegregatedFund;
use crate::AlmError;
use disar_actuarial::contracts::ProfitSharing;
use disar_actuarial::engine::CashFlowSchedule;
use disar_stochastic::scenario::{ScenarioSet, ScenarioView};
use serde::{Deserialize, Serialize};

/// One liability position to value: a probabilized schedule plus its
/// profit-sharing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiabilityPosition {
    /// The type-A output for this model point.
    pub schedule: CashFlowSchedule,
    /// The contract's profit-sharing parameters (drives `Φ_t`).
    pub profit_sharing: ProfitSharing,
}

/// Reusable per-path scratch for the `_into` valuation kernels: the annual
/// fund returns and per-year discount factors of the path being valued.
/// Owned by the caller (typically a `ValuationWorkspace`) so repeated
/// valuations reuse the same storage; every field is fully rewritten per
/// path, so no state survives between calls.
#[derive(Debug, Clone, Default)]
pub struct PathScratch {
    returns: Vec<f64>,
    dfs: Vec<f64>,
}

impl PathScratch {
    /// An empty scratch; the first valuation sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the scratch for paths spanning `n_years` years, so even
    /// the first valuation allocates nothing.
    pub fn reserve_years(&mut self, n_years: usize) {
        self.returns.reserve(n_years.saturating_sub(self.returns.len()));
        self.dfs.reserve(n_years.saturating_sub(self.dfs.len()));
    }
}

/// Values a set of liability positions on one scenario path.
///
/// Fund returns are computed once per path and shared across positions —
/// the same economy of work DISAR exploits when it groups policies into
/// EEBs on the same segregated fund.
///
/// Flows beyond the scenario horizon are conservatively valued as paid at
/// the horizon (they keep the last available `Φ` and discount factor); in
/// practice generators are built with `horizon ≥ max term` so this is a
/// documented edge case, not the normal path.
///
/// # Errors
///
/// Propagates [`AlmError::ScenarioMismatch`] from the fund-return
/// computation.
pub fn value_positions_on_path(
    positions: &[LiabilityPosition],
    fund: &SegregatedFund,
    set: &ScenarioSet,
    path: usize,
    equity_driver: usize,
    rate_driver: usize,
) -> Result<f64, AlmError> {
    let mut scratch = PathScratch::new();
    value_positions_on_path_into(
        positions,
        fund,
        &set.view(),
        path,
        equity_driver,
        rate_driver,
        &mut scratch,
    )
}

/// Allocation-free core of [`value_positions_on_path`]: reads the scenario
/// through a [`ScenarioView`] and keeps all per-path intermediates in the
/// caller's [`PathScratch`]. Bit-identical to the allocating wrapper — the
/// per-year discount factors come from
/// [`ScenarioView::year_discount_factors_into`], whose running integral
/// adds terms in exactly the order of the per-call loops it replaces.
///
/// # Errors
///
/// Propagates [`AlmError::ScenarioMismatch`] from the fund-return
/// computation.
#[allow(clippy::too_many_arguments)]
pub fn value_positions_on_path_into(
    positions: &[LiabilityPosition],
    fund: &SegregatedFund,
    set: &ScenarioView<'_>,
    path: usize,
    equity_driver: usize,
    rate_driver: usize,
    scratch: &mut PathScratch,
) -> Result<f64, AlmError> {
    fund.annual_returns_into(set, path, equity_driver, rate_driver, &mut scratch.returns)?;
    let n_years = scratch.returns.len();
    set.year_discount_factors_into(path, n_years, &mut scratch.dfs);

    let mut total = 0.0;
    for pos in positions {
        // Cumulative readjustment factor Φ_t for this position's (β, i).
        let mut phi = 1.0;
        let mut pv = 0.0;
        for flow in &pos.schedule.flows {
            let k = flow.year as usize; // 1-based
            let idx = k.min(n_years); // clamp beyond-horizon flows
            if k <= n_years {
                phi *= 1.0 + pos.profit_sharing.readjustment_rate(scratch.returns[k - 1]);
            }
            pv += flow.total() * phi * scratch.dfs[idx - 1];
        }
        total += pv;
    }
    Ok(total)
}

/// Like [`value_positions_on_path`] but returning one PV per position
/// (fund returns still computed once). The nested Monte Carlo needs the
/// per-position split because each position carries its own realized
/// first-year readjustment `Φ_1`.
///
/// # Errors
///
/// Propagates [`AlmError::ScenarioMismatch`] from the fund-return
/// computation.
pub fn value_each_position_on_path(
    positions: &[LiabilityPosition],
    fund: &SegregatedFund,
    set: &ScenarioSet,
    path: usize,
    equity_driver: usize,
    rate_driver: usize,
) -> Result<Vec<f64>, AlmError> {
    let mut scratch = PathScratch::new();
    let mut out = Vec::with_capacity(positions.len());
    value_each_position_on_path_into(
        positions,
        fund,
        &set.view(),
        path,
        equity_driver,
        rate_driver,
        &mut scratch,
        &mut out,
    )?;
    Ok(out)
}

/// Allocation-free core of [`value_each_position_on_path`]: one PV per
/// position written into `out` (cleared first), all intermediates in the
/// caller's [`PathScratch`]. This is the `nP × nQ` inner kernel of the
/// nested Monte Carlo — with a warm scratch and output vector it performs
/// zero heap allocations.
///
/// # Errors
///
/// Propagates [`AlmError::ScenarioMismatch`] from the fund-return
/// computation.
#[allow(clippy::too_many_arguments)]
pub fn value_each_position_on_path_into(
    positions: &[LiabilityPosition],
    fund: &SegregatedFund,
    set: &ScenarioView<'_>,
    path: usize,
    equity_driver: usize,
    rate_driver: usize,
    scratch: &mut PathScratch,
    out: &mut Vec<f64>,
) -> Result<(), AlmError> {
    fund.annual_returns_into(set, path, equity_driver, rate_driver, &mut scratch.returns)?;
    let n_years = scratch.returns.len();
    set.year_discount_factors_into(path, n_years, &mut scratch.dfs);
    value_each_position_from_series(positions, &scratch.returns, &scratch.dfs, out);
    Ok(())
}

/// The position-valuation core shared by
/// [`value_each_position_on_path_into`] and the panel-based fast path: one
/// PV per position written into `out` (cleared first), computed from an
/// already-materialized annual fund-return series and the matching per-year
/// discount factors. `returns.len()` defines the path horizon in years;
/// `dfs` must have the same length.
pub fn value_each_position_from_series(
    positions: &[LiabilityPosition],
    returns: &[f64],
    dfs: &[f64],
    out: &mut Vec<f64>,
) {
    let n_years = returns.len();
    debug_assert_eq!(n_years, dfs.len(), "return/discount series mismatch");
    out.clear();
    out.reserve(positions.len()); // no-op once the buffer is warm
    for pos in positions {
        let mut phi = 1.0;
        let mut pv = 0.0;
        for flow in &pos.schedule.flows {
            let k = flow.year as usize;
            let idx = k.min(n_years);
            if k <= n_years {
                phi *= 1.0 + pos.profit_sharing.readjustment_rate(returns[k - 1]);
            }
            pv += flow.total() * phi * dfs[idx - 1];
        }
        out.push(pv);
    }
}

/// Fills path-blocked valuation panels for **every** path of `set`: row `q`
/// of `returns_panel` (`dfs_panel`) holds the annual fund returns (per-year
/// discount factors) of path `q`, contiguously. Returns the row length
/// (years on the path).
///
/// The nested inner loop fills the panels in one pass and then consumes one
/// contiguous row pair per inner path through
/// [`value_each_position_from_series`] — better locality than interleaving
/// fund accounting with flow valuation per path, and bit-identical to it:
/// the per-path fund fold and the running discount integral carry no state
/// across paths, so computing them path-major in the same per-path order
/// yields the same values, and the consumption order is unchanged.
///
/// # Errors
///
/// Propagates [`AlmError::ScenarioMismatch`] from the fund-return
/// computation.
pub fn fill_valuation_panels(
    fund: &SegregatedFund,
    set: &ScenarioView<'_>,
    equity_driver: usize,
    rate_driver: usize,
    scratch: &mut PathScratch,
    returns_panel: &mut Vec<f64>,
    dfs_panel: &mut Vec<f64>,
) -> Result<usize, AlmError> {
    returns_panel.clear();
    dfs_panel.clear();
    let mut n_years = 0;
    for q in 0..set.n_paths() {
        fund.annual_returns_into(set, q, equity_driver, rate_driver, &mut scratch.returns)?;
        n_years = scratch.returns.len();
        set.year_discount_factors_into(q, n_years, &mut scratch.dfs);
        returns_panel.extend_from_slice(&scratch.returns);
        dfs_panel.extend_from_slice(&scratch.dfs);
    }
    Ok(n_years)
}

/// Shifts a schedule forward by `years`: flows already paid are dropped and
/// the remaining flow years are renumbered relative to the new valuation
/// date. Used to value the *remaining* liability at `t = 1` in the nested
/// procedure.
pub fn shift_schedule(schedule: &CashFlowSchedule, years: u32) -> CashFlowSchedule {
    let flows: Vec<_> = schedule
        .flows
        .iter()
        .filter(|f| f.year > years)
        .map(|f| disar_actuarial::engine::YearFlow {
            year: f.year - years,
            ..*f
        })
        .collect();
    CashFlowSchedule {
        term: schedule.term.saturating_sub(years),
        flows,
        residual_in_force: schedule.residual_in_force,
    }
}

/// Values the positions on *every* path of the set, returning one PV per
/// path (the inner-simulation work unit of the nested procedure).
///
/// # Errors
///
/// Propagates errors from [`value_positions_on_path`].
pub fn value_positions_all_paths(
    positions: &[LiabilityPosition],
    fund: &SegregatedFund,
    set: &ScenarioSet,
    equity_driver: usize,
    rate_driver: usize,
) -> Result<Vec<f64>, AlmError> {
    (0..set.n_paths())
        .map(|p| value_positions_on_path(positions, fund, set, p, equity_driver, rate_driver))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
    use disar_actuarial::engine::ActuarialEngine;
    use disar_actuarial::lapse::ConstantLapse;
    use disar_actuarial::model_points::ModelPoint;
    use disar_actuarial::mortality::{Gender, LifeTable};
    use disar_stochastic::drivers::{Gbm, Vasicek};
    use disar_stochastic::scenario::{Measure, ScenarioGenerator, TimeGrid};

    fn make_position(term: u32, beta: f64, tech: f64) -> LiabilityPosition {
        let table = LifeTable::italian_population();
        let lapse = ConstantLapse::new(0.03).unwrap();
        let engine = ActuarialEngine::new(&table, &lapse);
        let ps = ProfitSharing::new(beta, tech).unwrap();
        let c =
            Contract::new(ProductKind::Endowment, 45, Gender::Male, term, 1000.0, ps).unwrap();
        let mp = ModelPoint {
            contract: c,
            policy_count: 1,
        };
        LiabilityPosition {
            schedule: engine.cash_flow_schedule(&mp).unwrap(),
            profit_sharing: ps,
        }
    }

    fn q_set(horizon: f64, n_paths: usize, seed: u64) -> ScenarioSet {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.0).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.06, 0.18, 0.03).unwrap()))
            .grid(TimeGrid::new(horizon, 12).unwrap())
            .build()
            .unwrap()
            .generate(Measure::RiskNeutral, n_paths, seed, None)
            .unwrap()
    }

    #[test]
    fn pv_is_positive_and_below_undiscounted_max() {
        let pos = make_position(10, 0.8, 0.02);
        let set = q_set(12.0, 20, 5);
        let fund = SegregatedFund::italian_typical(20);
        for p in 0..set.n_paths() {
            let pv = value_positions_on_path(std::slice::from_ref(&pos), &fund, &set, p, 1, 0).unwrap();
            assert!(pv > 0.0);
            // Φ is bounded on these scenarios and discounting shrinks, so a
            // loose sanity ceiling: 3× the expected nominal benefits.
            assert!(pv < 3.0 * pos.schedule.total_expected_benefits());
        }
    }

    #[test]
    fn higher_participation_is_worth_more() {
        // Everything else equal, a larger participation coefficient β can
        // only increase ρ_t (max(βI, i) is non-decreasing in β), hence Φ_t
        // and the liability value. (Note the technical rate i is *not*
        // monotone this way: Eq. 2 normalizes it out of the crediting.)
        let lo = make_position(15, 0.70, 0.01);
        let hi = make_position(15, 0.95, 0.01);
        let set = q_set(16.0, 50, 7);
        let fund = SegregatedFund::italian_typical(20);
        let pv_lo: f64 = value_positions_all_paths(std::slice::from_ref(&lo), &fund, &set, 1, 0)
            .unwrap()
            .iter()
            .sum();
        let pv_hi: f64 = value_positions_all_paths(&[hi], &fund, &set, 1, 0)
            .unwrap()
            .iter()
            .sum();
        assert!(pv_hi > pv_lo, "higher participation must raise value");
    }

    #[test]
    fn valuation_is_additive_over_positions() {
        let a = make_position(10, 0.8, 0.02);
        let b = make_position(20, 0.85, 0.01);
        let set = q_set(21.0, 5, 9);
        let fund = SegregatedFund::italian_typical(20);
        for p in 0..set.n_paths() {
            let sep = value_positions_on_path(std::slice::from_ref(&a), &fund, &set, p, 1, 0).unwrap()
                + value_positions_on_path(std::slice::from_ref(&b), &fund, &set, p, 1, 0).unwrap();
            let joint =
                value_positions_on_path(&[a.clone(), b.clone()], &fund, &set, p, 1, 0).unwrap();
            assert!((sep - joint).abs() < 1e-9);
        }
    }

    #[test]
    fn valuation_panels_bitwise_match_per_path_kernel() {
        let positions = vec![make_position(10, 0.8, 0.02), make_position(15, 0.9, 0.01)];
        let set = q_set(16.0, 7, 11);
        let view = set.view();
        let fund = SegregatedFund::italian_typical(20);
        let mut scratch = PathScratch::new();
        // Pre-polluted panels: fill must fully overwrite them.
        let mut returns_panel = vec![f64::NAN; 3];
        let mut dfs_panel = vec![f64::NAN; 99];
        let n_years =
            fill_valuation_panels(&fund, &view, 1, 0, &mut scratch, &mut returns_panel, &mut dfs_panel)
                .unwrap();
        assert_eq!(returns_panel.len(), view.n_paths() * n_years);
        assert_eq!(dfs_panel.len(), view.n_paths() * n_years);
        let mut from_row = Vec::new();
        let mut from_path = Vec::new();
        for q in 0..view.n_paths() {
            let row = q * n_years..(q + 1) * n_years;
            value_each_position_from_series(
                &positions,
                &returns_panel[row.clone()],
                &dfs_panel[row],
                &mut from_row,
            );
            value_each_position_on_path_into(
                &positions,
                &fund,
                &view,
                q,
                1,
                0,
                &mut scratch,
                &mut from_path,
            )
            .unwrap();
            assert_eq!(from_row.len(), from_path.len());
            for (a, b) in from_row.iter().zip(&from_path) {
                assert_eq!(a.to_bits(), b.to_bits(), "path {q}");
            }
        }
    }

    #[test]
    fn zero_rates_zero_equity_gives_nominal_floor() {
        // Deterministic degenerate economy: rate pinned at 0 (sigma 0,
        // r0 = b = 0), equity flat, guarantee 0 ⇒ Φ = 1, df = 1, so PV =
        // sum of expected nominal benefits.
        let set = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.0, 0.5, 0.0, 0.0, 0.0).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.0, 0.0, 0.0).unwrap()))
            .grid(TimeGrid::new(12.0, 12).unwrap())
            .build()
            .unwrap()
            .generate(Measure::RiskNeutral, 1, 0, None)
            .unwrap();
        // Fund with zero book yield and no dividends returns exactly zero.
        let fund = SegregatedFund::new(1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 5).unwrap();
        let pos = make_position(10, 0.8, 0.0);
        let pv = value_positions_on_path(std::slice::from_ref(&pos), &fund, &set, 0, 1, 0).unwrap();
        let nominal = pos.schedule.total_expected_benefits();
        assert!((pv - nominal).abs() < 1e-9, "pv {pv} vs nominal {nominal}");
    }

    #[test]
    fn flows_beyond_horizon_are_clamped_not_dropped() {
        let pos = make_position(20, 0.8, 0.02);
        let short = q_set(5.0, 3, 11);
        let fund = SegregatedFund::italian_typical(10);
        let pv = value_positions_on_path(&[pos], &fund, &short, 0, 1, 0).unwrap();
        assert!(pv > 0.0, "clamped valuation must still count the flows");
    }

    #[test]
    fn per_position_values_sum_to_joint() {
        let a = make_position(10, 0.8, 0.02);
        let b = make_position(20, 0.85, 0.01);
        let set = q_set(21.0, 4, 13);
        let fund = SegregatedFund::italian_typical(20);
        for p in 0..set.n_paths() {
            let each =
                value_each_position_on_path(&[a.clone(), b.clone()], &fund, &set, p, 1, 0)
                    .unwrap();
            let joint =
                value_positions_on_path(&[a.clone(), b.clone()], &fund, &set, p, 1, 0).unwrap();
            assert!((each.iter().sum::<f64>() - joint).abs() < 1e-9);
        }
    }

    #[test]
    fn shift_schedule_drops_and_renumbers() {
        let pos = make_position(10, 0.8, 0.02);
        let shifted = shift_schedule(&pos.schedule, 1);
        assert_eq!(shifted.term, 9);
        assert_eq!(shifted.flows.len(), pos.schedule.flows.len() - 1);
        assert_eq!(shifted.flows[0].year, 1);
        // Amounts preserved, only renumbered.
        assert_eq!(
            shifted.flows[0].death_benefit,
            pos.schedule.flows[1].death_benefit
        );
    }

    #[test]
    fn shift_by_zero_is_identity() {
        let pos = make_position(5, 0.8, 0.02);
        assert_eq!(shift_schedule(&pos.schedule, 0), pos.schedule);
    }
}
