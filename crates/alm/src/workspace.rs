//! Per-worker valuation workspaces for the nested Monte Carlo hot path.
//!
//! The nested procedure evaluates `nP × nQ` inner valuations; before this
//! layer existed, every one of them heap-allocated (a fresh inner
//! `ScenarioSet`, fund-return and discount-factor vectors, a per-position
//! result `Vec`). A [`ValuationWorkspace`] gathers all of that scratch into
//! one struct that is created **once per outer-loop worker thread** (via
//! `parallel_map_with`) and reused across every outer path of that worker's
//! chunk — steady-state inner-loop allocations drop to zero.
//!
//! Every field is pure scratch: it is fully rewritten before being read on
//! each outer path, so reuse cannot leak state between paths, runs or
//! configurations — which is also why the workspace-backed loop stays
//! bit-identical to the allocating implementation it replaced (see
//! DESIGN.md §10).

use crate::liability::PathScratch;
use crate::nested::NestedConfig;
use disar_stochastic::scenario::{ScenarioBuffer, ScenarioGenerator};

/// Reusable scratch for valuing outer paths of a nested Monte Carlo run.
///
/// Obtain one presized via `NestedMonteCarlo::workspace_for` (or start
/// empty with [`ValuationWorkspace::new`] — the first outer path then
/// warms it up). The workspace owns:
///
/// * the inner-stage [`ScenarioBuffer`] (paths + generator scratch),
/// * the per-path [`PathScratch`] (fund returns, per-year discount factors),
/// * the per-position vectors (`Φ_1` factors, inner-PV accumulator,
///   per-inner-path values) and the re-anchoring state vector.
#[derive(Debug, Clone, Default)]
pub struct ValuationWorkspace {
    /// Inner (risk-neutral) scenario buffer, refilled per outer path.
    pub(crate) inner_buf: ScenarioBuffer,
    /// Fund-return / discount-factor scratch for the valuation kernels.
    pub(crate) scratch: PathScratch,
    /// Per-position PVs of one inner path.
    pub(crate) vals: Vec<f64>,
    /// Per-position accumulator over the `nQ` inner paths.
    pub(crate) acc: Vec<f64>,
    /// Per-position first-year readjustment factors `Φ_1`.
    pub(crate) phi1: Vec<f64>,
    /// Outer endpoint state re-anchoring the inner simulation.
    pub(crate) state: Vec<f64>,
    /// Annual fund returns along the outer path.
    pub(crate) outer_returns: Vec<f64>,
    /// Lane-major panel of annual fund returns: row `q` holds the inner
    /// path `q`'s per-year returns, contiguously.
    pub(crate) returns_panel: Vec<f64>,
    /// Lane-major panel of per-year discount factors, same layout.
    pub(crate) dfs_panel: Vec<f64>,
}

impl ValuationWorkspace {
    /// An empty workspace; the first outer path sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace presized for `config` runs of a nested engine built on
    /// `outer`/`inner` generators and `n_positions` liability positions —
    /// even the first outer path then performs zero heap allocations.
    pub fn sized_for(
        outer: &ScenarioGenerator,
        inner: &ScenarioGenerator,
        config: &NestedConfig,
        n_positions: usize,
    ) -> Self {
        let mut ws = Self::default();
        // Antithetic runs generate 2 · (n_inner / 2) = n_inner total paths,
        // so the buffer shape is the same either way.
        ws.inner_buf
            .reserve_for_lanes(inner, config.n_inner, config.lane.max(1));
        let inner_years = inner.grid().n_steps() / inner.grid().steps_per_year();
        let outer_years = outer.grid().n_steps() / outer.grid().steps_per_year();
        ws.scratch.reserve_years(inner_years.max(outer_years));
        ws.vals.reserve(n_positions);
        ws.acc.reserve(n_positions);
        ws.phi1.reserve(n_positions);
        ws.state.reserve(inner.n_drivers());
        ws.outer_returns.reserve(outer_years.max(1));
        ws.returns_panel.reserve(config.n_inner * inner_years.max(1));
        ws.dfs_panel.reserve(config.n_inner * inner_years.max(1));
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_stochastic::drivers::{Gbm, Vasicek};
    use disar_stochastic::scenario::TimeGrid;

    fn generator(horizon: f64) -> ScenarioGenerator {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).unwrap()))
            .grid(TimeGrid::new(horizon, 12).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn sized_for_reserves_position_vectors() {
        let outer = generator(1.0);
        let inner = generator(10.0);
        let config = NestedConfig::paper_defaults(1);
        let ws = ValuationWorkspace::sized_for(&outer, &inner, &config, 7);
        assert!(ws.vals.capacity() >= 7);
        assert!(ws.acc.capacity() >= 7);
        assert!(ws.phi1.capacity() >= 7);
        assert!(ws.state.capacity() >= 2);
        assert!(ws.outer_returns.capacity() >= 1);
    }

    #[test]
    fn default_workspace_is_empty() {
        let ws = ValuationWorkspace::new();
        assert!(ws.vals.is_empty() && ws.acc.is_empty() && ws.phi1.is_empty());
    }
}
