//! The nested Monte Carlo procedure of §II and the SCR.
//!
//! "A nested Monte Carlo simulation is … a two stage procedure in which:
//! (1) nP independent sample paths of the risk drivers are generated from
//! t = 0 to t = 1 under the real world measure P …; (2) for each of the nP
//! paths, nQ independent sample paths from t = 1 to t = T are generated
//! under risk-neutral probability Q, conditional to the filtration F_1."
//!
//! The quantity of interest is the distribution of `Y_1` — the value at
//! `t = 1` of the liabilities — whose 99.5 % quantile defines the Solvency
//! Capital Requirement. Each outer path contributes
//!
//! ```text
//! Y_1(p) = Σ_pos Φ_1^pos(p) · (1/nQ) Σ_q PV_inner(pos, q | state_p)
//! ```
//!
//! where `Φ_1^pos(p)` is the position's first-year readjustment realized on
//! the outer path (benefits are linear in the readjusted sum, so the
//! factorization is exact). The segregated fund's accounting state is
//! re-initialized at `t = 1` — a documented approximation: the book-yield
//! EMA carries one year of memory that we reset, which perturbs values far
//! less than the Monte Carlo noise at the paper's `nQ = 50`.

use crate::fund::SegregatedFund;
use crate::liability::{
    fill_valuation_panels, shift_schedule, value_each_position_from_series, LiabilityPosition,
};
use crate::parallel::parallel_map_with;
use crate::workspace::ValuationWorkspace;
use crate::AlmError;
use disar_math::rng::split_seed;
use disar_math::stats;
use disar_stochastic::scenario::{Measure, ScenarioGenerator, DEFAULT_LANE};
use serde::{Deserialize, Serialize};

fn default_lane() -> usize {
    DEFAULT_LANE
}

/// Configuration of a nested run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NestedConfig {
    /// Number of outer (real-world, "natural") paths `nP`.
    pub n_outer: usize,
    /// Number of inner (risk-neutral) paths `nQ` per outer path.
    pub n_inner: usize,
    /// Confidence level of the VaR (Solvency II: 0.995).
    pub confidence: f64,
    /// Master seed; outer/inner streams are derived deterministically.
    pub seed: u64,
    /// Worker threads for the outer loop (1 = sequential).
    pub threads: usize,
    /// Use antithetic variates for the *inner* (risk-neutral) stage:
    /// `n_inner` paths are generated as `n_inner / 2` mirrored pairs,
    /// cutting the inner Monte Carlo error at equal cost. Requires an even
    /// `n_inner`.
    pub antithetic: bool,
    /// Path-block (lane) width of the inner scenario kernels; `1` is the
    /// scalar escape hatch (same pattern as `threads: 1`). Results are
    /// bit-identical for every lane width — this knob only trades kernel
    /// throughput, never values.
    #[serde(default = "default_lane")]
    pub lane: usize,
}

impl NestedConfig {
    /// The paper's experimental setting: `nQ = 50` inner iterations,
    /// `nP = 1000` natural iterations, 99.5 % confidence, sequential.
    pub fn paper_defaults(seed: u64) -> Self {
        NestedConfig {
            n_outer: 1000,
            n_inner: 50,
            confidence: 0.995,
            seed,
            threads: 1,
            antithetic: false,
            lane: DEFAULT_LANE,
        }
    }

    fn validate(&self) -> Result<(), AlmError> {
        if self.n_outer == 0 || self.n_inner == 0 {
            return Err(AlmError::InvalidParameter(
                "n_outer and n_inner must be > 0",
            ));
        }
        if !(0.0 < self.confidence && self.confidence < 1.0) {
            return Err(AlmError::InvalidParameter("confidence must be in (0, 1)"));
        }
        if self.threads == 0 {
            return Err(AlmError::InvalidParameter("threads must be > 0"));
        }
        if self.lane == 0 {
            return Err(AlmError::InvalidParameter("lane must be > 0"));
        }
        if self.antithetic && !self.n_inner.is_multiple_of(2) {
            return Err(AlmError::InvalidParameter(
                "antithetic inner sampling needs an even n_inner",
            ));
        }
        Ok(())
    }
}

/// Result of a nested (or LSMC) valuation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedResult {
    /// Liability value at `t = 1` per outer path.
    pub y1: Vec<f64>,
    /// Mean of `y1`.
    pub mean: f64,
    /// Quantile of `y1` at the configured confidence.
    pub var_quantile: f64,
    /// Solvency Capital Requirement: `(quantile − mean)` discounted to 0 at
    /// the average outer-path discount factor.
    pub scr: f64,
    /// Best-estimate liability at `t = 0`: discounted mean of `y1` plus the
    /// discounted expected first-year flows.
    pub bel: f64,
    /// Monte Carlo standard error of `mean`.
    pub std_error: f64,
}

/// The nested Monte Carlo valuation engine.
///
/// Owns the two scenario generators: `outer` must cover `[0, 1]` years,
/// `inner` must cover the residual liability horizon, and both must be
/// built over the *same driver list in the same order* (the inner paths are
/// re-anchored at outer endpoint states).
pub struct NestedMonteCarlo<'a> {
    outer: &'a ScenarioGenerator,
    inner: &'a ScenarioGenerator,
    fund: &'a SegregatedFund,
    equity_driver: usize,
    rate_driver: usize,
}

impl<'a> NestedMonteCarlo<'a> {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`AlmError::ScenarioMismatch`] if the two generators have a
    /// different driver count or the driver indices are out of range.
    pub fn new(
        outer: &'a ScenarioGenerator,
        inner: &'a ScenarioGenerator,
        fund: &'a SegregatedFund,
        equity_driver: usize,
        rate_driver: usize,
    ) -> Result<Self, AlmError> {
        if outer.n_drivers() != inner.n_drivers() {
            return Err(AlmError::ScenarioMismatch(format!(
                "outer has {} drivers, inner has {}",
                outer.n_drivers(),
                inner.n_drivers()
            )));
        }
        if equity_driver >= outer.n_drivers() || rate_driver >= outer.n_drivers() {
            return Err(AlmError::ScenarioMismatch(
                "driver index out of range".to_string(),
            ));
        }
        if outer.grid().horizon() < 1.0 {
            return Err(AlmError::ScenarioMismatch(
                "outer grid must cover at least one year".to_string(),
            ));
        }
        Ok(NestedMonteCarlo {
            outer,
            inner,
            fund,
            equity_driver,
            rate_driver,
        })
    }

    /// A [`ValuationWorkspace`] presized for this engine, `config` and
    /// `n_positions` liability positions — what [`NestedMonteCarlo::run`]
    /// builds once per worker thread.
    pub fn workspace_for(&self, config: &NestedConfig, n_positions: usize) -> ValuationWorkspace {
        ValuationWorkspace::sized_for(self.outer, self.inner, config, n_positions)
    }

    /// Runs the full nested procedure for the given liability positions.
    ///
    /// Each outer-loop worker thread builds one presized
    /// [`ValuationWorkspace`] and reuses it across every outer path of its
    /// chunk, so the `nP × nQ` inner stage performs zero steady-state heap
    /// allocations. The workspace is pure scratch — results are
    /// bit-identical to valuing each path with fresh buffers, for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration, generation and valuation errors.
    pub fn run(
        &self,
        positions: &[LiabilityPosition],
        config: &NestedConfig,
    ) -> Result<NestedResult, AlmError> {
        self.run_impl(positions, config, None)
    }

    /// Like [`NestedMonteCarlo::run`], but backing the **sequential**
    /// (`threads == 1`) outer loop with the caller's workspace so
    /// successive runs reuse its storage. Multi-threaded runs still
    /// provision one workspace per worker internally and leave `ws`
    /// untouched. Results are identical to [`NestedMonteCarlo::run`] in
    /// both cases.
    ///
    /// # Errors
    ///
    /// Same contract as [`NestedMonteCarlo::run`].
    pub fn run_with_workspace(
        &self,
        positions: &[LiabilityPosition],
        config: &NestedConfig,
        ws: &mut ValuationWorkspace,
    ) -> Result<NestedResult, AlmError> {
        self.run_impl(positions, config, Some(ws))
    }

    fn run_impl(
        &self,
        positions: &[LiabilityPosition],
        config: &NestedConfig,
        caller_ws: Option<&mut ValuationWorkspace>,
    ) -> Result<NestedResult, AlmError> {
        config.validate()?;
        if positions.is_empty() {
            return Err(AlmError::InvalidParameter("no liability positions"));
        }

        // Outer stage: nP real-world paths over [0, 1].
        let outer_set =
            self.outer
                .generate(Measure::RealWorld, config.n_outer, config.seed, None)?;
        let spy = outer_set.grid().steps_per_year();

        // Residual positions at t = 1 (year-1 flows drop out of Y_1).
        // Hoisted once per run and shared read-only across all workers —
        // the schedules never change per path.
        let shifted: Vec<LiabilityPosition> = positions
            .iter()
            .map(|p| LiabilityPosition {
                schedule: shift_schedule(&p.schedule, 1),
                profit_sharing: p.profit_sharing,
            })
            .collect();

        // Inner stage, one batch per outer path; one workspace per worker.
        let per_path: Vec<Result<(f64, f64, f64), AlmError>> = match caller_ws {
            Some(ws) if config.threads == 1 => (0..config.n_outer)
                .map(|p| self.value_outer_path(&outer_set, p, spy, positions, &shifted, config, ws))
                .collect(),
            _ => parallel_map_with(
                config.n_outer,
                config.threads,
                || self.workspace_for(config, positions.len()),
                |p, ws| {
                    self.value_outer_path(&outer_set, p, spy, positions, &shifted, config, ws)
                },
            ),
        };

        let mut y1 = Vec::with_capacity(config.n_outer);
        let mut year1_pv = Vec::with_capacity(config.n_outer);
        let mut dfs = Vec::with_capacity(config.n_outer);
        for r in per_path {
            let (y, first_year, df) = r?;
            y1.push(y);
            year1_pv.push(first_year);
            dfs.push(df);
        }

        let mean = stats::mean(&y1);
        let var_quantile = stats::quantile(&y1, config.confidence);
        let avg_df = stats::mean(&dfs);
        let scr = (var_quantile - mean) * avg_df;
        let bel = stats::mean(
            &y1.iter()
                .zip(&dfs)
                .zip(&year1_pv)
                .map(|((y, df), fy)| y * df + fy)
                .collect::<Vec<f64>>(),
        );
        let std_error = stats::std_error(&y1);
        Ok(NestedResult {
            y1,
            mean,
            var_quantile,
            scr,
            bel,
            std_error,
        })
    }

    /// Values one outer path: returns `(Y_1, discounted year-1 flows, outer
    /// discount factor to t = 1)`. All intermediates live in `ws`, which is
    /// fully rewritten before being read — reusing it across paths performs
    /// zero steady-state allocations without changing a single bit of the
    /// result.
    #[allow(clippy::too_many_arguments)]
    fn value_outer_path(
        &self,
        outer_set: &disar_stochastic::scenario::ScenarioSet,
        p: usize,
        spy: usize,
        positions: &[LiabilityPosition],
        shifted: &[LiabilityPosition],
        config: &NestedConfig,
        ws: &mut ValuationWorkspace,
    ) -> Result<(f64, f64, f64), AlmError> {
        let outer = outer_set.view();
        // First-year fund return on the outer path drives Φ_1 and the
        // year-1 flows.
        self.fund.annual_returns_into(
            &outer,
            p,
            self.equity_driver,
            self.rate_driver,
            &mut ws.outer_returns,
        )?;
        let i1 = ws.outer_returns[0];
        let df1 = outer.discount_factor(p, spy);

        let mut year1 = 0.0;
        ws.phi1.clear();
        for pos in positions {
            let phi = 1.0 + pos.profit_sharing.readjustment_rate(i1);
            if let Some(flow) = pos.schedule.flows.first() {
                if flow.year == 1 {
                    year1 += flow.total() * phi * df1;
                }
            }
            ws.phi1.push(phi);
        }

        // Inner stage: nQ risk-neutral paths anchored at the outer state,
        // filled into the workspace's reusable scenario buffer by the
        // lane-wise block kernels.
        outer.state_into(p, spy, &mut ws.state);
        let inner_seed = split_seed(config.seed ^ 0x1AAE_5EED, p as u64);
        if config.antithetic {
            self.inner.generate_antithetic_into_lanes(
                Measure::RiskNeutral,
                config.n_inner / 2,
                inner_seed,
                Some(&ws.state),
                &mut ws.inner_buf,
                config.lane,
            )?;
        } else {
            self.inner.generate_into_lanes(
                Measure::RiskNeutral,
                config.n_inner,
                inner_seed,
                Some(&ws.state),
                &mut ws.inner_buf,
                config.lane,
            )?;
        }
        let inner = ws.inner_buf.view();

        // Lane-major fast path: materialize every inner path's fund-return
        // and discount rows in one pass, then consume one contiguous row
        // pair per path. Per-path computation and accumulation order are
        // unchanged, so this is bit-identical to valuing path-by-path.
        let n_years = fill_valuation_panels(
            self.fund,
            &inner,
            self.equity_driver,
            self.rate_driver,
            &mut ws.scratch,
            &mut ws.returns_panel,
            &mut ws.dfs_panel,
        )?;
        ws.acc.clear();
        ws.acc.resize(shifted.len(), 0.0);
        for q in 0..config.n_inner {
            let row = q * n_years..(q + 1) * n_years;
            value_each_position_from_series(
                shifted,
                &ws.returns_panel[row.clone()],
                &ws.dfs_panel[row],
                &mut ws.vals,
            );
            for (a, v) in ws.acc.iter_mut().zip(&ws.vals) {
                *a += *v;
            }
        }
        let y: f64 = ws
            .acc
            .iter()
            .zip(&ws.phi1)
            .map(|(a, phi)| phi * a / config.n_inner as f64)
            .sum();
        Ok((y, year1, df1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
    use disar_actuarial::engine::ActuarialEngine;
    use disar_actuarial::lapse::ConstantLapse;
    use disar_actuarial::model_points::ModelPoint;
    use disar_actuarial::mortality::{Gender, LifeTable};
    use disar_stochastic::drivers::{Gbm, Vasicek};
    use disar_stochastic::scenario::TimeGrid;

    fn generators(horizon: f64) -> (ScenarioGenerator, ScenarioGenerator) {
        let build = |h: f64| {
            ScenarioGenerator::builder()
                .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).unwrap()))
                .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).unwrap()))
                .grid(TimeGrid::new(h, 12).unwrap())
                .build()
                .unwrap()
        };
        (build(1.0), build(horizon))
    }

    fn positions(term: u32) -> Vec<LiabilityPosition> {
        let table = LifeTable::italian_population();
        let lapse = ConstantLapse::new(0.03).unwrap();
        let engine = ActuarialEngine::new(&table, &lapse);
        [0.0, 0.02]
            .iter()
            .map(|&tech| {
                let ps = ProfitSharing::new(0.8, tech).unwrap();
                let c = Contract::new(
                    ProductKind::Endowment,
                    50,
                    Gender::Male,
                    term,
                    1000.0,
                    ps,
                )
                .unwrap();
                let mp = ModelPoint {
                    contract: c,
                    policy_count: 1,
                };
                LiabilityPosition {
                    schedule: engine.cash_flow_schedule(&mp).unwrap(),
                    profit_sharing: ps,
                }
            })
            .collect()
    }

    fn small_config(seed: u64) -> NestedConfig {
        NestedConfig {
            n_outer: 60,
            n_inner: 20,
            confidence: 0.995,
            seed,
            threads: 1,
            antithetic: false,
            lane: DEFAULT_LANE,
        }
    }

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = NestedConfig::paper_defaults(1);
        assert_eq!(c.n_outer, 1000);
        assert_eq!(c.n_inner, 50);
        assert_eq!(c.confidence, 0.995);
        assert_eq!(c.lane, DEFAULT_LANE);
    }

    #[test]
    fn run_produces_consistent_result() {
        let (outer, inner) = generators(10.0);
        let fund = SegregatedFund::italian_typical(20);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let res = mc.run(&positions(10), &small_config(3)).unwrap();
        assert_eq!(res.y1.len(), 60);
        assert!(res.mean > 0.0);
        assert!(res.var_quantile >= res.mean, "q99.5 must exceed the mean");
        assert!(res.scr >= 0.0);
        assert!(res.bel > 0.0);
        assert!(res.std_error > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (outer, inner) = generators(10.0);
        let fund = SegregatedFund::italian_typical(20);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let a = mc.run(&positions(10), &small_config(5)).unwrap();
        let b = mc.run(&positions(10), &small_config(5)).unwrap();
        assert_eq!(a, b);
        let c = mc.run(&positions(10), &small_config(6)).unwrap();
        assert_ne!(a.y1, c.y1);
    }

    #[test]
    fn threads_do_not_change_the_result() {
        let (outer, inner) = generators(8.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let seq = mc.run(&positions(8), &small_config(7)).unwrap();
        let par_cfg = NestedConfig {
            threads: 4,
            ..small_config(7)
        };
        let par = mc.run(&positions(8), &par_cfg).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn lane_width_does_not_change_the_result() {
        let (outer, inner) = generators(8.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let pos = positions(8);
        for antithetic in [false, true] {
            let scalar = mc
                .run(&pos, &NestedConfig { lane: 1, antithetic, ..small_config(13) })
                .unwrap();
            for lane in [2, 4, 8, 16, 64] {
                let blocked = mc
                    .run(&pos, &NestedConfig { lane, antithetic, ..small_config(13) })
                    .unwrap();
                assert_eq!(scalar, blocked, "lane {lane} antithetic {antithetic}");
            }
        }
    }

    #[test]
    fn config_validation() {
        let (outer, inner) = generators(5.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let pos = positions(5);
        for bad in [
            NestedConfig { n_outer: 0, ..small_config(1) },
            NestedConfig { n_inner: 0, ..small_config(1) },
            NestedConfig { confidence: 1.0, ..small_config(1) },
            NestedConfig { threads: 0, ..small_config(1) },
            NestedConfig { lane: 0, ..small_config(1) },
        ] {
            assert!(mc.run(&pos, &bad).is_err());
        }
        assert!(mc.run(&[], &small_config(1)).is_err());
    }

    #[test]
    fn engine_validation() {
        let (outer, inner) = generators(5.0);
        let fund = SegregatedFund::italian_typical(10);
        assert!(NestedMonteCarlo::new(&outer, &inner, &fund, 5, 0).is_err());
        // Outer grid shorter than a year.
        let short = ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.0).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).unwrap()))
            .grid(TimeGrid::new(0.5, 12).unwrap())
            .build()
            .unwrap();
        assert!(NestedMonteCarlo::new(&short, &inner, &fund, 1, 0).is_err());
    }

    #[test]
    fn antithetic_inner_sampling_matches_plain_mean() {
        let (outer, inner) = generators(8.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let pos = positions(8);
        let plain = mc.run(&pos, &small_config(11)).unwrap();
        let anti = mc
            .run(
                &pos,
                &NestedConfig {
                    antithetic: true,
                    ..small_config(11)
                },
            )
            .unwrap();
        // Same estimand: means agree within Monte Carlo noise.
        let rel = (anti.mean - plain.mean).abs() / plain.mean;
        assert!(rel < 0.05, "plain {} vs antithetic {}", plain.mean, anti.mean);
        assert_eq!(anti.y1.len(), plain.y1.len());
    }

    #[test]
    fn antithetic_requires_even_inner_count() {
        let (outer, inner) = generators(5.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let bad = NestedConfig {
            n_inner: 7,
            antithetic: true,
            ..small_config(1)
        };
        assert!(mc.run(&positions(5), &bad).is_err());
    }

    #[test]
    fn workspace_reuse_across_runs_matches_fresh_workspaces() {
        let (outer, inner) = generators(8.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let pos = positions(8);
        let mut ws = mc.workspace_for(&small_config(3), pos.len());
        // Two successive runs through the same workspace — including a
        // config change in between — must equal fresh-workspace runs.
        let first = mc.run_with_workspace(&pos, &small_config(3), &mut ws).unwrap();
        let anti_cfg = NestedConfig {
            antithetic: true,
            ..small_config(7)
        };
        let second = mc.run_with_workspace(&pos, &anti_cfg, &mut ws).unwrap();
        assert_eq!(first, mc.run(&pos, &small_config(3)).unwrap());
        assert_eq!(second, mc.run(&pos, &anti_cfg).unwrap());
    }

    #[test]
    fn more_inner_paths_reduce_inner_noise() {
        // With a fixed outer stage, increasing nQ should not blow up the
        // spread of Y_1 — crude but catches sign errors in averaging.
        let (outer, inner) = generators(6.0);
        let fund = SegregatedFund::italian_typical(10);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let pos = positions(6);
        let lo = mc
            .run(&pos, &NestedConfig { n_inner: 2, ..small_config(9) })
            .unwrap();
        let hi = mc
            .run(&pos, &NestedConfig { n_inner: 40, ..small_config(9) })
            .unwrap();
        let sd_lo = disar_math::stats::std_dev(&lo.y1);
        let sd_hi = disar_math::stats::std_dev(&hi.y1);
        assert!(sd_hi <= sd_lo * 1.2, "sd_hi {sd_hi} vs sd_lo {sd_lo}");
    }
}
