//! DiAlmEng — asset-liability-management valuation (type-B EEBs).
//!
//! This crate is the computational heart of the DISAR reproduction: it
//! values the liabilities of profit-sharing policies market-consistently,
//! which is "the most time-consuming activity" the paper offloads to the
//! cloud. Components:
//!
//! - [`fund`]: the segregated fund with *book-value* accounting — "Ft is not
//!   necessarily the market value of the fund, but could be a book value …
//!   so that the volatility of returns can be strategically controlled by
//!   the manager" (§II). The fund turns joint market scenarios into annual
//!   fund returns `I_t` via a smoothed bond book-yield and a
//!   gain-realization management strategy;
//! - [`liability`]: scenario-wise present value of a probabilized cash-flow
//!   schedule under profit sharing (`Φ_t` applied per Eq. 2, discounting by
//!   the scenario's money-market account);
//! - [`nested`]: the two-stage nested Monte Carlo of §II — `nP` outer
//!   real-world paths to `t = 1`, `nQ` inner risk-neutral paths per outer
//!   endpoint — producing the distribution of `Y_1` and the 99.5 % VaR
//!   Solvency Capital Requirement;
//! - [`lsmc`]: the Least-Squares Monte Carlo shortcut — calibrate a
//!   polynomial approximation of the inner value on a small `n'_P × n'_Q`
//!   sample, then evaluate it on every outer path;
//! - [`parallel`]: data-parallel execution over outer paths (crossbeam
//!   scoped threads, shared via `disar_math::parallel`), the in-process
//!   analogue of DISAR's distributed type-B EEBs;
//! - [`workspace`]: per-worker scratch ([`ValuationWorkspace`]) that makes
//!   the `nP × nQ` inner stage allocation-free without changing a bit of
//!   the results (DESIGN.md §10).

pub mod fund;
pub mod liability;
pub mod lsmc;
pub mod nested;
pub mod parallel;
pub mod report;
pub mod workspace;

mod error;

pub use error::AlmError;
pub use fund::SegregatedFund;
pub use nested::{NestedConfig, NestedResult};
pub use report::SolvencyReport;
pub use workspace::ValuationWorkspace;
