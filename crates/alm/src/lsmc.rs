//! Least-Squares Monte Carlo (Bauer, Reuss & Singer 2012).
//!
//! "The number of inner simulations can be strongly reduced if the so-called
//! Least Square Monte Carlo technique is used. With LSMC, the plain Monte
//! Carlo determination of Y_t is replaced by a truncated series expansion in
//! orthonormal polynomials, whose parameters are calibrated with a
//! n'_P × n'_Q smaller sample obtained by plain nested Monte Carlo
//! simulation" (§II).
//!
//! Implementation: a small calibration run produces noisy `(state_1, Y_1)`
//! pairs; we regress `Y_1` on an orthonormal polynomial basis of the
//! (standardized) outer state and then evaluate the fitted expansion on the
//! full set of `nP` outer paths — no inner simulations needed there.
//!
//! The calibration stage is a plain [`NestedMonteCarlo::run`], so it
//! inherits the allocation-free kernel layer (per-worker
//! [`crate::workspace::ValuationWorkspace`]s, DESIGN.md §10) — the
//! `n'_P × n'_Q` inner evaluations reuse each worker's buffers.

use crate::fund::SegregatedFund;
use crate::liability::LiabilityPosition;
use crate::nested::{NestedConfig, NestedMonteCarlo, NestedResult};
use crate::AlmError;
use disar_math::matrix::ridge_least_squares;
use disar_math::poly::{MultiBasis, PolyFamily};
use disar_math::stats;
use disar_stochastic::scenario::{Measure, ScenarioGenerator};
use serde::{Deserialize, Serialize};

/// Configuration of an LSMC valuation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LsmcConfig {
    /// Outer paths of the calibration sample (`n'_P`, typically ≪ `nP`).
    pub calibration_outer: usize,
    /// Inner paths per calibration outer path (`n'_Q`).
    pub calibration_inner: usize,
    /// Outer paths of the final evaluation (`nP`).
    pub n_outer: usize,
    /// Total degree of the polynomial basis.
    pub degree: usize,
    /// Orthonormal family to expand in.
    pub family: PolyFamily,
    /// Ridge regularization of the regression (0 = OLS).
    pub ridge: f64,
    /// VaR confidence level.
    pub confidence: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the calibration stage.
    pub threads: usize,
}

impl LsmcConfig {
    /// A sensible default mirroring the paper's setup: calibrate on
    /// 100 × 50, evaluate on 1000 outer paths, Hermite basis of degree 2.
    pub fn paper_defaults(seed: u64) -> Self {
        LsmcConfig {
            calibration_outer: 100,
            calibration_inner: 50,
            n_outer: 1000,
            degree: 2,
            family: PolyFamily::Hermite,
            ridge: 1e-8,
            confidence: 0.995,
            seed,
            threads: 1,
        }
    }
}

/// LSMC valuation engine wrapping a [`NestedMonteCarlo`] for calibration.
pub struct Lsmc<'a> {
    nested: NestedMonteCarlo<'a>,
    outer: &'a ScenarioGenerator,
}

impl<'a> Lsmc<'a> {
    /// Creates the engine over the same generator pair as the nested one.
    ///
    /// # Errors
    ///
    /// Same validation as [`NestedMonteCarlo::new`].
    pub fn new(
        outer: &'a ScenarioGenerator,
        inner: &'a ScenarioGenerator,
        fund: &'a SegregatedFund,
        equity_driver: usize,
        rate_driver: usize,
    ) -> Result<Self, AlmError> {
        Ok(Lsmc {
            nested: NestedMonteCarlo::new(outer, inner, fund, equity_driver, rate_driver)?,
            outer,
        })
    }

    /// Runs the LSMC procedure.
    ///
    /// # Errors
    ///
    /// Propagates calibration, regression and generation failures.
    pub fn run(
        &self,
        positions: &[LiabilityPosition],
        config: &LsmcConfig,
    ) -> Result<NestedResult, AlmError> {
        if config.n_outer == 0 || config.calibration_outer == 0 {
            return Err(AlmError::InvalidParameter("path counts must be > 0"));
        }
        // 1. Calibration: plain nested MC on the small n'_P × n'_Q sample.
        let calib_cfg = NestedConfig {
            n_outer: config.calibration_outer,
            n_inner: config.calibration_inner,
            confidence: config.confidence,
            seed: config.seed ^ 0xCA11_B0A7,
            threads: config.threads,
            antithetic: false,
            lane: disar_stochastic::scenario::DEFAULT_LANE,
        };
        let calib = self.nested.run(positions, &calib_cfg)?;

        // Outer endpoint states of the calibration sample.
        let calib_set = self.outer.generate(
            Measure::RealWorld,
            config.calibration_outer,
            calib_cfg.seed,
            None,
        )?;
        let spy = calib_set.grid().steps_per_year();
        let calib_view = calib_set.view();
        let mut state = Vec::new();
        let calib_states: Vec<Vec<f64>> = (0..config.calibration_outer)
            .map(|p| {
                calib_view.state_into(p, spy, &mut state);
                state.clone()
            })
            .collect();

        // Standardize states so the orthonormal bases see O(1) inputs.
        let dim = calib_states[0].len();
        let mut means = vec![0.0; dim];
        let mut sds = vec![0.0; dim];
        for j in 0..dim {
            let col: Vec<f64> = calib_states.iter().map(|s| s[j]).collect();
            means[j] = stats::mean(&col);
            let sd = stats::std_dev(&col);
            sds[j] = if sd == 0.0 { 1.0 } else { sd };
        }
        let standardize = |s: &[f64]| -> Vec<f64> {
            s.iter()
                .enumerate()
                .map(|(j, v)| (v - means[j]) / sds[j])
                .collect()
        };

        // 2. Regression of Y_1 on the polynomial basis.
        let basis = MultiBasis::new(config.family, dim, config.degree);
        let design_rows: Vec<Vec<f64>> =
            calib_states.iter().map(|s| standardize(s)).collect();
        let design = basis.design_matrix(&design_rows);
        let beta = ridge_least_squares(&design, &calib.y1, config.ridge)?;

        // 3. Evaluation: full nP outer set, expansion instead of inner sims.
        let eval_set =
            self.outer
                .generate(Measure::RealWorld, config.n_outer, config.seed, None)?;
        let eval_view = eval_set.view();
        let y1: Vec<f64> = (0..config.n_outer)
            .map(|p| {
                eval_view.state_into(p, spy, &mut state);
                let s = standardize(&state);
                basis
                    .eval(&s)
                    .iter()
                    .zip(&beta)
                    .map(|(b, w)| b * w)
                    .sum()
            })
            .collect();
        let dfs: Vec<f64> = (0..config.n_outer)
            .map(|p| eval_set.discount_factor(p, spy))
            .collect();

        let mean = stats::mean(&y1);
        let var_quantile = stats::quantile(&y1, config.confidence);
        let avg_df = stats::mean(&dfs);
        Ok(NestedResult {
            scr: (var_quantile - mean) * avg_df,
            bel: mean * avg_df,
            std_error: stats::std_error(&y1),
            mean,
            var_quantile,
            y1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
    use disar_actuarial::engine::ActuarialEngine;
    use disar_actuarial::lapse::ConstantLapse;
    use disar_actuarial::model_points::ModelPoint;
    use disar_actuarial::mortality::{Gender, LifeTable};
    use disar_stochastic::drivers::{Gbm, Vasicek};
    use disar_stochastic::scenario::TimeGrid;

    fn generators(horizon: f64) -> (ScenarioGenerator, ScenarioGenerator) {
        let build = |h: f64| {
            ScenarioGenerator::builder()
                .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).unwrap()))
                .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).unwrap()))
                .grid(TimeGrid::new(h, 12).unwrap())
                .build()
                .unwrap()
        };
        (build(1.0), build(horizon))
    }

    fn positions(term: u32) -> Vec<LiabilityPosition> {
        let table = LifeTable::italian_population();
        let lapse = ConstantLapse::new(0.03).unwrap();
        let engine = ActuarialEngine::new(&table, &lapse);
        let ps = ProfitSharing::new(0.8, 0.02).unwrap();
        let c = Contract::new(ProductKind::Endowment, 50, Gender::Male, term, 1000.0, ps)
            .unwrap();
        let mp = ModelPoint {
            contract: c,
            policy_count: 1,
        };
        vec![LiabilityPosition {
            schedule: engine.cash_flow_schedule(&mp).unwrap(),
            profit_sharing: ps,
        }]
    }

    fn small_lsmc(seed: u64) -> LsmcConfig {
        LsmcConfig {
            calibration_outer: 40,
            calibration_inner: 10,
            n_outer: 120,
            degree: 2,
            family: PolyFamily::Hermite,
            ridge: 1e-8,
            confidence: 0.995,
            seed,
            threads: 1,
        }
    }

    #[test]
    fn lsmc_tracks_nested_mean() {
        let (outer, inner) = generators(8.0);
        let fund = SegregatedFund::italian_typical(10);
        let pos = positions(8);
        let lsmc = Lsmc::new(&outer, &inner, &fund, 1, 0).unwrap();
        let l = lsmc.run(&pos, &small_lsmc(3)).unwrap();
        let nested = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let n = nested
            .run(
                &pos,
                &NestedConfig {
                    n_outer: 120,
                    n_inner: 20,
                    confidence: 0.995,
                    seed: 3,
                    threads: 1,
                    antithetic: false,
                    lane: disar_stochastic::scenario::DEFAULT_LANE,
                },
            )
            .unwrap();
        let rel = (l.mean - n.mean).abs() / n.mean;
        assert!(rel < 0.05, "LSMC mean off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn lsmc_is_deterministic() {
        let (outer, inner) = generators(6.0);
        let fund = SegregatedFund::italian_typical(10);
        let pos = positions(6);
        let lsmc = Lsmc::new(&outer, &inner, &fund, 1, 0).unwrap();
        let a = lsmc.run(&pos, &small_lsmc(5)).unwrap();
        let b = lsmc.run(&pos, &small_lsmc(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lsmc_validates_config() {
        let (outer, inner) = generators(6.0);
        let fund = SegregatedFund::italian_typical(10);
        let lsmc = Lsmc::new(&outer, &inner, &fund, 1, 0).unwrap();
        let mut cfg = small_lsmc(1);
        cfg.n_outer = 0;
        assert!(lsmc.run(&positions(6), &cfg).is_err());
    }

    #[test]
    fn paper_defaults_are_smaller_than_nested() {
        let c = LsmcConfig::paper_defaults(0);
        assert!(c.calibration_outer * c.calibration_inner < 1000 * 50);
        assert_eq!(c.n_outer, 1000);
    }
}
