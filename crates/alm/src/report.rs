//! Solvency II balance-sheet composition.
//!
//! The Directive's headline number is the *solvency ratio*: eligible own
//! funds over the SCR. This module composes it from the valuation outputs:
//!
//! ```text
//! technical provisions = BEL + risk margin
//! own funds            = assets − technical provisions
//! solvency ratio       = own funds / SCR
//! ```
//!
//! The risk margin uses the standard cost-of-capital simplification
//! (EIOPA "method 4"): `RM = CoC · SCR · modified duration`, with the
//! regulatory cost-of-capital rate of 6 %.

use crate::nested::NestedResult;
use crate::AlmError;
use serde::{Deserialize, Serialize};

/// The regulatory cost-of-capital rate (Delegated Regulation art. 39).
pub const COST_OF_CAPITAL_RATE: f64 = 0.06;

/// A composed Solvency II position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolvencyReport {
    /// Market value of assets backing the liabilities.
    pub asset_value: f64,
    /// Best-estimate liability.
    pub bel: f64,
    /// Cost-of-capital risk margin.
    pub risk_margin: f64,
    /// Technical provisions (`BEL + RM`).
    pub technical_provisions: f64,
    /// Eligible own funds (`assets − TP`).
    pub own_funds: f64,
    /// Solvency Capital Requirement.
    pub scr: f64,
    /// `own funds / SCR` — must exceed 1.0 for a compliant undertaking.
    pub solvency_ratio: f64,
}

impl SolvencyReport {
    /// Composes a report from a valuation result.
    ///
    /// `liability_duration` is the modified duration (years) used by the
    /// duration-based risk-margin simplification.
    ///
    /// # Errors
    ///
    /// Returns [`AlmError::InvalidParameter`] for a non-positive asset
    /// value or duration, or a non-positive SCR (the ratio would be
    /// undefined).
    pub fn from_valuation(
        asset_value: f64,
        valuation: &NestedResult,
        liability_duration: f64,
    ) -> Result<Self, AlmError> {
        if !(asset_value > 0.0) {
            return Err(AlmError::InvalidParameter("asset_value must be positive"));
        }
        if !(liability_duration > 0.0) {
            return Err(AlmError::InvalidParameter(
                "liability_duration must be positive",
            ));
        }
        if !(valuation.scr > 0.0) {
            return Err(AlmError::InvalidParameter(
                "SCR must be positive to form a solvency ratio",
            ));
        }
        let risk_margin = COST_OF_CAPITAL_RATE * valuation.scr * liability_duration;
        let technical_provisions = valuation.bel + risk_margin;
        let own_funds = asset_value - technical_provisions;
        Ok(SolvencyReport {
            asset_value,
            bel: valuation.bel,
            risk_margin,
            technical_provisions,
            own_funds,
            scr: valuation.scr,
            solvency_ratio: own_funds / valuation.scr,
        })
    }

    /// `true` when own funds cover the SCR (ratio ≥ 1).
    pub fn is_compliant(&self) -> bool {
        self.solvency_ratio >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valuation(bel: f64, scr: f64) -> NestedResult {
        NestedResult {
            y1: vec![bel],
            mean: bel,
            var_quantile: bel + scr,
            scr,
            bel,
            std_error: 1.0,
        }
    }

    #[test]
    fn composition_identities() {
        let v = valuation(1_000_000.0, 80_000.0);
        let r = SolvencyReport::from_valuation(1_200_000.0, &v, 8.0).unwrap();
        assert!((r.risk_margin - 0.06 * 80_000.0 * 8.0).abs() < 1e-9);
        assert!((r.technical_provisions - (r.bel + r.risk_margin)).abs() < 1e-9);
        assert!((r.own_funds - (r.asset_value - r.technical_provisions)).abs() < 1e-9);
        assert!((r.solvency_ratio - r.own_funds / r.scr).abs() < 1e-12);
    }

    #[test]
    fn compliance_threshold() {
        let v = valuation(1_000_000.0, 100_000.0);
        // Own funds exactly 1x SCR: assets = BEL + RM + SCR.
        let rm = 0.06 * 100_000.0 * 5.0;
        let assets = 1_000_000.0 + rm + 100_000.0;
        let r = SolvencyReport::from_valuation(assets, &v, 5.0).unwrap();
        assert!((r.solvency_ratio - 1.0).abs() < 1e-9);
        assert!(r.is_compliant());
        let thin = SolvencyReport::from_valuation(assets - 50_000.0, &v, 5.0).unwrap();
        assert!(!thin.is_compliant());
    }

    #[test]
    fn more_capital_requirement_lower_ratio() {
        let lo = SolvencyReport::from_valuation(1_500_000.0, &valuation(1e6, 5e4), 8.0).unwrap();
        let hi = SolvencyReport::from_valuation(1_500_000.0, &valuation(1e6, 2e5), 8.0).unwrap();
        assert!(hi.solvency_ratio < lo.solvency_ratio);
    }

    #[test]
    fn validation() {
        let v = valuation(1e6, 8e4);
        assert!(SolvencyReport::from_valuation(0.0, &v, 8.0).is_err());
        assert!(SolvencyReport::from_valuation(1e6, &v, 0.0).is_err());
        let zero_scr = valuation(1e6, 0.0);
        assert!(SolvencyReport::from_valuation(1.5e6, &zero_scr, 8.0).is_err());
    }

    #[test]
    fn report_from_real_valuation() {
        use crate::liability::LiabilityPosition;
        use crate::nested::{NestedConfig, NestedMonteCarlo};
        use crate::SegregatedFund;
        use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
        use disar_actuarial::engine::ActuarialEngine;
        use disar_actuarial::lapse::ConstantLapse;
        use disar_actuarial::model_points::ModelPoint;
        use disar_actuarial::mortality::{Gender, LifeTable};
        use disar_stochastic::drivers::{Gbm, Vasicek};
        use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};

        let table = LifeTable::italian_population();
        let lapse = ConstantLapse::new(0.03).unwrap();
        let engine = ActuarialEngine::new(&table, &lapse);
        let ps = ProfitSharing::new(0.8, 0.02).unwrap();
        let c = Contract::new(ProductKind::Endowment, 50, Gender::Male, 10, 1000.0, ps)
            .unwrap();
        let positions = vec![LiabilityPosition {
            schedule: engine
                .cash_flow_schedule(&ModelPoint { contract: c, policy_count: 1 })
                .unwrap(),
            profit_sharing: ps,
        }];
        let build = |h: f64| {
            ScenarioGenerator::builder()
                .driver(Box::new(Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.15).unwrap()))
                .driver(Box::new(Gbm::new(100.0, 0.065, 0.17, 0.025).unwrap()))
                .grid(TimeGrid::new(h, 12).unwrap())
                .build()
                .unwrap()
        };
        let outer = build(1.0);
        let inner = build(10.0);
        let fund = SegregatedFund::italian_typical(20);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();
        let res = mc
            .run(
                &positions,
                &NestedConfig {
                    n_outer: 80,
                    n_inner: 20,
                    confidence: 0.995,
                    seed: 3,
                    threads: 1,
                    antithetic: false,
                    lane: disar_stochastic::scenario::DEFAULT_LANE,
                },
            )
            .unwrap();
        // Assets at 130% of BEL: a well-capitalized book.
        let report = SolvencyReport::from_valuation(1.3 * res.bel, &res, 7.0).unwrap();
        assert!(report.own_funds > 0.0);
        assert!(report.solvency_ratio > 1.0, "{report:?}");
    }
}
