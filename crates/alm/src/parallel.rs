//! Data-parallel execution over independent work items.
//!
//! Type-B EEBs are "parallelized by distributing different work units on the
//! available computing nodes … each node computes concurrently average local
//! values, which are then suitably combined" (§III). In-process, the same
//! structure is a parallel map over outer paths with a final gather.
//!
//! The implementation lives in [`disar_math::parallel`] so the provisioning
//! layer (Algorithm 1's grid sweep, the predictor retrain loop) and the
//! bench campaign driver can share it; this module re-exports it under the
//! historical `disar_alm::parallel` path used by the nested Monte Carlo.
//!
//! # Example
//!
//! ```
//! use disar_alm::parallel::parallel_map;
//!
//! let squares = parallel_map(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

pub use disar_math::parallel::{parallel_map, parallel_map_mut, parallel_map_with};
