use std::error::Error;
use std::fmt;

/// Error type for ALM valuation.
#[derive(Debug, Clone, PartialEq)]
pub enum AlmError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// Scenario data did not match the configured drivers/grid.
    ScenarioMismatch(String),
    /// An underlying stochastic component failed.
    Stochastic(String),
    /// A numerical routine (e.g. the LSMC regression) failed.
    Numerical(String),
}

impl fmt::Display for AlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlmError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            AlmError::ScenarioMismatch(what) => write!(f, "scenario mismatch: {what}"),
            AlmError::Stochastic(what) => write!(f, "scenario generation failed: {what}"),
            AlmError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl Error for AlmError {}

impl From<disar_stochastic::StochasticError> for AlmError {
    fn from(e: disar_stochastic::StochasticError) -> Self {
        AlmError::Stochastic(e.to_string())
    }
}

impl From<disar_math::MathError> for AlmError {
    fn from(e: disar_math::MathError) -> Self {
        AlmError::Numerical(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let e: AlmError = disar_math::MathError::Singular.into();
        assert!(matches!(e, AlmError::Numerical(_)));
        let e: AlmError = disar_stochastic::StochasticError::InvalidParameter("x").into();
        assert!(matches!(e, AlmError::Stochastic(_)));
    }
}
