//! Property-based tests of the ALM valuation layer.

use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::ConstantLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::{
    shift_schedule, value_each_position_on_path, value_positions_all_paths,
    value_positions_on_path, LiabilityPosition,
};
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::parallel::parallel_map;
use disar_alm::SegregatedFund;
use disar_math::rng::split_seed;
use disar_math::stats;
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{Measure, ScenarioGenerator, ScenarioSet, TimeGrid};
use proptest::prelude::*;

fn scenario_set(horizon: f64, n_paths: usize, seed: u64) -> ScenarioSet {
    ScenarioGenerator::builder()
        .driver(Box::new(Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.1).expect("valid")))
        .driver(Box::new(Gbm::new(100.0, 0.06, 0.18, 0.025).expect("valid")))
        .grid(TimeGrid::new(horizon, 12).expect("valid"))
        .build()
        .expect("valid")
        .generate(Measure::RiskNeutral, n_paths, seed, None)
        .expect("valid")
}

fn position(age: u32, term: u32, beta: f64, sum: f64) -> LiabilityPosition {
    let table = LifeTable::italian_population();
    let lapse = ConstantLapse::new(0.03).expect("valid");
    let engine = ActuarialEngine::new(&table, &lapse);
    let ps = ProfitSharing::new(beta, 0.02).expect("valid");
    let c = Contract::new(ProductKind::Endowment, age, Gender::Male, term, sum, ps)
        .expect("valid");
    LiabilityPosition {
        schedule: engine
            .cash_flow_schedule(&ModelPoint { contract: c, policy_count: 1 })
            .expect("valid"),
        profit_sharing: ps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Valuation is homogeneous of degree one in the insured sum.
    #[test]
    fn valuation_linear_in_sum(
        age in 30u32..65,
        term in 3u32..15,
        scale in 1.5f64..10.0,
        seed in 0u64..50,
    ) {
        let set = scenario_set(16.0, 3, seed);
        let fund = SegregatedFund::italian_typical(20);
        let base = position(age, term, 0.8, 1000.0);
        let scaled = position(age, term, 0.8, 1000.0 * scale);
        for p in 0..set.n_paths() {
            let v1 = value_positions_on_path(std::slice::from_ref(&base), &fund, &set, p, 1, 0).expect("ok");
            let v2 = value_positions_on_path(std::slice::from_ref(&scaled), &fund, &set, p, 1, 0).expect("ok");
            prop_assert!((v2 - scale * v1).abs() < 1e-6 * v2.max(1.0));
        }
    }

    /// Valuations are strictly positive and finite across random books.
    #[test]
    fn valuations_positive_finite(
        ages in prop::collection::vec(25u32..70, 1..5),
        term in 3u32..20,
        seed in 0u64..50,
    ) {
        let set = scenario_set(21.0, 4, seed);
        let fund = SegregatedFund::italian_typical(30);
        let positions: Vec<LiabilityPosition> = ages
            .iter()
            .map(|&a| position(a, term, 0.8, 500.0))
            .collect();
        let values = value_positions_all_paths(&positions, &fund, &set, 1, 0).expect("ok");
        for v in values {
            prop_assert!(v.is_finite());
            prop_assert!(v > 0.0);
        }
    }

    /// Shifting a schedule by its full term leaves nothing; shifting by
    /// zero is the identity; intermediate shifts conserve the remaining
    /// flows' amounts.
    #[test]
    fn shift_schedule_properties(age in 30u32..60, term in 2u32..20, by in 0u32..25) {
        let pos = position(age, term, 0.8, 1000.0);
        let shifted = shift_schedule(&pos.schedule, by);
        if by == 0 {
            prop_assert_eq!(&shifted, &pos.schedule);
        }
        if by >= term {
            prop_assert!(shifted.flows.is_empty());
        }
        let expect: f64 = pos
            .schedule
            .flows
            .iter()
            .filter(|f| f.year > by)
            .map(|f| f.total())
            .sum();
        let got: f64 = shifted.flows.iter().map(|f| f.total()).sum();
        prop_assert!((expect - got).abs() < 1e-9);
        for f in &shifted.flows {
            prop_assert!(f.year >= 1);
        }
    }

    /// parallel_map equals the sequential map for arbitrary sizes/threads.
    #[test]
    fn parallel_map_equivalence(n in 0usize..200, threads in 1usize..9, salt in 0u64..100) {
        let f = |i: usize| (i as u64).wrapping_mul(salt.wrapping_add(11)) ^ salt;
        let seq: Vec<u64> = (0..n).map(f).collect();
        let par = parallel_map(n, threads, f);
        prop_assert_eq!(seq, par);
    }
}

fn nested_generators(inner_horizon: f64) -> (ScenarioGenerator, ScenarioGenerator) {
    let build = |h: f64| {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).expect("valid")))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).expect("valid")))
            .grid(TimeGrid::new(h, 4).expect("valid"))
            .build()
            .expect("valid")
    };
    (build(1.0), build(inner_horizon))
}

/// The pre-workspace nested procedure, reimplemented with the allocating
/// APIs only (`generate`, `value_each_position_on_path`) — the reference
/// the zero-allocation kernel path must match to the bit. The outer state
/// is read via `view().state_into`, which is bit-identical to the removed
/// `state_at` (it reads the same `[path][driver][step]` cells in the same
/// order), so the frozen reference is unchanged numerically.
fn reference_nested(
    outer: &ScenarioGenerator,
    inner: &ScenarioGenerator,
    fund: &SegregatedFund,
    positions: &[LiabilityPosition],
    config: &NestedConfig,
) -> (Vec<f64>, f64, f64, f64) {
    let outer_set = outer
        .generate(Measure::RealWorld, config.n_outer, config.seed, None)
        .expect("outer generation");
    let spy = outer_set.grid().steps_per_year();
    let shifted: Vec<LiabilityPosition> = positions
        .iter()
        .map(|p| LiabilityPosition {
            schedule: shift_schedule(&p.schedule, 1),
            profit_sharing: p.profit_sharing,
        })
        .collect();

    let mut y1 = Vec::new();
    let mut year1_pv = Vec::new();
    let mut dfs = Vec::new();
    for p in 0..config.n_outer {
        let returns = fund
            .annual_returns(&outer_set, p, 1, 0)
            .expect("fund returns");
        let i1 = returns[0];
        let df1 = outer_set.discount_factor(p, spy);
        let mut year1 = 0.0;
        let mut phi1 = Vec::new();
        for pos in positions {
            let phi = 1.0 + pos.profit_sharing.readjustment_rate(i1);
            if let Some(flow) = pos.schedule.flows.first() {
                if flow.year == 1 {
                    year1 += flow.total() * phi * df1;
                }
            }
            phi1.push(phi);
        }
        let mut state = Vec::new();
        outer_set.view().state_into(p, spy, &mut state);
        let inner_seed = split_seed(config.seed ^ 0x1AAE_5EED, p as u64);
        let inner_set = if config.antithetic {
            inner
                .generate_antithetic(
                    Measure::RiskNeutral,
                    config.n_inner / 2,
                    inner_seed,
                    Some(&state),
                )
                .expect("inner generation")
        } else {
            inner
                .generate(Measure::RiskNeutral, config.n_inner, inner_seed, Some(&state))
                .expect("inner generation")
        };
        let mut acc = vec![0.0; shifted.len()];
        for q in 0..config.n_inner {
            let vals = value_each_position_on_path(&shifted, fund, &inner_set, q, 1, 0)
                .expect("inner valuation");
            for (a, v) in acc.iter_mut().zip(&vals) {
                *a += *v;
            }
        }
        let y: f64 = acc
            .iter()
            .zip(&phi1)
            .map(|(a, phi)| phi * a / config.n_inner as f64)
            .sum();
        y1.push(y);
        year1_pv.push(year1);
        dfs.push(df1);
    }

    let mean = stats::mean(&y1);
    let var_quantile = stats::quantile(&y1, config.confidence);
    let avg_df = stats::mean(&dfs);
    let scr = (var_quantile - mean) * avg_df;
    let bel = stats::mean(
        &y1.iter()
            .zip(&dfs)
            .zip(&year1_pv)
            .map(|((y, df), fy)| y * df + fy)
            .collect::<Vec<f64>>(),
    );
    (y1, mean, scr, bel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The workspace-backed nested engine is bit-identical to the
    /// allocating reference — sequential and threaded, plain and
    /// antithetic, for arbitrary seeds, path counts **and lane widths**
    /// (the reference predates the block kernels entirely, so this pins
    /// `lane = k` to the historical scalar implementation, not just to
    /// `lane = 1`).
    #[test]
    fn nested_kernel_bitwise_matches_allocating_reference(
        seed in 0u64..200,
        n_outer in 2usize..8,
        inner_pairs in 1usize..4,
        antithetic in proptest::bool::ANY,
        threads in 1usize..4,
        lane in proptest::sample::select(vec![1usize, 2, 4, 8, 16]),
    ) {
        let (outer, inner) = nested_generators(6.0);
        let fund = SegregatedFund::italian_typical(10);
        let positions = vec![position(45, 6, 0.8, 1000.0), position(55, 6, 0.85, 700.0)];
        let config = NestedConfig {
            n_outer,
            n_inner: 2 * inner_pairs,
            confidence: 0.995,
            seed,
            threads,
            antithetic,
            lane,
        };
        let (y1, mean, scr, bel) =
            reference_nested(&outer, &inner, &fund, &positions, &config);
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("engine");
        let res = mc.run(&positions, &config).expect("run");
        prop_assert_eq!(res.y1.len(), y1.len());
        for (a, b) in res.y1.iter().zip(&y1) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(res.mean.to_bits(), mean.to_bits());
        prop_assert_eq!(res.scr.to_bits(), scr.to_bits());
        prop_assert_eq!(res.bel.to_bits(), bel.to_bits());
    }

    /// A single workspace driven through an arbitrary sequence of
    /// differently-shaped runs never leaks state: every run equals the
    /// same run on a fresh engine-allocated workspace.
    #[test]
    fn workspace_reuse_never_leaks_state(
        seeds in prop::collection::vec(
            (
                0u64..100,
                2usize..6,
                1usize..3,
                proptest::bool::ANY,
                proptest::sample::select(vec![1usize, 2, 4, 8, 16]),
            ),
            2..4,
        ),
    ) {
        let (outer, inner) = nested_generators(6.0);
        let fund = SegregatedFund::italian_typical(10);
        let positions = vec![position(50, 6, 0.8, 1000.0)];
        let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("engine");
        let mut ws = disar_alm::ValuationWorkspace::new();
        for (seed, n_outer, inner_pairs, antithetic, lane) in seeds {
            let config = NestedConfig {
                n_outer,
                n_inner: 2 * inner_pairs,
                confidence: 0.995,
                seed,
                threads: 1,
                antithetic,
                lane,
            };
            let reused = mc.run_with_workspace(&positions, &config, &mut ws).expect("run");
            let fresh = mc.run(&positions, &config).expect("run");
            prop_assert_eq!(reused, fresh);
        }
    }
}
