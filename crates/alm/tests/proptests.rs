//! Property-based tests of the ALM valuation layer.

use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::ConstantLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::{
    shift_schedule, value_positions_all_paths, value_positions_on_path, LiabilityPosition,
};
use disar_alm::parallel::parallel_map;
use disar_alm::SegregatedFund;
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{Measure, ScenarioGenerator, ScenarioSet, TimeGrid};
use proptest::prelude::*;

fn scenario_set(horizon: f64, n_paths: usize, seed: u64) -> ScenarioSet {
    ScenarioGenerator::builder()
        .driver(Box::new(Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.1).expect("valid")))
        .driver(Box::new(Gbm::new(100.0, 0.06, 0.18, 0.025).expect("valid")))
        .grid(TimeGrid::new(horizon, 12).expect("valid"))
        .build()
        .expect("valid")
        .generate(Measure::RiskNeutral, n_paths, seed, None)
        .expect("valid")
}

fn position(age: u32, term: u32, beta: f64, sum: f64) -> LiabilityPosition {
    let table = LifeTable::italian_population();
    let lapse = ConstantLapse::new(0.03).expect("valid");
    let engine = ActuarialEngine::new(&table, &lapse);
    let ps = ProfitSharing::new(beta, 0.02).expect("valid");
    let c = Contract::new(ProductKind::Endowment, age, Gender::Male, term, sum, ps)
        .expect("valid");
    LiabilityPosition {
        schedule: engine
            .cash_flow_schedule(&ModelPoint { contract: c, policy_count: 1 })
            .expect("valid"),
        profit_sharing: ps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Valuation is homogeneous of degree one in the insured sum.
    #[test]
    fn valuation_linear_in_sum(
        age in 30u32..65,
        term in 3u32..15,
        scale in 1.5f64..10.0,
        seed in 0u64..50,
    ) {
        let set = scenario_set(16.0, 3, seed);
        let fund = SegregatedFund::italian_typical(20);
        let base = position(age, term, 0.8, 1000.0);
        let scaled = position(age, term, 0.8, 1000.0 * scale);
        for p in 0..set.n_paths() {
            let v1 = value_positions_on_path(std::slice::from_ref(&base), &fund, &set, p, 1, 0).expect("ok");
            let v2 = value_positions_on_path(std::slice::from_ref(&scaled), &fund, &set, p, 1, 0).expect("ok");
            prop_assert!((v2 - scale * v1).abs() < 1e-6 * v2.max(1.0));
        }
    }

    /// Valuations are strictly positive and finite across random books.
    #[test]
    fn valuations_positive_finite(
        ages in prop::collection::vec(25u32..70, 1..5),
        term in 3u32..20,
        seed in 0u64..50,
    ) {
        let set = scenario_set(21.0, 4, seed);
        let fund = SegregatedFund::italian_typical(30);
        let positions: Vec<LiabilityPosition> = ages
            .iter()
            .map(|&a| position(a, term, 0.8, 500.0))
            .collect();
        let values = value_positions_all_paths(&positions, &fund, &set, 1, 0).expect("ok");
        for v in values {
            prop_assert!(v.is_finite());
            prop_assert!(v > 0.0);
        }
    }

    /// Shifting a schedule by its full term leaves nothing; shifting by
    /// zero is the identity; intermediate shifts conserve the remaining
    /// flows' amounts.
    #[test]
    fn shift_schedule_properties(age in 30u32..60, term in 2u32..20, by in 0u32..25) {
        let pos = position(age, term, 0.8, 1000.0);
        let shifted = shift_schedule(&pos.schedule, by);
        if by == 0 {
            prop_assert_eq!(&shifted, &pos.schedule);
        }
        if by >= term {
            prop_assert!(shifted.flows.is_empty());
        }
        let expect: f64 = pos
            .schedule
            .flows
            .iter()
            .filter(|f| f.year > by)
            .map(|f| f.total())
            .sum();
        let got: f64 = shifted.flows.iter().map(|f| f.total()).sum();
        prop_assert!((expect - got).abs() < 1e-9);
        for f in &shifted.flows {
            prop_assert!(f.year >= 1);
        }
    }

    /// parallel_map equals the sequential map for arbitrary sizes/threads.
    #[test]
    fn parallel_map_equivalence(n in 0usize..200, threads in 1usize..9, salt in 0u64..100) {
        let f = |i: usize| (i as u64).wrapping_mul(salt.wrapping_add(11)) ^ salt;
        let seq: Vec<u64> = (0..n).map(f).collect();
        let par = parallel_map(n, threads, f);
        prop_assert_eq!(seq, par);
    }
}
