//! Counting-allocator regression test for the nested Monte Carlo hot path.
//!
//! The kernel layer (DESIGN.md §10) promises that once a
//! [`ValuationWorkspace`] is warm, the `nP × nQ` inner stage performs zero
//! steady-state heap allocations. Measuring "zero per inner path" directly
//! is brittle (a run has constant-count bookkeeping allocations: the outer
//! scenario set, the shifted schedules, the result vectors), but those are
//! *size-independent in count*. So the test compares the allocation count
//! of a small steady-state run against a much larger one: any per-path or
//! per-inner-path allocation would scale the large run's count by the path
//! difference, which the assertion bounds at a small fraction of one
//! allocation per extra inner path.
//!
//! This file deliberately holds a single `#[test]`: the counter is a
//! process-global and concurrently running tests would pollute it.

use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::ConstantLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::LiabilityPosition;
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::SegregatedFund;
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that counts every allocation-producing call.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

fn generators(inner_horizon: f64) -> (ScenarioGenerator, ScenarioGenerator) {
    let build = |h: f64| {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).unwrap()))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).unwrap()))
            .grid(TimeGrid::new(h, 12).unwrap())
            .build()
            .unwrap()
    };
    (build(1.0), build(inner_horizon))
}

fn positions(term: u32) -> Vec<LiabilityPosition> {
    let table = LifeTable::italian_population();
    let lapse = ConstantLapse::new(0.03).unwrap();
    let engine = ActuarialEngine::new(&table, &lapse);
    [0.0, 0.02]
        .iter()
        .map(|&tech| {
            let ps = ProfitSharing::new(0.8, tech).unwrap();
            let c = Contract::new(ProductKind::Endowment, 50, Gender::Male, term, 1000.0, ps)
                .unwrap();
            let mp = ModelPoint {
                contract: c,
                policy_count: 1,
            };
            LiabilityPosition {
                schedule: engine.cash_flow_schedule(&mp).unwrap(),
                profit_sharing: ps,
            }
        })
        .collect()
}

#[test]
fn steady_state_inner_loop_is_allocation_free() {
    let (outer, inner) = generators(8.0);
    let fund = SegregatedFund::italian_typical(10);
    let pos = positions(8);
    let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).unwrap();

    // Lane 8 exercises the block kernels and the lane-major panels — the
    // very code this gate must keep allocation-free.
    let config = |n_outer, n_inner, antithetic| NestedConfig {
        n_outer,
        n_inner,
        confidence: 0.995,
        seed: 17,
        threads: 1,
        antithetic,
        lane: 8,
    };

    for antithetic in [false, true] {
        let small = config(8, 6, antithetic);
        let large = config(40, 30, antithetic);
        let mut ws = mc.workspace_for(&large, pos.len());

        // Warm-up: both shapes fill the workspace once so later runs are
        // steady-state.
        mc.run_with_workspace(&pos, &small, &mut ws).unwrap();
        mc.run_with_workspace(&pos, &large, &mut ws).unwrap();

        let (small_res, small_allocs) =
            count_allocations(|| mc.run_with_workspace(&pos, &small, &mut ws).unwrap());
        let (large_res, large_allocs) =
            count_allocations(|| mc.run_with_workspace(&pos, &large, &mut ws).unwrap());

        // Sanity: the measured runs are real runs.
        assert_eq!(small_res.y1.len(), 8);
        assert_eq!(large_res.y1.len(), 40);

        // 40·30 − 8·6 = 1152 extra inner paths. If even one allocation per
        // inner path (or per outer path) survived in the kernels, the large
        // run's count would exceed the small run's by hundreds; the
        // per-run bookkeeping (outer set, shifted schedules, result
        // vectors) is identical in *count* for both sizes.
        let leaked = large_allocs.saturating_sub(small_allocs);
        let extra_inner_paths = (40 * 30 - 8 * 6) as f64;
        assert!(
            (leaked as f64) / extra_inner_paths < 0.05,
            "antithetic={antithetic}: {leaked} extra allocations across {extra_inner_paths} \
             extra inner paths (small run: {small_allocs}, large run: {large_allocs})"
        );
    }
}
