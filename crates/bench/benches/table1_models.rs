//! Table I bench: training cost of each of the six classifiers on the
//! campaign knowledge base (the work re-done after every simulation in the
//! self-optimizing loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_ml::regressor::ModelKind;

fn bench_training(c: &mut Criterion) {
    let (kb, _, _) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let data = kb.to_dataset().expect("non-empty");
    let mut group = c.benchmark_group("table1_train");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbreviation()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut m = kind.instantiate(1);
                    m.fit(&data).expect("training succeeds");
                    m
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
