//! Deploy-pipeline wall-clock baselines: median time of the §IV campaign
//! run sequentially (`depth = 1`) vs through a [`DeployPipeline`] at
//! increasing depths. The pipeline overlaps the selection/bookkeeping of
//! job *k + 1* with the cloud run of job *k*, so the campaign should
//! approach the depth-fold speedup while staying bit-identical — the
//! harness asserts the knowledge bases match before reporting.
//!
//! Like `kb_scale`, this is a hand-rolled harness (`harness = false`)
//! because the acceptance numbers are persisted: the raw medians land as
//! `bench:pipeline` rows in the append-only registry
//! (`results/registry.jsonl`), where the CI history can diff them.
//! Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench pipeline
//! ```

use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_bench::registry::{bench_row, workspace_registry};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const N_RUNS: usize = 300;
const REPS: usize = 5;

struct PipelineRow {
    depth: usize,
    n_runs: usize,
    campaign_ns: u128,
    speedup_vs_sequential: f64,
}

fn cfg(depth: usize) -> CampaignConfig {
    CampaignConfig::builder()
        .n_runs(N_RUNS)
        .n_outer(400)
        .n_inner(30)
        .max_nodes(6)
        .seed(20_160_627)
        .n_threads(depth)
        .build()
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

fn campaign_ns(depth: usize) -> u128 {
    median(
        (0..REPS)
            .map(|_| {
                let c = cfg(depth);
                let t = Instant::now();
                let (kb, provider, jobs) = build_knowledge_base(&c);
                let ns = t.elapsed().as_nanos();
                black_box((&kb, &provider, &jobs));
                ns
            })
            .collect(),
    )
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let cores = disar_math::parallel::default_n_threads();
    let mut depths = vec![1, 2, 4];
    if !depths.contains(&cores) {
        depths.push(cores);
    }

    // Determinism gate first: a pipeline speedup only counts if the deep
    // pipeline produced the sequential knowledge base, bit for bit.
    let (seq_kb, _, _) = build_knowledge_base(&cfg(1));
    for &d in &depths[1..] {
        let (kb, _, _) = build_knowledge_base(&cfg(d));
        assert_eq!(seq_kb, kb, "depth {d} diverged from the sequential campaign");
    }

    let mut rows = Vec::with_capacity(depths.len());
    let sequential_ns = campaign_ns(1);
    for &depth in &depths {
        let ns = if depth == 1 {
            sequential_ns
        } else {
            campaign_ns(depth)
        };
        let speedup = sequential_ns as f64 / ns.max(1) as f64;
        println!(
            "depth {depth:>2}: {:>8.1} ms  ({speedup:.2}x vs sequential)",
            ns as f64 / 1e6
        );
        rows.push(PipelineRow {
            depth,
            n_runs: N_RUNS,
            campaign_ns: ns,
            speedup_vs_sequential: speedup,
        });
    }

    let registry_rows: Vec<_> = rows
        .iter()
        .map(|r| {
            bench_row(
                "pipeline",
                json!({ "depth": r.depth, "n_runs": r.n_runs }),
                json!({
                    "campaign_ns": r.campaign_ns as u64,
                    "speedup_vs_sequential": r.speedup_vs_sequential,
                }),
                r.campaign_ns as u64,
            )
        })
        .collect();
    let registry = workspace_registry();
    registry
        .append(&registry_rows)
        .expect("registry append succeeds");
    println!(
        "appended {} rows to {}",
        registry_rows.len(),
        registry.path().display()
    );
}
