//! Algorithm 1 bench: latency of one configuration selection — 6 models ×
//! 6 instance types × up-to-`max` node counts per deploy decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_core::{select_configuration, PredictorFamily};

fn bench_selection(c: &mut Criterion) {
    let (kb, provider, jobs) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let mut family = PredictorFamily::new(1, 2);
    family.retrain(&kb).expect("large enough");
    let profile = jobs[0].profile;
    let mut group = c.benchmark_group("algorithm1_select");
    group.sample_size(20);
    for max_nodes in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_nodes),
            &max_nodes,
            |b, &max| {
                b.iter(|| {
                    select_configuration(
                        &family,
                        provider.catalog(),
                        &profile,
                        50_000.0,
                        max,
                        0.05,
                        9,
                    )
                    .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
