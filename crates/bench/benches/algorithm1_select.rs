//! Algorithm 1 bench: latency of one configuration selection — 6 models ×
//! 6 instance types × up-to-`max` node counts per deploy decision — plus
//! the thread-count sweep of the parallel grid sweep and of the family
//! retrain (both bit-identical to sequential; see the `_threads` variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_core::{
    select_configuration, select_configuration_with_rule_threads, PredictorFamily, RetrainMode,
    TimeEstimate,
};

fn bench_selection(c: &mut Criterion) {
    let (kb, provider, jobs) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let mut family = PredictorFamily::new(1, 2);
    family
        .retrain(&kb, RetrainMode::Full, 1)
        .expect("large enough");
    let profile = jobs[0].profile;
    let mut group = c.benchmark_group("algorithm1_select");
    group.sample_size(20);
    for max_nodes in [4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_nodes),
            &max_nodes,
            |b, &max| {
                b.iter(|| {
                    select_configuration(
                        &family,
                        provider.catalog(),
                        &profile,
                        50_000.0,
                        max,
                        0.05,
                        9,
                    )
                    .expect("feasible")
                })
            },
        );
    }
    group.finish();

    // Thread sweep at a fixed grid size: wall-clock speedup of the
    // parallel cell evaluation over the n_threads = 1 escape hatch.
    let mut group = c.benchmark_group("algorithm1_select_threads");
    group.sample_size(20);
    for n_threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_threads),
            &n_threads,
            |b, &threads| {
                b.iter(|| {
                    select_configuration_with_rule_threads(
                        &family,
                        provider.catalog(),
                        &profile,
                        50_000.0,
                        16,
                        0.05,
                        9,
                        TimeEstimate::EnsembleMean,
                        threads,
                    )
                    .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

fn bench_retrain(c: &mut Criterion) {
    let (kb, _, _) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let mut group = c.benchmark_group("family_retrain_threads");
    group.sample_size(10);
    for n_threads in [1usize, 2, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_threads),
            &n_threads,
            |b, &threads| {
                b.iter(|| {
                    let mut family = PredictorFamily::new(1, 2);
                    family
                        .retrain(&kb, RetrainMode::Incremental, threads)
                        .expect("large enough");
                    family
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_retrain);
criterion_main!(benches);
