//! Nested-Monte-Carlo kernel baselines for the zero-allocation workspace
//! layer (DESIGN.md §10): median wall time of a full nested run and the
//! measured steady-state allocation rate of the `nP × nQ` inner stage,
//! sequential and threaded, plain and antithetic.
//!
//! This is a hand-rolled harness (`harness = false`) rather than a
//! criterion group because the acceptance numbers are persisted: the raw
//! medians and allocation counts land as `bench:nested_kernel` rows in the
//! append-only registry (`results/registry.jsonl`), where the CI history
//! can diff them. Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench nested_kernel
//! ```
//!
//! Allocation counting uses the same trick as the
//! `disar-alm/tests/alloc_counting.rs` regression test: a steady-state
//! run's allocation count is size-independent (the outer set, shifted
//! schedules and result vectors cost a constant *number* of allocations),
//! so the per-inner-path rate is the count delta between a large and a
//! small run divided by the extra inner paths — zero when the kernels hold
//! their promise.

use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::ConstantLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::LiabilityPosition;
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::SegregatedFund;
use disar_bench::registry::{bench_row, workspace_registry};
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};
use serde_json::json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper counting every allocation-producing call.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

fn generators(inner_horizon: f64) -> (ScenarioGenerator, ScenarioGenerator) {
    let build = |h: f64| {
        ScenarioGenerator::builder()
            .driver(Box::new(Vasicek::new(0.03, 0.5, 0.03, 0.008, 0.15).expect("valid")))
            .driver(Box::new(Gbm::new(100.0, 0.07, 0.18, 0.03).expect("valid")))
            .grid(TimeGrid::new(h, 12).expect("valid"))
            .build()
            .expect("valid")
    };
    (build(1.0), build(inner_horizon))
}

fn positions(term: u32) -> Vec<LiabilityPosition> {
    let table = LifeTable::italian_population();
    let lapse = ConstantLapse::new(0.03).expect("valid");
    let engine = ActuarialEngine::new(&table, &lapse);
    [0.0, 0.02]
        .iter()
        .map(|&tech| {
            let ps = ProfitSharing::new(0.8, tech).expect("valid");
            let c = Contract::new(ProductKind::Endowment, 50, Gender::Male, term, 1000.0, ps)
                .expect("valid");
            let mp = ModelPoint {
                contract: c,
                policy_count: 1,
            };
            LiabilityPosition {
                schedule: engine.cash_flow_schedule(&mp).expect("valid"),
                profit_sharing: ps,
            }
        })
        .collect()
}

struct KernelRow {
    n_outer: usize,
    n_inner: usize,
    threads: usize,
    antithetic: bool,
    lane: usize,
    median_wall_ns: u128,
    allocations: usize,
    steady_state_allocs_per_inner_path: f64,
}

fn kernel_row(
    mc: &NestedMonteCarlo<'_>,
    pos: &[LiabilityPosition],
    threads: usize,
    antithetic: bool,
    lane: usize,
    reps: usize,
) -> KernelRow {
    let config = |n_outer, n_inner| NestedConfig {
        n_outer,
        n_inner,
        confidence: 0.995,
        seed: 17,
        threads,
        antithetic,
        lane,
    };
    let small = config(50, 10);
    let large = config(200, 40);
    let mut ws = mc.workspace_for(&large, pos.len());

    // Warm-up: both shapes fill the (sequential) caller workspace and the
    // allocator's internal caches before anything is measured.
    mc.run_with_workspace(pos, &small, &mut ws).expect("runs");
    mc.run_with_workspace(pos, &large, &mut ws).expect("runs");

    let (_, small_allocs) =
        count_allocations(|| mc.run_with_workspace(pos, &small, &mut ws).expect("runs"));
    let (_, large_allocs) =
        count_allocations(|| mc.run_with_workspace(pos, &large, &mut ws).expect("runs"));
    let extra_inner =
        (large.n_outer * large.n_inner - small.n_outer * small.n_inner) as f64;
    let per_inner_path = large_allocs.saturating_sub(small_allocs) as f64 / extra_inner;

    let median_wall_ns = median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                let res = mc.run_with_workspace(pos, &large, &mut ws).expect("runs");
                let ns = t.elapsed().as_nanos();
                black_box(&res);
                ns
            })
            .collect(),
    );

    KernelRow {
        n_outer: large.n_outer,
        n_inner: large.n_inner,
        threads,
        antithetic,
        lane,
        median_wall_ns,
        allocations: large_allocs,
        steady_state_allocs_per_inner_path: per_inner_path,
    }
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let (outer, inner) = generators(10.0);
    let fund = SegregatedFund::italian_typical(20);
    let pos = positions(10);
    let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("engine");

    let mut rows = Vec::new();
    for (threads, antithetic) in [(1, false), (1, true), (4, false), (4, true)] {
        let row = kernel_row(&mc, &pos, threads, antithetic, 8, 7);
        println!(
            "threads {threads} antithetic {antithetic:>5} lane 8: {:>12} ns/run, \
             {:>4} allocs/run, {:.4} allocs/inner-path",
            row.median_wall_ns, row.allocations, row.steady_state_allocs_per_inner_path
        );
        rows.push(row);
    }
    // Lane sweep: the block-kernel throughput knob, sequential plain runs
    // so the kernel dominates the wall time.
    for lane in [1usize, 2, 4, 8, 16] {
        let row = kernel_row(&mc, &pos, 1, false, lane, 7);
        println!(
            "lane {lane:>2}: {:>12} ns/run, {:>4} allocs/run, {:.4} allocs/inner-path",
            row.median_wall_ns, row.allocations, row.steady_state_allocs_per_inner_path
        );
        rows.push(row);
    }
    let registry_rows: Vec<_> = rows
        .iter()
        .map(|r| {
            bench_row(
                "nested_kernel",
                json!({
                    "n_outer": r.n_outer,
                    "n_inner": r.n_inner,
                    "threads": r.threads,
                    "antithetic": r.antithetic,
                    "lane": r.lane,
                }),
                json!({
                    "median_wall_ns": r.median_wall_ns as u64,
                    "allocations": r.allocations,
                    "allocs_per_inner_path": r.steady_state_allocs_per_inner_path,
                }),
                r.median_wall_ns as u64,
            )
        })
        .collect();
    let registry = workspace_registry();
    registry
        .append(&registry_rows)
        .expect("registry append succeeds");
    println!(
        "appended {} rows to {}",
        registry_rows.len(),
        registry.path().display()
    );
}
