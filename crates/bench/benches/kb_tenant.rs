//! Two-key (instance × tenant) knowledge-base baselines: median wall time
//! of (a) recording a run stream into the tenant-sharded base vs the
//! instance-sharded and monolithic ones, (b) reassembling the canonical
//! arrival-order stream via `to_monolithic`, and (c) a full two-key
//! `retrain_all` under each [`TransferPolicy`], at growing base sizes and
//! tenant counts.
//!
//! Like `kb_scale`, this is a hand-rolled harness (`harness = false`)
//! because the raw medians are persisted: rows land as `bench:kb_tenant`
//! entries in the append-only registry (`results/registry.jsonl`), where
//! the CI history can diff them. Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench kb_tenant
//! ```

use disar_bench::registry::{bench_row, workspace_registry};
use disar_cloudsim::InstanceCatalog;
use disar_core::tenant::{
    TenantId, TenantShardedKnowledgeBase, TenantShardedPredictor, TransferPolicy,
};
use disar_core::{JobProfile, KnowledgeBase, RetrainMode, RunRecord, ShardedKnowledgeBase};
use disar_engine::EebCharacteristics;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [500, 2_000, 8_000];
const N_TENANTS: [usize; 2] = [2, 8];

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

/// A deterministic multi-company run stream over the paper catalog.
fn stream(n: usize, n_tenants: usize) -> Vec<RunRecord> {
    let cat = InstanceCatalog::paper_catalog();
    let names = cat.names();
    let tenants: Vec<TenantId> = (0..n_tenants)
        .map(|t| TenantId::new(format!("company-{t}")))
        .collect();
    (0..n)
        .map(|i| {
            let inst = cat.get(&names[i % names.len()]).expect("known");
            let nodes = i % 4 + 1;
            let contracts = 50 + (i * 53) % 400;
            let time =
                40_000.0 * contracts as f64 / 100.0 / (inst.compute_power() * nodes as f64);
            RunRecord::new(profile(contracts), inst, nodes, time, time / 3_600.0)
                .with_tenant(tenants[i % n_tenants].clone())
        })
        .collect()
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    median(
        (0..reps)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_nanos()
            })
            .collect(),
    )
}

struct TenantRow {
    kb_size: usize,
    n_tenants: usize,
    record_mono_ns: u128,
    record_sharded_ns: u128,
    record_two_key_ns: u128,
    to_monolithic_ns: u128,
    retrain_isolated_ns: u128,
    retrain_pooled_ns: u128,
    retrain_borrow_ns: u128,
}

fn row(n: usize, n_tenants: usize, reps: usize) -> TenantRow {
    let records = stream(n, n_tenants);

    let record_mono_ns = timed(reps, || {
        let mut kb = KnowledgeBase::new();
        for r in &records {
            kb.record(r.clone());
        }
        kb
    });
    let record_sharded_ns = timed(reps, || {
        let mut kb = ShardedKnowledgeBase::new();
        for r in &records {
            kb.record(r.clone());
        }
        kb
    });
    let record_two_key_ns = timed(reps, || {
        let mut kb = TenantShardedKnowledgeBase::new();
        for r in &records {
            kb.record(r.clone());
        }
        kb
    });

    let mut kb = TenantShardedKnowledgeBase::new();
    for r in &records {
        kb.record(r.clone());
    }
    let to_monolithic_ns = timed(reps, || kb.to_monolithic());

    let retrain = |transfer: TransferPolicy| {
        timed(reps.min(5), || {
            let mut p = TenantShardedPredictor::new(1, 2, transfer);
            p.retrain_all(&kb, RetrainMode::Full, 1)
                .expect("shards are large enough");
            p
        })
    };
    TenantRow {
        kb_size: n,
        n_tenants,
        record_mono_ns,
        record_sharded_ns,
        record_two_key_ns,
        to_monolithic_ns,
        retrain_isolated_ns: retrain(TransferPolicy::Isolated),
        retrain_pooled_ns: retrain(TransferPolicy::Pooled),
        retrain_borrow_ns: retrain(TransferPolicy::BorrowUntil(8)),
    }
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let mut rows = Vec::new();
    for &n in &SIZES {
        for &t in &N_TENANTS {
            let reps = if n >= 8_000 { 5 } else { 11 };
            let r = row(n, t, reps);
            println!(
                "kb_size {n:>5} x {t} tenants: two-key record {:.2}x mono, reassemble {} us",
                r.record_two_key_ns as f64 / r.record_mono_ns.max(1) as f64,
                r.to_monolithic_ns / 1_000,
            );
            rows.push(r);
        }
    }
    let registry_rows: Vec<_> = rows
        .iter()
        .map(|r| {
            bench_row(
                "kb_tenant",
                json!({ "kb_size": r.kb_size, "n_tenants": r.n_tenants }),
                json!({
                    "record_mono_ns": r.record_mono_ns as u64,
                    "record_sharded_ns": r.record_sharded_ns as u64,
                    "record_two_key_ns": r.record_two_key_ns as u64,
                    "to_monolithic_ns": r.to_monolithic_ns as u64,
                    "retrain_isolated_ns": r.retrain_isolated_ns as u64,
                    "retrain_pooled_ns": r.retrain_pooled_ns as u64,
                    "retrain_borrow_ns": r.retrain_borrow_ns as u64,
                }),
                (r.record_mono_ns + r.record_sharded_ns + r.record_two_key_ns) as u64,
            )
        })
        .collect();
    let registry = workspace_registry();
    registry
        .append(&registry_rows)
        .expect("registry append succeeds");
    println!(
        "appended {} rows to {}",
        registry_rows.len(),
        registry.path().display()
    );
}
