//! Figure 3 bench: filling the error histogram (stats substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use disar_math::rng::normal_vec;
use disar_math::stats::Histogram;

fn bench_histogram(c: &mut Criterion) {
    let errors = normal_vec(42, 0, 100_000)
        .into_iter()
        .map(|z| z * 400.0)
        .collect::<Vec<f64>>();
    c.bench_function("fig3_histogram_fill_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new(-6000.0, 4000.0, 50).expect("valid");
            h.extend(errors.iter().copied());
            h
        })
    });
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
