//! Ablation bench: LSMC vs plain nested Monte Carlo at matched outer-path
//! counts — quantifies §II's claim that LSMC "strongly reduces" the inner
//! simulation bill.

use criterion::{criterion_group, criterion_main, Criterion};
use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::DurationLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::LiabilityPosition;
use disar_alm::lsmc::{Lsmc, LsmcConfig};
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::SegregatedFund;
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};

fn market(horizon: f64) -> ScenarioGenerator {
    ScenarioGenerator::builder()
        .driver(Box::new(Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.15).expect("valid")))
        .driver(Box::new(Gbm::new(100.0, 0.065, 0.17, 0.025).expect("valid")))
        .grid(TimeGrid::new(horizon, 12).expect("valid"))
        .build()
        .expect("valid")
}

fn one_position() -> Vec<LiabilityPosition> {
    let table = LifeTable::italian_population();
    let lapse = DurationLapse::italian_typical();
    let act = ActuarialEngine::new(&table, &lapse);
    let ps = ProfitSharing::new(0.8, 0.02).expect("valid");
    let c = Contract::new(ProductKind::Endowment, 50, Gender::Male, 10, 1000.0, ps)
        .expect("valid");
    let mp = ModelPoint {
        contract: c,
        policy_count: 1,
    };
    vec![LiabilityPosition {
        schedule: act.cash_flow_schedule(&mp).expect("valid"),
        profit_sharing: ps,
    }]
}

fn bench_methods(c: &mut Criterion) {
    let outer = market(1.0);
    let inner = market(10.0);
    let fund = SegregatedFund::italian_typical(20);
    let pos = one_position();
    let mut group = c.benchmark_group("valuation_method");
    group.sample_size(10);

    let nested = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("valid");
    group.bench_function("nested_150x30", |b| {
        b.iter(|| {
            nested
                .run(
                    &pos,
                    &NestedConfig {
                        n_outer: 150,
                        n_inner: 30,
                        confidence: 0.995,
                        seed: 3,
                        threads: 1,
                        antithetic: false,
                        lane: disar_stochastic::scenario::DEFAULT_LANE,
                    },
                )
                .expect("runs")
        })
    });

    let lsmc = Lsmc::new(&outer, &inner, &fund, 1, 0).expect("valid");
    group.bench_function("lsmc_cal40x30_eval150", |b| {
        b.iter(|| {
            lsmc.run(
                &pos,
                &LsmcConfig {
                    calibration_outer: 40,
                    calibration_inner: 30,
                    n_outer: 150,
                    ..LsmcConfig::paper_defaults(3)
                },
            )
            .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
