//! Figure 4 bench: *real* parallel speedup of the nested Monte Carlo
//! valuation on local threads — the in-process analogue of the paper's
//! cloud-vs-sequential speedup measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::DurationLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::LiabilityPosition;
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::SegregatedFund;
use disar_stochastic::drivers::{Gbm, Vasicek};
use disar_stochastic::scenario::{ScenarioGenerator, TimeGrid};

fn market(horizon: f64) -> ScenarioGenerator {
    ScenarioGenerator::builder()
        .driver(Box::new(Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.15).expect("valid")))
        .driver(Box::new(Gbm::new(100.0, 0.065, 0.17, 0.025).expect("valid")))
        .grid(TimeGrid::new(horizon, 12).expect("valid"))
        .build()
        .expect("valid")
}

fn positions() -> Vec<LiabilityPosition> {
    let table = LifeTable::italian_population();
    let lapse = DurationLapse::italian_typical();
    let act = ActuarialEngine::new(&table, &lapse);
    [(45u32, 12u32), (55, 10), (60, 8)]
        .iter()
        .map(|&(age, term)| {
            let ps = ProfitSharing::new(0.8, 0.02).expect("valid");
            let c = Contract::new(ProductKind::Endowment, age, Gender::Male, term, 1000.0, ps)
                .expect("valid");
            let mp = ModelPoint {
                contract: c,
                policy_count: 1,
            };
            LiabilityPosition {
                schedule: act.cash_flow_schedule(&mp).expect("valid"),
                profit_sharing: ps,
            }
        })
        .collect()
}

fn bench_parallel_valuation(c: &mut Criterion) {
    let outer = market(1.0);
    let inner = market(12.0);
    let fund = SegregatedFund::italian_typical(30);
    let mc = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("valid");
    let pos = positions();
    let mut group = c.benchmark_group("fig4_nested_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                mc.run(
                    &pos,
                    &NestedConfig {
                        n_outer: 80,
                        n_inner: 20,
                        confidence: 0.995,
                        seed: 7,
                        threads: t,
                        antithetic: false,
                        lane: disar_stochastic::scenario::DEFAULT_LANE,
                    },
                )
                .expect("valuation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_valuation);
criterion_main!(benches);
