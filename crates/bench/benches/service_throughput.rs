//! Concurrent deploy-service throughput: end-to-end jobs/sec through
//! [`DeployService`] as the tenant count scales 1 → 64, with every tenant
//! driving the full select → run → record → ingest cycle (snapshot reads
//! on the hot path, shard-lock writes, batched incremental retrains).
//!
//! Like `kb_tenant`, this is a hand-rolled harness (`harness = false`)
//! because the raw medians are persisted: rows land as
//! `bench:service_throughput` entries in the append-only registry
//! (`results/registry.jsonl`), where the CI history can diff them.
//! Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench service_throughput
//! ```

use disar_bench::registry::{bench_row, workspace_registry};
use disar_cloudsim::{InstanceCatalog, Workload};
use disar_core::tenant::TransferPolicy;
use disar_core::{
    DeployPolicy, DeployService, JobProfile, PipelineJob, ServiceConfig, TenantId,
};
use disar_engine::EebCharacteristics;
use serde_json::json;
use std::time::Instant;

const TENANT_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
const JOBS_PER_TENANT: usize = 12;

fn profile(contracts: usize) -> JobProfile {
    JobProfile {
        characteristics: EebCharacteristics {
            representative_contracts: contracts,
            max_horizon: 20,
            fund_assets: 30,
            risk_factors: 2,
        },
        n_outer: 1000,
        n_inner: 50,
    }
}

fn workload(contracts: usize) -> Workload {
    Workload::new(
        30.0 * contracts as f64,
        0.02 * contracts as f64,
        0.8 * contracts as f64,
        0.05,
    )
    .expect("valid workload")
}

fn policy() -> DeployPolicy {
    DeployPolicy::builder(50_000.0)
        .max_nodes(4)
        .min_kb_samples(6)
        .retrain_every(1)
        .n_threads(1)
        .transfer(TransferPolicy::Isolated)
        .build()
}

fn schedule(ix: usize) -> Vec<PipelineJob> {
    (0..JOBS_PER_TENANT)
        .map(|i| {
            let c = 60 + (i * 37 + ix * 13) % 320;
            PipelineJob::auto(profile(c), workload(c))
        })
        .collect()
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

/// One full service campaign at `n_tenants`; returns (elapsed ns, retrains).
fn run_once(n_tenants: usize, seed: u64) -> (u128, usize) {
    let mut service = DeployService::new(
        InstanceCatalog::paper_catalog(),
        policy(),
        ServiceConfig {
            depth: 4,
            queue_capacity: JOBS_PER_TENANT + 1,
            batch_max: 32,
        },
    )
    .expect("valid service");
    let handles: Vec<_> = (0..n_tenants)
        .map(|t| {
            service
                .register(
                    TenantId::new(format!("company-{t}")),
                    seed.wrapping_add(t as u64),
                )
                .expect("fresh tenant")
        })
        .collect();
    let schedules: Vec<Vec<PipelineJob>> = (0..n_tenants).map(schedule).collect();
    service.start().expect("service starts");
    let t = Instant::now();
    for i in 0..JOBS_PER_TENANT {
        for (ix, h) in handles.iter().enumerate() {
            h.submit(schedules[ix][i].clone()).expect("queue sized");
        }
    }
    for h in handles {
        h.finish().expect("tenant stream succeeds");
    }
    let elapsed = t.elapsed().as_nanos();
    let stats = service.join().expect("clean shutdown");
    (elapsed, stats.retrains)
}

struct ServiceRow {
    n_tenants: usize,
    jobs_per_tenant: usize,
    total_jobs: usize,
    elapsed_ns: u128,
    jobs_per_sec: f64,
    retrains: usize,
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let mut rows = Vec::new();
    for &n_tenants in &TENANT_COUNTS {
        let reps = if n_tenants >= 16 { 3 } else { 5 };
        let mut elapsed = Vec::with_capacity(reps);
        let mut retrains = 0;
        for rep in 0..reps {
            let (ns, r) = run_once(n_tenants, 1 + rep as u64 * 100);
            elapsed.push(ns);
            retrains = r;
        }
        let elapsed_ns = median(elapsed);
        let total_jobs = n_tenants * JOBS_PER_TENANT;
        let jobs_per_sec = total_jobs as f64 / (elapsed_ns as f64 / 1e9);
        println!(
            "{n_tenants:>3} tenants x {JOBS_PER_TENANT} jobs: {:.1} jobs/s ({} retrains)",
            jobs_per_sec, retrains,
        );
        rows.push(ServiceRow {
            n_tenants,
            jobs_per_tenant: JOBS_PER_TENANT,
            total_jobs,
            elapsed_ns,
            jobs_per_sec,
            retrains,
        });
    }
    let registry_rows: Vec<_> = rows
        .iter()
        .map(|r| {
            bench_row(
                "service_throughput",
                json!({ "n_tenants": r.n_tenants, "jobs_per_tenant": r.jobs_per_tenant }),
                json!({
                    "total_jobs": r.total_jobs,
                    "elapsed_ns": r.elapsed_ns as u64,
                    "jobs_per_sec": r.jobs_per_sec,
                    "retrains": r.retrains,
                }),
                r.elapsed_ns as u64,
            )
        })
        .collect();
    let registry = workspace_registry();
    registry
        .append(&registry_rows)
        .expect("registry append succeeds");
    println!(
        "appended {} rows to {}",
        registry_rows.len(),
        registry.path().display()
    );
}
