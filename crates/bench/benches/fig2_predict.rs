//! Figure 2 bench: prediction latency of each fitted model (the cost of
//! one point in the predicted-vs-real scatter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_ml::regressor::ModelKind;

fn bench_prediction(c: &mut Criterion) {
    let (kb, _, _) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let data = kb.to_dataset().expect("non-empty");
    let query = data.rows()[0].clone();
    let mut group = c.benchmark_group("fig2_predict");
    for kind in ModelKind::ALL {
        let mut model = kind.instantiate(1);
        model.fit(&data).expect("training succeeds");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbreviation()),
            &model,
            |b, model| b.iter(|| model.predict(&query).expect("fitted")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
