//! Table II bench: full simulated-cloud job execution (boot + DES replay +
//! billing) per instance type — the inner loop of the 1500-run campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};

fn bench_run_job(c: &mut Criterion) {
    let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), 1);
    let wl = Workload::new(20_000.0, 16.0, 200.0, 0.05).expect("valid");
    let mut group = c.benchmark_group("table2_run_job");
    for name in provider.catalog().names() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &name, |b, name| {
            b.iter(|| provider.run_job(name, 4, &wl).expect("valid instance"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_run_job);
criterion_main!(benches);
