//! Knowledge-base scale baselines for the incremental-retrain and indexed
//! neighbour-search work: median wall time of (a) a one-record refit via
//! `partial_fit` vs a from-scratch `fit`, and (b) an IBk indexed prediction
//! vs the linear-scan reference, at knowledge-base sizes 10²–10⁵.
//!
//! This is a hand-rolled harness (`harness = false`) rather than a
//! criterion group because the acceptance numbers are persisted: the raw
//! medians land as `bench:kb_scale/*` rows in the append-only registry
//! (`results/registry.jsonl`), where the CI history can diff them.
//! Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench kb_scale
//! ```

use disar_bench::registry::{bench_row, workspace_registry};
use disar_math::rng::stream_rng;
use disar_ml::{Dataset, IbK, IncrementalRegressor, KStar, Regressor};
use disar_registry::RegistryRow;
use rand::Rng;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 5] = [100, 1_000, 10_000, 50_000, 100_000];

/// A synthetic knowledge base with the record-feature shape of the real
/// one: correlated, noisy, strictly deterministic in `seed`.
fn synthetic(n: usize, seed: u64) -> Dataset {
    let names: Vec<String> = ["contracts", "horizon", "vcpus", "speed", "nodes"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rng = stream_rng(seed, 0xB51);
    let mut data = Dataset::new(names);
    for _ in 0..n {
        let contracts = rng.gen_range(50.0..450.0_f64);
        let horizon = rng.gen_range(10.0..50.0_f64);
        let vcpus = [4.0, 8.0, 16.0, 36.0, 40.0][rng.gen_range(0..5)];
        let speed = rng.gen_range(0.8..1.4_f64);
        let nodes = rng.gen_range(1.0..8.0_f64).floor();
        let t = contracts * horizon / (vcpus * speed * nodes) * rng.gen_range(0.9..1.1);
        data.push(vec![contracts, horizon, vcpus, speed, nodes], t)
            .expect("shape is fixed");
    }
    data
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

struct RetrainRow {
    model: &'static str,
    kb_size: usize,
    full_fit_ns: u128,
    incremental_fit_ns: u128,
    speedup: f64,
}

struct SelectRow {
    kb_size: usize,
    ibk_linear_ns: u128,
    ibk_indexed_ns: u128,
    speedup: f64,
    kstar_predict_ns: u128,
}

/// Median time of one `partial_fit` of the last record vs one from-scratch
/// `fit` of all `n + 1` records, for a model warm on the `n`-row prefix.
fn retrain_row<M>(model: &'static str, fresh: &M, n: usize, reps: usize) -> RetrainRow
where
    M: Regressor + IncrementalRegressor + Clone,
{
    let data = synthetic(n + 1, 20_160_627);
    // Warm state = fitted on the n-row prefix, so the timed `partial_fit`
    // appends exactly one record.
    let prefix = Dataset::from_rows(
        data.feature_names().to_vec(),
        data.rows()[..n].to_vec(),
        data.targets()[..n].to_vec(),
    )
    .expect("prefix is consistent");
    let mut warm = fresh.clone();
    warm.fit(&prefix).expect("valid data");

    let full_fit_ns = median(
        (0..reps)
            .map(|_| {
                let mut m = fresh.clone();
                let t = Instant::now();
                m.fit(&data).expect("valid data");
                let ns = t.elapsed().as_nanos();
                black_box(&m);
                ns
            })
            .collect(),
    );
    let incremental_fit_ns = median(
        (0..reps)
            .map(|_| {
                let mut m = warm.clone();
                let t = Instant::now();
                m.partial_fit(&data, n).expect("prefix extends");
                let ns = t.elapsed().as_nanos();
                black_box(&m);
                ns
            })
            .collect(),
    );
    RetrainRow {
        model,
        kb_size: n,
        full_fit_ns,
        incremental_fit_ns,
        speedup: full_fit_ns as f64 / incremental_fit_ns.max(1) as f64,
    }
}

fn select_row(n: usize, reps: usize) -> SelectRow {
    let data = synthetic(n, 20_160_627);
    let mut ibk = IbK::new(3);
    ibk.fit(&data).expect("valid data");
    let mut kstar = KStar::new(20.0);
    kstar.fit(&data).expect("valid data");
    let queries: Vec<Vec<f64>> = synthetic(32, 9).rows().to_vec();

    let time_queries = |f: &dyn Fn(&[f64]) -> f64| {
        median(
            (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    for q in &queries {
                        black_box(f(q));
                    }
                    t.elapsed().as_nanos() / queries.len() as u128
                })
                .collect(),
        )
    };
    let ibk_linear_ns = time_queries(&|q| ibk.predict_linear(q).expect("fitted"));
    let ibk_indexed_ns = time_queries(&|q| ibk.predict(q).expect("fitted"));
    let kstar_predict_ns = time_queries(&|q| kstar.predict(q).expect("fitted"));
    SelectRow {
        kb_size: n,
        ibk_linear_ns,
        ibk_indexed_ns,
        speedup: ibk_linear_ns as f64 / ibk_indexed_ns.max(1) as f64,
        kstar_predict_ns,
    }
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let mut retrain_rows = Vec::new();
    let mut select_rows = Vec::new();
    for &n in &SIZES {
        let reps = if n >= 50_000 { 5 } else { 15 };
        retrain_rows.push(retrain_row("IBk", &IbK::new(3), n, reps));
        retrain_rows.push(retrain_row("KStar", &KStar::new(20.0), n, reps));
        select_rows.push(select_row(n, reps));
        let last = &retrain_rows[retrain_rows.len() - 2..];
        println!(
            "kb_size {n:>7}: IBk refit {:.1}x, KStar refit {:.1}x, IBk index {:.1}x",
            last[0].speedup,
            last[1].speedup,
            select_rows.last().expect("just pushed").speedup
        );
    }
    let rows: Vec<RegistryRow> = retrain_rows
        .iter()
        .map(|r| {
            bench_row(
                "kb_scale/retrain",
                json!({ "model": r.model, "kb_size": r.kb_size }),
                json!({
                    "full_fit_ns": r.full_fit_ns as u64,
                    "incremental_fit_ns": r.incremental_fit_ns as u64,
                    "speedup": r.speedup,
                }),
                (r.full_fit_ns + r.incremental_fit_ns) as u64,
            )
        })
        .chain(select_rows.iter().map(|r| {
            bench_row(
                "kb_scale/select",
                json!({ "kb_size": r.kb_size }),
                json!({
                    "ibk_linear_ns": r.ibk_linear_ns as u64,
                    "ibk_indexed_ns": r.ibk_indexed_ns as u64,
                    "speedup": r.speedup,
                    "kstar_predict_ns": r.kstar_predict_ns as u64,
                }),
                (r.ibk_linear_ns + r.ibk_indexed_ns + r.kstar_predict_ns) as u64,
            )
        }))
        .collect();
    let registry = workspace_registry();
    registry.append(&rows).expect("registry append succeeds");
    println!("appended {} rows to {}", rows.len(), registry.path().display());
}
