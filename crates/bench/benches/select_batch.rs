//! Batched vs scalar Algorithm 1 sweep: wall-clock of one configuration
//! selection through [`PredictorFamily::predict_grid`]'s batched member
//! kernels against the per-cell scalar `predict_each` path, as the grid
//! grows 24 → 384 cells.
//!
//! Like `service_throughput`, this is a hand-rolled harness
//! (`harness = false`) because the raw medians are persisted: rows land as
//! `bench:select_batch` entries in the append-only registry
//! (`results/registry.jsonl`), where the CI history can diff them. Every
//! measured pair is also asserted bit-identical — the speedup is only
//! meaningful if the Selections agree. Regenerate with
//!
//! ```text
//! cargo bench -p disar-bench --bench select_batch
//! ```

use disar_bench::campaign::{build_knowledge_base, CampaignConfig};
use disar_bench::registry::{bench_row, workspace_registry};
use disar_cloudsim::InstanceType;
use disar_core::{
    select_configuration_with_workspace, CoreError, JobProfile, PredictorFamily, RetrainMode,
    Selection, SelectionWorkspace, TimeEstimate, TimePredictor,
};
use serde_json::json;
use std::time::Instant;

const MAX_NODES: [usize; 3] = [4, 16, 64];
const REPS: usize = 9;

/// Hides the family's batched `predict_grid` override so the trait's
/// default per-cell scalar loop runs — the pre-batching baseline.
struct ScalarOnly<'a>(&'a PredictorFamily);

impl TimePredictor for ScalarOnly<'_> {
    fn predict_each(
        &self,
        profile: &JobProfile,
        instance: &InstanceType,
        n_nodes: usize,
    ) -> Result<Vec<(&'static str, f64)>, CoreError> {
        self.0.predict_each(profile, instance, n_nodes)
    }
}

fn median(mut times: Vec<u128>) -> u128 {
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    // `cargo bench` passes harness flags (`--bench`, filters); this harness
    // always runs the full sweep, so the argv is deliberately ignored.
    let (kb, provider, jobs) = build_knowledge_base(&CampaignConfig {
        n_runs: 300,
        ..CampaignConfig::default()
    });
    let mut family = PredictorFamily::new(1, 2);
    family
        .retrain(&kb, RetrainMode::Full, 1)
        .expect("large enough");
    let profile = jobs[0].profile;
    let catalog = provider.catalog();
    let n_types = catalog.iter().count();
    let scalar_family = ScalarOnly(&family);

    let mut registry_rows = Vec::new();
    for &max_nodes in &MAX_NODES {
        let mut ws = SelectionWorkspace::new();
        let mut run = |p: &dyn TimePredictor, ws: &mut SelectionWorkspace| -> (Selection, u128) {
            let t = Instant::now();
            let sel = select_configuration_with_workspace(
                p,
                catalog,
                &profile,
                50_000.0,
                max_nodes,
                0.05,
                9,
                TimeEstimate::EnsembleMean,
                1,
                ws,
            )
            .expect("feasible");
            (sel, t.elapsed().as_nanos())
        };
        // Warm-up sizes the workspace; the measured runs are steady-state.
        let (warm_batched, _) = run(&family, &mut ws);
        let (warm_scalar, _) = run(&scalar_family, &mut SelectionWorkspace::new());
        assert_eq!(
            warm_batched, warm_scalar,
            "batched and scalar sweeps must pick identically at {max_nodes} nodes"
        );
        let mut batched_ns = Vec::with_capacity(REPS);
        let mut scalar_ns = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let (sel, ns) = run(&family, &mut ws);
            assert_eq!(sel, warm_batched, "batched selection must be stable");
            batched_ns.push(ns);
            let (sel, ns) = run(&scalar_family, &mut SelectionWorkspace::new());
            assert_eq!(sel, warm_scalar, "scalar selection must be stable");
            scalar_ns.push(ns);
        }
        let batched = median(batched_ns);
        let scalar = median(scalar_ns);
        let speedup = scalar as f64 / batched as f64;
        let cells = max_nodes * n_types;
        println!(
            "{cells:>4} cells: batched {:>9} ns, scalar {:>9} ns, speedup {speedup:.2}x",
            batched, scalar
        );
        registry_rows.push(bench_row(
            "select_batch",
            json!({ "max_nodes": max_nodes, "cells": cells, "n_threads": 1 }),
            json!({
                "batched_ns": batched as u64,
                "scalar_ns": scalar as u64,
                "speedup_vs_scalar": speedup,
            }),
            batched as u64,
        ));
    }
    let registry = workspace_registry();
    registry
        .append(&registry_rows)
        .expect("registry append succeeds");
    println!(
        "appended {} rows to {}",
        registry_rows.len(),
        registry.path().display()
    );
}
