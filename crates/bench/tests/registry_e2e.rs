//! End-to-end replay proof: run an experiment through the trait API,
//! append its row to a registry file on disk, reload it, and replay it
//! from the recorded `params` alone — the reloaded row must reproduce
//! bit-identically (the `runbook` contract on a committed row).

use disar_bench::campaign::CampaignConfig;
use disar_bench::experiments::{by_name, ExperimentCtx};
use disar_bench::runbook::{replay_all, replay_row, ReplayOutcome};
use disar_registry::Registry;
use std::path::PathBuf;

fn temp_registry(name: &str) -> (Registry, PathBuf) {
    let dir = std::env::temp_dir().join("disar-registry-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    (Registry::new(&path), path)
}

fn tiny_ctx() -> ExperimentCtx {
    let cfg = CampaignConfig::builder()
        .n_runs(60)
        .n_outer(200)
        .n_inner(20)
        .max_nodes(4)
        .seed(7)
        .n_threads(1)
        .build();
    ExperimentCtx::new(cfg, true)
}

#[test]
fn recorded_row_replays_bit_identically_from_disk() {
    let ctx = tiny_ctx();
    let exp = by_name("table2").expect("table2 is registered");
    let rows = exp.run(&ctx);
    assert_eq!(rows.len(), 1, "experiment drivers emit one row");

    let (registry, path) = temp_registry("replay");
    registry.append(&rows).unwrap();
    let loaded = registry.load().unwrap();
    assert_eq!(loaded, rows, "rows survive the disk round-trip");

    match replay_row(&loaded[0]) {
        ReplayOutcome::Matched { .. } => {}
        other => panic!("expected a bit-identical replay, got: {}", other.describe()),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_all_filters_by_experiment_name() {
    let ctx = tiny_ctx();
    let rows: Vec<_> = ["table2", "ablation_lsmc"]
        .iter()
        .flat_map(|n| by_name(n).expect("registered").run(&ctx))
        .collect();

    let (registry, path) = temp_registry("filter");
    registry.append(&rows).unwrap();
    let loaded = registry.load().unwrap();

    let all = replay_all(&loaded, None);
    assert_eq!(all.len(), 2);
    assert!(all.iter().all(|o| !o.is_failure()));
    let only = replay_all(&loaded, Some("table2"));
    assert_eq!(only.len(), 1);
    assert!(matches!(only[0], ReplayOutcome::Matched { .. }));
    std::fs::remove_file(&path).ok();
}
