//! The experimental campaign of §IV: three portfolios, 15 EEBs, ≈1500
//! cloud runs feeding the knowledge base.

use disar_actuarial::portfolio::paper_portfolios;
use disar_alm::SegregatedFund;
use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};
use disar_core::tenant::TransferPolicy;
use disar_core::{
    DeployPipeline, DeployPolicy, DeployService, JobProfile, KnowledgeBase, PipelineJob,
    ServiceConfig, ServiceStats, TenantId, TenantShardedKnowledgeBase, TransparentDeployer,
};
use disar_engine::complexity::ComplexityModel;
use disar_engine::eeb::{decompose, EebKind};
use disar_engine::simulation::{MarketModel, SimulationSpec, DEFAULT_LANE};
use disar_math::rng::stream_rng;
use rand::Rng;
use std::sync::Arc;

/// One runnable EEB job: profile (what the ML sees) + workload (what the
/// cloud executes).
#[derive(Debug, Clone)]
pub struct EebJob {
    /// Portfolio name the EEB came from.
    pub portfolio: String,
    /// EEB id within its portfolio.
    pub eeb_id: usize,
    /// ML-visible characteristic parameters.
    pub profile: JobProfile,
    /// Cloud workload of the block.
    pub workload: Workload,
}

/// Campaign configuration (defaults follow §IV).
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Total cloud runs recorded into the knowledge base.
    pub n_runs: usize,
    /// Natural iterations per simulation (`nP`).
    pub n_outer: usize,
    /// Risk-neutral iterations (`nQ`).
    pub n_inner: usize,
    /// Node-count range sampled during the campaign.
    pub max_nodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the campaign's cloud runs (and, where a driver
    /// takes this config, Algorithm 1 sweeps). Results are bit-identical
    /// for any value; `1` is the sequential escape hatch.
    pub n_threads: usize,
}

impl Default for CampaignConfig {
    /// §IV: "1500 runs", `nQ = 50`, `nP = 1000 for illustrative purposes".
    /// `n_threads` defaults to the available cores (results are
    /// thread-count invariant; set `1` for the sequential escape hatch).
    fn default() -> Self {
        CampaignConfig {
            n_runs: 1500,
            n_outer: 1000,
            n_inner: 50,
            max_nodes: 8,
            seed: 20160627, // ICDCS 2016 opening day
            n_threads: disar_math::parallel::default_n_threads(),
        }
    }
}

impl CampaignConfig {
    /// Starts a chainable config build from the §IV defaults
    /// ([`CampaignConfig::default`]) — call sites state their deltas
    /// instead of re-listing every knob.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            cfg: CampaignConfig::default(),
        }
    }
}

/// Chainable construction of a [`CampaignConfig`], starting from the
/// paper's §IV defaults.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfigBuilder {
    cfg: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Sets the total number of recorded cloud runs.
    pub fn n_runs(mut self, n_runs: usize) -> Self {
        self.cfg.n_runs = n_runs;
        self
    }

    /// Sets the natural iterations per simulation (`nP`).
    pub fn n_outer(mut self, n_outer: usize) -> Self {
        self.cfg.n_outer = n_outer;
        self
    }

    /// Sets the risk-neutral iterations (`nQ`).
    pub fn n_inner(mut self, n_inner: usize) -> Self {
        self.cfg.n_inner = n_inner;
        self
    }

    /// Sets the node-count range sampled during the campaign.
    pub fn max_nodes(mut self, max_nodes: usize) -> Self {
        self.cfg.max_nodes = max_nodes;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the worker-thread count (results are thread-count invariant).
    pub fn n_threads(mut self, n_threads: usize) -> Self {
        self.cfg.n_threads = n_threads;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }
}

/// Builds the paper's 15 EEB jobs: three synthetic company portfolios,
/// five type-B blocks each, with varying market-model richness and fund
/// sizes so the characteristic parameters actually vary.
pub fn paper_eeb_jobs(cfg: &CampaignConfig) -> Vec<EebJob> {
    let portfolios = paper_portfolios(cfg.seed).expect("builtin specs are valid");
    let markets = [
        MarketModel::RatesEquity,
        MarketModel::RatesEquityFx,
        MarketModel::Full,
    ];
    let fund_sizes = [20usize, 40, 80];
    let complexity = ComplexityModel::default();
    let mut jobs = Vec::with_capacity(15);
    for (pi, portfolio) in portfolios.into_iter().enumerate() {
        let spec = SimulationSpec {
            fund: SegregatedFund::italian_typical(fund_sizes[pi]),
            market: markets[pi],
            n_outer: cfg.n_outer,
            n_inner: cfg.n_inner,
            steps_per_year: 12,
            seed: cfg.seed.wrapping_add(pi as u64),
            portfolio,
            lane: DEFAULT_LANE,
        };
        let eebs = decompose(&spec, 5).expect("portfolios have >= 5 model points");
        for eeb in eebs.iter().filter(|e| e.kind == EebKind::AlmValuation) {
            jobs.push(EebJob {
                portfolio: spec.portfolio.name.clone(),
                eeb_id: eeb.id,
                profile: JobProfile {
                    characteristics: eeb.characteristics,
                    n_outer: cfg.n_outer,
                    n_inner: cfg.n_inner,
                },
                workload: complexity
                    .workload(eeb, &spec)
                    .expect("type-B blocks have workloads"),
            });
        }
    }
    assert_eq!(jobs.len(), 15, "the paper uses 15 EEBs");
    jobs
}

/// Runs the campaign: `n_runs` jobs sampled uniformly over (EEB, instance
/// type, node count), every realized duration recorded — the knowledge
/// base Table I/Figures 2–3 are computed from.
///
/// The runs go through a [`DeployPipeline`] of forced (operator-pinned)
/// jobs, `cfg.n_threads` deep: forced jobs never consult the predictor, so
/// the pipeline keeps every slot busy while records land strictly in job
/// order — bit-identical to the sequential loop at any depth.
///
/// Returns the knowledge base and the provider (with its noise stream
/// advanced), so follow-up experiments see fresh cloud conditions.
pub fn build_knowledge_base(cfg: &CampaignConfig) -> (KnowledgeBase, CloudProvider, Vec<EebJob>) {
    let jobs = paper_eeb_jobs(cfg);
    let provider = Arc::new(CloudProvider::new(InstanceCatalog::paper_catalog(), cfg.seed));
    let names = provider.catalog().names();

    // Pre-sample every (job, instance, nodes) decision with the campaign's
    // own RNG stream (untouched by the cloud runs), then submit them as
    // forced pipeline jobs: run `i` holds the `i`-th noise-stream slot, so
    // it sees exactly the cloud conditions the `i`-th iteration of the
    // sequential loop would have.
    let pipeline_jobs: Vec<PipelineJob> = {
        let mut rng = stream_rng(cfg.seed, 0xCA3F);
        (0..cfg.n_runs)
            .map(|_| {
                let job = &jobs[rng.gen_range(0..jobs.len())];
                let instance = &names[rng.gen_range(0..names.len())];
                let n_nodes = rng.gen_range(1..=cfg.max_nodes);
                PipelineJob::forced(job.profile, job.workload.clone(), instance, n_nodes)
            })
            .collect()
    };
    // The campaign only records; the deployer must never select or
    // retrain, so the bootstrap threshold is unreachable.
    let policy = DeployPolicy::builder(f64::MAX)
        .epsilon(0.0)
        .max_nodes(cfg.max_nodes)
        .min_kb_samples(usize::MAX)
        .n_threads(1)
        .build();
    let deployer = TransparentDeployer::from_shared(Arc::clone(&provider), policy, cfg.seed);
    let mut pipeline =
        DeployPipeline::new(deployer, cfg.n_threads.max(1)).expect("depth >= 1");
    pipeline
        .run(&pipeline_jobs)
        .expect("catalog instances are valid");
    let kb = pipeline.into_deployer().into_knowledge_base();
    let provider =
        Arc::try_unwrap(provider).expect("pipeline workers released their provider handles");
    (kb, provider, jobs)
}

/// Runs the multi-company variant of the campaign through the concurrent
/// [`DeployService`]: `n_tenants` companies each push
/// `cfg.n_runs / n_tenants` forced runs through their own bounded handle,
/// records land in the shared two-key base, and the exported
/// [`TenantShardedKnowledgeBase`] comes back with the service counters.
///
/// Like [`build_knowledge_base`], this is a record-only campaign: the
/// bootstrap threshold and retrain cadence are unreachable, so the service
/// never selects or retrains — every decision is operator-pinned from each
/// tenant's own RNG stream, making the result independent of the
/// cross-tenant interleaving (and deterministic run to run).
pub fn build_tenant_knowledge_base(
    cfg: &CampaignConfig,
    n_tenants: usize,
) -> (TenantShardedKnowledgeBase, ServiceStats) {
    assert!(n_tenants > 0, "need at least one tenant");
    let jobs = paper_eeb_jobs(cfg);
    let names = InstanceCatalog::paper_catalog().names();
    let per_tenant = cfg.n_runs / n_tenants;
    let policy = DeployPolicy::builder(f64::MAX)
        .epsilon(0.0)
        .max_nodes(cfg.max_nodes)
        .min_kb_samples(usize::MAX)
        .retrain_every(per_tenant + 2)
        .n_threads(1)
        .transfer(TransferPolicy::Isolated)
        .build();
    let mut service = DeployService::new(
        InstanceCatalog::paper_catalog(),
        policy,
        ServiceConfig {
            depth: cfg.n_threads.max(1),
            queue_capacity: per_tenant.max(1),
            batch_max: 32,
        },
    )
    .expect("campaign service config is valid");
    let mut handles = Vec::with_capacity(n_tenants);
    let mut streams: Vec<Vec<PipelineJob>> = Vec::with_capacity(n_tenants);
    for t in 0..n_tenants {
        let seed = cfg.seed.wrapping_add(t as u64);
        handles.push(
            service
                .register(TenantId::new(format!("company-{t}")), seed)
                .expect("tenants are fresh"),
        );
        // Each company pre-samples its own decisions from its own stream,
        // exactly as the single-company campaign does.
        let mut rng = stream_rng(seed, 0xCA3F);
        streams.push(
            (0..per_tenant)
                .map(|_| {
                    let job = &jobs[rng.gen_range(0..jobs.len())];
                    let instance = &names[rng.gen_range(0..names.len())];
                    let n_nodes = rng.gen_range(1..=cfg.max_nodes);
                    PipelineJob::forced(job.profile, job.workload.clone(), instance, n_nodes)
                })
                .collect(),
        );
    }
    service.start().expect("service starts once");
    // Round-robin submission: every company is genuinely concurrent.
    for i in 0..per_tenant {
        for (t, handle) in handles.iter().enumerate() {
            handle
                .submit(streams[t][i].clone())
                .expect("queue sized for the stream");
        }
    }
    for handle in handles {
        handle.finish().expect("forced runs succeed");
    }
    let kb = service.export_knowledge_base();
    let stats = service.join().expect("clean shutdown");
    (kb, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig::builder()
            .n_runs(60)
            .n_outer(200)
            .n_inner(20)
            .max_nodes(4)
            .seed(7)
            .n_threads(1)
            .build()
    }

    #[test]
    fn builder_defaults_match_default() {
        let b = CampaignConfig::builder().build();
        let d = CampaignConfig::default();
        assert_eq!(b.n_runs, d.n_runs);
        assert_eq!(b.n_outer, d.n_outer);
        assert_eq!(b.n_inner, d.n_inner);
        assert_eq!(b.max_nodes, d.max_nodes);
        assert_eq!(b.seed, d.seed);
        assert_eq!(b.n_threads, disar_math::parallel::default_n_threads());
    }

    #[test]
    fn fifteen_jobs_with_varying_characteristics() {
        let jobs = paper_eeb_jobs(&small_cfg());
        assert_eq!(jobs.len(), 15);
        // Characteristic parameters must vary across jobs or the ML problem
        // degenerates.
        let contracts: std::collections::BTreeSet<usize> = jobs
            .iter()
            .map(|j| j.profile.characteristics.representative_contracts)
            .collect();
        assert!(contracts.len() > 5, "contracts too uniform: {contracts:?}");
        let factors: std::collections::BTreeSet<usize> = jobs
            .iter()
            .map(|j| j.profile.characteristics.risk_factors)
            .collect();
        assert_eq!(factors.len(), 3);
    }

    #[test]
    fn knowledge_base_covers_all_instances() {
        let (kb, provider, _) = build_knowledge_base(&small_cfg());
        assert_eq!(kb.len(), 60);
        for name in provider.catalog().names() {
            assert!(
                !kb.for_instance(&name).is_empty(),
                "{name} never sampled in 60 runs"
            );
        }
    }

    #[test]
    fn durations_are_positive_and_varied() {
        let (kb, _, _) = build_knowledge_base(&small_cfg());
        let times: Vec<f64> = kb.records().iter().map(|r| r.duration_secs).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        assert!(disar_math::stats::std_dev(&times) > 1.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let (a, _, _) = build_knowledge_base(&small_cfg());
        let (b, _, _) = build_knowledge_base(&small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn tenant_campaign_is_deterministic_and_partitioned() {
        let (kb, stats) = build_tenant_knowledge_base(&small_cfg(), 3);
        assert_eq!(kb.len(), 60); // 20 runs per company
        assert_eq!(kb.tenants().len(), 3);
        assert_eq!(stats.tenants, 3);
        assert_eq!(stats.admitted, 60);
        assert_eq!(stats.rejected, 0);
        // Record-only campaign: the ingester never had to retrain.
        assert_eq!(stats.retrains, 0);
        // Per-tenant record streams are independent of the cross-tenant
        // interleaving: a second concurrent run exports the same base.
        let (kb2, _) = build_tenant_knowledge_base(&small_cfg(), 3);
        let a: Vec<_> = kb.records_in_arrival_order().collect();
        let b: Vec<_> = kb2.records_in_arrival_order().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_sequential() {
        let wl = paper_eeb_jobs(&small_cfg())[0].workload.clone();
        for n_threads in [2, 4] {
            let (seq, seq_provider, _) = build_knowledge_base(&small_cfg());
            let cfg = CampaignConfig {
                n_threads,
                ..small_cfg()
            };
            let (par, par_provider, _) = build_knowledge_base(&cfg);
            assert_eq!(seq, par, "divergence at n_threads = {n_threads}");
            // Both providers left their noise stream at the same point.
            let a = seq_provider.run_job("c3.4xlarge", 2, &wl).unwrap();
            let b = par_provider.run_job("c3.4xlarge", 2, &wl).unwrap();
            assert_eq!(a, b);
        }
    }
}
