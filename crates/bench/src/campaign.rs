//! The experimental campaign of §IV: three portfolios, 15 EEBs, ≈1500
//! cloud runs feeding the knowledge base.

use disar_actuarial::portfolio::paper_portfolios;
use disar_alm::SegregatedFund;
use disar_cloudsim::{CloudProvider, InstanceCatalog, Workload};
use disar_core::{JobProfile, KnowledgeBase, RunRecord};
use disar_engine::complexity::ComplexityModel;
use disar_engine::eeb::{decompose, EebKind};
use disar_engine::simulation::{MarketModel, SimulationSpec};
use disar_math::rng::stream_rng;
use rand::Rng;

/// One runnable EEB job: profile (what the ML sees) + workload (what the
/// cloud executes).
#[derive(Debug, Clone)]
pub struct EebJob {
    /// Portfolio name the EEB came from.
    pub portfolio: String,
    /// EEB id within its portfolio.
    pub eeb_id: usize,
    /// ML-visible characteristic parameters.
    pub profile: JobProfile,
    /// Cloud workload of the block.
    pub workload: Workload,
}

/// Campaign configuration (defaults follow §IV).
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Total cloud runs recorded into the knowledge base.
    pub n_runs: usize,
    /// Natural iterations per simulation (`nP`).
    pub n_outer: usize,
    /// Risk-neutral iterations (`nQ`).
    pub n_inner: usize,
    /// Node-count range sampled during the campaign.
    pub max_nodes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    /// §IV: "1500 runs", `nQ = 50`, `nP = 1000 for illustrative purposes".
    fn default() -> Self {
        CampaignConfig {
            n_runs: 1500,
            n_outer: 1000,
            n_inner: 50,
            max_nodes: 8,
            seed: 20160627, // ICDCS 2016 opening day
        }
    }
}

/// Builds the paper's 15 EEB jobs: three synthetic company portfolios,
/// five type-B blocks each, with varying market-model richness and fund
/// sizes so the characteristic parameters actually vary.
pub fn paper_eeb_jobs(cfg: &CampaignConfig) -> Vec<EebJob> {
    let portfolios = paper_portfolios(cfg.seed).expect("builtin specs are valid");
    let markets = [
        MarketModel::RatesEquity,
        MarketModel::RatesEquityFx,
        MarketModel::Full,
    ];
    let fund_sizes = [20usize, 40, 80];
    let complexity = ComplexityModel::default();
    let mut jobs = Vec::with_capacity(15);
    for (pi, portfolio) in portfolios.into_iter().enumerate() {
        let spec = SimulationSpec {
            fund: SegregatedFund::italian_typical(fund_sizes[pi]),
            market: markets[pi],
            n_outer: cfg.n_outer,
            n_inner: cfg.n_inner,
            steps_per_year: 12,
            seed: cfg.seed.wrapping_add(pi as u64),
            portfolio,
        };
        let eebs = decompose(&spec, 5).expect("portfolios have >= 5 model points");
        for eeb in eebs.iter().filter(|e| e.kind == EebKind::AlmValuation) {
            jobs.push(EebJob {
                portfolio: spec.portfolio.name.clone(),
                eeb_id: eeb.id,
                profile: JobProfile {
                    characteristics: eeb.characteristics,
                    n_outer: cfg.n_outer,
                    n_inner: cfg.n_inner,
                },
                workload: complexity
                    .workload(eeb, &spec)
                    .expect("type-B blocks have workloads"),
            });
        }
    }
    assert_eq!(jobs.len(), 15, "the paper uses 15 EEBs");
    jobs
}

/// Runs the campaign: `n_runs` jobs sampled uniformly over (EEB, instance
/// type, node count), every realized duration recorded — the knowledge
/// base Table I/Figures 2–3 are computed from.
///
/// Returns the knowledge base and the provider (with its noise stream
/// advanced), so follow-up experiments see fresh cloud conditions.
pub fn build_knowledge_base(cfg: &CampaignConfig) -> (KnowledgeBase, CloudProvider, Vec<EebJob>) {
    let jobs = paper_eeb_jobs(cfg);
    let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), cfg.seed);
    let names = provider.catalog().names();
    let mut rng = stream_rng(cfg.seed, 0xCA3F);
    let mut kb = KnowledgeBase::new();
    for _ in 0..cfg.n_runs {
        let job = &jobs[rng.gen_range(0..jobs.len())];
        let instance = &names[rng.gen_range(0..names.len())];
        let n_nodes = rng.gen_range(1..=cfg.max_nodes);
        let report = provider
            .run_job(instance, n_nodes, &job.workload)
            .expect("catalog instances are valid");
        let inst = provider.catalog().get(instance).expect("valid name");
        kb.record(RunRecord::new(
            job.profile,
            inst,
            n_nodes,
            report.duration_secs,
            report.prorated_cost,
        ));
    }
    (kb, provider, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            n_runs: 60,
            n_outer: 200,
            n_inner: 20,
            max_nodes: 4,
            seed: 7,
        }
    }

    #[test]
    fn fifteen_jobs_with_varying_characteristics() {
        let jobs = paper_eeb_jobs(&small_cfg());
        assert_eq!(jobs.len(), 15);
        // Characteristic parameters must vary across jobs or the ML problem
        // degenerates.
        let contracts: std::collections::BTreeSet<usize> = jobs
            .iter()
            .map(|j| j.profile.characteristics.representative_contracts)
            .collect();
        assert!(contracts.len() > 5, "contracts too uniform: {contracts:?}");
        let factors: std::collections::BTreeSet<usize> = jobs
            .iter()
            .map(|j| j.profile.characteristics.risk_factors)
            .collect();
        assert_eq!(factors.len(), 3);
    }

    #[test]
    fn knowledge_base_covers_all_instances() {
        let (kb, provider, _) = build_knowledge_base(&small_cfg());
        assert_eq!(kb.len(), 60);
        for name in provider.catalog().names() {
            assert!(
                !kb.for_instance(&name).is_empty(),
                "{name} never sampled in 60 runs"
            );
        }
    }

    #[test]
    fn durations_are_positive_and_varied() {
        let (kb, _, _) = build_knowledge_base(&small_cfg());
        let times: Vec<f64> = kb.records().iter().map(|r| r.duration_secs).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        assert!(disar_math::stats::std_dev(&times) > 1.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let (a, _, _) = build_knowledge_base(&small_cfg());
        let (b, _, _) = build_knowledge_base(&small_cfg());
        assert_eq!(a, b);
    }
}
