//! Implementations of every table/figure of the paper's §IV plus the
//! ablations DESIGN.md calls out, behind one uniform [`Experiment`] API.
//!
//! Every driver is a unit struct implementing [`Experiment`]; the
//! name-keyed [`EXPERIMENTS`] registry replaces the old string-match
//! dispatch in the CLIs, and each `run` emits exactly one replayable
//! [`RegistryRow`] whose `input_hash` digests the campaign config, the
//! quick flag, the job list, and (where consumed) the knowledge-base
//! fingerprint — the contract `runbook` replays against (DESIGN.md §13).

use crate::campaign::{build_knowledge_base, paper_eeb_jobs, CampaignConfig, EebJob};
use disar_actuarial::contracts::{Contract, ProductKind, ProfitSharing};
use disar_actuarial::engine::ActuarialEngine;
use disar_actuarial::lapse::DurationLapse;
use disar_actuarial::model_points::ModelPoint;
use disar_actuarial::mortality::{Gender, LifeTable};
use disar_alm::liability::LiabilityPosition;
use disar_alm::lsmc::{Lsmc, LsmcConfig};
use disar_alm::nested::{NestedConfig, NestedMonteCarlo};
use disar_alm::SegregatedFund;
use disar_cloudsim::{CloudProvider, DriftModel, InstanceCatalog};
use disar_core::deploy::{DeployPolicy, TransparentDeployer};
use disar_core::tenant::{TenantId, TenantShardedDeployer, TransferPolicy};
use disar_core::{
    regret_weights, select_configuration, select_configuration_with_rule,
    select_hetero_configuration, CoreError, DeployMode, DetectorKind, DriftConfig, KnowledgeBase,
    PredictorFamily, RetrainMode, TimeEstimate,
};
use disar_math::parallel::parallel_map;
use disar_math::rng::stream_rng;
use disar_math::stats;
use disar_ml::metrics::evaluate;
use disar_ml::regressor::ModelKind;
use disar_ml::Regressor;
use disar_registry::{knowledge_fingerprint, CanonicalHasher, Canonicalize, RegistryRow};
use disar_stochastic::scenario::TimeGrid;
use disar_stochastic::{drivers, CorrelationMatrix};
use rand::Rng;
use serde::Serialize;
use serde_json::{json, Value};
use std::time::Instant;

/// The 40 %/60 % train/test split of Table I.
pub const TABLE1_TRAIN_FRACTION: f64 = 0.4;

/// Everything an [`Experiment`] needs: the campaign configuration (which
/// seeds the knowledge base, the provider noise streams, and every model
/// fit) plus the quick-mode flag that shrinks the slow deploy loops.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Campaign configuration shared by every experiment.
    pub cfg: CampaignConfig,
    /// Shrink the self-optimizing loops to CI-sized runs.
    pub quick: bool,
}

impl ExperimentCtx {
    /// Builds a context.
    pub fn new(cfg: CampaignConfig, quick: bool) -> Self {
        Self { cfg, quick }
    }

    /// Builds the campaign knowledge base, provider, and job list afresh.
    /// Replay determinism requires every `run` to start from the same
    /// provider noise-stream position, so nothing is cached or shared.
    pub fn campaign(&self) -> (KnowledgeBase, CloudProvider, Vec<EebJob>) {
        build_knowledge_base(&self.cfg)
    }

    /// The paper's EEB jobs under this campaign's Monte Carlo sizes.
    pub fn jobs(&self) -> Vec<EebJob> {
        paper_eeb_jobs(&self.cfg)
    }

    /// The replayable parameter object recorded on every row; inverted by
    /// [`ExperimentCtx::from_params`].
    pub fn params(&self) -> Value {
        json!({
            "campaign": {
                "n_runs": self.cfg.n_runs,
                "n_outer": self.cfg.n_outer,
                "n_inner": self.cfg.n_inner,
                "max_nodes": self.cfg.max_nodes,
                "seed": self.cfg.seed,
                "n_threads": self.cfg.n_threads,
            },
            "quick": self.quick,
        })
    }

    /// Rebuilds a context from a recorded row's `params`; `None` when the
    /// row was written by something other than an experiment driver.
    pub fn from_params(params: &Value) -> Option<Self> {
        let c = params.get("campaign")?;
        let get = |k: &str| c.get(k).and_then(Value::as_u64);
        let cfg = CampaignConfig::builder()
            .n_runs(get("n_runs")? as usize)
            .n_outer(get("n_outer")? as usize)
            .n_inner(get("n_inner")? as usize)
            .max_nodes(get("max_nodes")? as usize)
            .seed(get("seed")?)
            .n_threads(get("n_threads")? as usize)
            .build();
        let quick = params
            .get("quick")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        Some(Self { cfg, quick })
    }

    /// Canonical input digest for a named experiment: the name, the
    /// campaign config, the quick flag, the job list, and (when consumed)
    /// the knowledge-base fingerprint.
    pub fn input_hash(
        &self,
        experiment: &str,
        kb: Option<&KnowledgeBase>,
        jobs: &[EebJob],
    ) -> u64 {
        let mut h = CanonicalHasher::new();
        h.field("experiment");
        h.write_str(experiment);
        h.field("campaign");
        self.cfg.canonicalize(&mut h);
        h.field("quick");
        h.write_bool(self.quick);
        h.field("jobs");
        jobs.canonicalize(&mut h);
        h.field("kb");
        kb.map(knowledge_fingerprint).canonicalize(&mut h);
        h.finish()
    }
}

/// A named, replayable experiment driver. Implementors are unit structs;
/// dispatch goes through [`EXPERIMENTS`] / [`by_name`] instead of string
/// matching in each CLI.
pub trait Experiment: Sync {
    /// Stable registry key; also the CLI argument that selects the driver.
    fn name(&self) -> &'static str;

    /// Runs the experiment and returns its registry rows — exactly one per
    /// driver today; the `Vec` leaves room for multi-row sweeps.
    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow>;

    /// Renders a row's `outputs` for the terminal; pretty JSON by default.
    fn render(&self, outputs: &Value) -> String {
        serde_json::to_string_pretty(outputs).unwrap_or_else(|_| outputs.to_string())
    }
}

/// Every driver, keyed by [`Experiment::name`].
pub static EXPERIMENTS: &[&dyn Experiment] = &[
    &Table1Experiment,
    &Table2Experiment,
    &Fig2Experiment,
    &Fig3Experiment,
    &Fig4Experiment,
    &ComparisonExperiment,
    &EnsembleAblationExperiment,
    &EpsilonAblationExperiment,
    &HeteroAblationExperiment,
    &DeadlineRuleAblationExperiment,
    &LearningCurveExperiment,
    &TransferAblationExperiment,
    &FeatureAblationExperiment,
    &BillingAblationExperiment,
    &LsmcAblationExperiment,
    &DriftAblationExperiment,
];

/// Looks a driver up by its registry key.
pub fn by_name(name: &str) -> Option<&'static dyn Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.name() == name)
}

fn to_json<T: Serialize>(v: &T) -> Value {
    serde_json::to_value(v).expect("experiment outputs serialize")
}

/// Assembles the one row a driver emits: `ctx.params()` plus any
/// experiment-specific extras, the canonical input digest, and the wall
/// time since `t0` (kept out of the replay contract via `wall_ns`).
#[allow(clippy::too_many_arguments)]
fn finish(
    name: &str,
    ctx: &ExperimentCtx,
    kb: Option<&KnowledgeBase>,
    jobs: &[EebJob],
    extra_params: &[(&str, Value)],
    outputs: Value,
    timings: Value,
    t0: Instant,
) -> Vec<RegistryRow> {
    let mut params = ctx.params();
    if let Some(obj) = params.as_object_mut() {
        for (k, v) in extra_params {
            obj.insert((*k).to_string(), v.clone());
        }
    }
    let row = RegistryRow::new(
        name,
        ctx.input_hash(name, kb, jobs),
        params,
        outputs,
        t0.elapsed().as_nanos() as u64,
    )
    .with_timings(timings);
    vec![row]
}

/// Table I: signed bias δ̄ (seconds) per classifier per instance type.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Instance-type names (columns).
    pub instances: Vec<String>,
    /// Model abbreviations (rows).
    pub models: Vec<String>,
    /// `bias[model][instance]` in seconds.
    pub bias: Vec<Vec<f64>>,
}

/// Driver for Table I (`table1`).
pub struct Table1Experiment;

impl Table1Experiment {
    /// Regenerates Table I from a knowledge base: per instance type, train
    /// each of the six classifiers on 40 % of that type's runs and report
    /// the signed mean error on the remaining 60 %.
    ///
    /// The `instances × models` train/evaluate cells spread over up to
    /// `n_threads` workers. Every cell depends only on its instance's
    /// (deterministic) split and its own model seed, so the table is
    /// bit-identical for any thread count; `1` is the sequential escape
    /// hatch.
    pub fn compute(
        kb: &KnowledgeBase,
        catalog: &InstanceCatalog,
        seed: u64,
        n_threads: usize,
    ) -> Table1 {
        let instances = catalog.names();
        let models: Vec<String> = ModelKind::ALL
            .iter()
            .map(|k| k.abbreviation().to_string())
            .collect();
        // Per-instance splits are cheap; precompute them sequentially so the
        // workers share plain `Dataset`s (the knowledge base's dataset cache
        // is not Sync).
        let splits: Vec<_> = instances
            .iter()
            .map(|inst| {
                kb.for_instance(inst)
                    .to_dataset()
                    .expect("campaign covers every instance")
                    .split(TABLE1_TRAIN_FRACTION, seed)
                    .expect("instance subsets are large enough")
            })
            .collect();
        let total = instances.len() * ModelKind::ALL.len();
        let cells = parallel_map(total, n_threads.max(1), |i| {
            let (ii, mi) = (i / ModelKind::ALL.len(), i % ModelKind::ALL.len());
            let (train, test) = &splits[ii];
            let mut model = ModelKind::ALL[mi].instantiate(seed ^ (mi as u64) << 8);
            model.fit(train).expect("training succeeds");
            evaluate(model.as_ref(), test)
                .expect("evaluation succeeds")
                .bias
        });
        let mut bias = vec![vec![f64::NAN; instances.len()]; models.len()];
        for (i, b) in cells.into_iter().enumerate() {
            bias[i % ModelKind::ALL.len()][i / ModelKind::ALL.len()] = b;
        }
        Table1 {
            instances,
            models,
            bias,
        }
    }
}

impl Experiment for Table1Experiment {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let t = Self::compute(&kb, provider.catalog(), ctx.cfg.seed, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&t),
            Value::Null,
            t0,
        )
    }
}

/// Driver for Table II (`table2`).
pub struct Table2Experiment;

impl Table2Experiment {
    /// Table II: mean prorated per-simulation cost (USD) per instance
    /// type, measured by running every EEB job once on a single node of
    /// each type.
    ///
    /// The `names × jobs` runs execute as a [`CloudProvider::run_batch`]
    /// over reserved noise-stream slots — bit-identical to the sequential
    /// (instance-major) loop for any `n_threads`.
    pub fn compute(
        jobs: &[EebJob],
        provider: &CloudProvider,
        n_threads: usize,
    ) -> Vec<(String, f64)> {
        let names = provider.catalog().names();
        let total = names.len() * jobs.len();
        let costs = provider.run_batch(total, n_threads, |i, run| {
            let name = &names[i / jobs.len()];
            let job = &jobs[i % jobs.len()];
            run.execute(name, 1, &job.workload)
                .expect("catalog instance")
                .prorated_cost
        });
        names
            .into_iter()
            .enumerate()
            .map(|(ni, name)| {
                let slice = &costs[ni * jobs.len()..(ni + 1) * jobs.len()];
                (name, stats::mean(slice))
            })
            .collect()
    }
}

impl Experiment for Table2Experiment {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let rows = Self::compute(&jobs, &provider, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// One point of Figure 2's scatter.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Point {
    /// Model abbreviation.
    pub model: String,
    /// Measured execution time (seconds).
    pub real: f64,
    /// Predicted execution time (seconds).
    pub predicted: f64,
}

/// Driver for Figure 2 (`fig2`).
pub struct Fig2Experiment;

impl Fig2Experiment {
    /// Figure 2: per-model predicted-vs-real pairs on a held-out 60 %
    /// split of the whole knowledge base.
    ///
    /// The six model fits spread over up to `n_threads` workers,
    /// concatenating the per-model point runs in model order —
    /// bit-identical for any thread count; `1` is the sequential escape
    /// hatch.
    pub fn compute(kb: &KnowledgeBase, seed: u64, n_threads: usize) -> Vec<Fig2Point> {
        let data = kb.to_dataset().expect("knowledge base is non-empty");
        let (train, test) = data
            .split(TABLE1_TRAIN_FRACTION, seed)
            .expect("knowledge base is large enough");
        let per_model = parallel_map(ModelKind::ALL.len(), n_threads.max(1), |mi| {
            let kind = ModelKind::ALL[mi];
            let mut model = kind.instantiate(seed ^ (mi as u64) << 8);
            model.fit(&train).expect("training succeeds");
            let ev = evaluate(model.as_ref(), &test).expect("evaluation succeeds");
            ev.pairs
                .into_iter()
                .map(|(real, predicted)| Fig2Point {
                    model: kind.abbreviation().to_string(),
                    real,
                    predicted,
                })
                .collect::<Vec<_>>()
        });
        per_model.into_iter().flatten().collect()
    }

    /// Per-model correlation/RMSE summary of a point cloud — the scalar
    /// claims the paper reads off the scatter.
    pub fn summary(points: &[Fig2Point]) -> Value {
        let mut rows = Vec::new();
        for kind in ModelKind::ALL {
            let abbr = kind.abbreviation();
            let (real, predicted): (Vec<f64>, Vec<f64>) = points
                .iter()
                .filter(|p| p.model == abbr)
                .map(|p| (p.real, p.predicted))
                .unzip();
            if real.is_empty() {
                continue;
            }
            rows.push(json!({
                "model": abbr,
                "points": real.len(),
                "r": stats::correlation(&real, &predicted),
                "rmse_secs": stats::rmse(&predicted, &real),
            }));
        }
        Value::Array(rows)
    }
}

impl Experiment for Fig2Experiment {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, _, jobs) = ctx.campaign();
        let points = Self::compute(&kb, ctx.cfg.seed, ctx.cfg.n_threads);
        let outputs = json!({
            "summary": Self::summary(&points),
            "points": to_json(&points),
        });
        finish(self.name(), ctx, Some(&kb), &jobs, &[], outputs, Value::Null, t0)
    }
}

/// Figure 3: the pooled error histogram.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// `(bin lower edge, percentage)` pairs.
    pub bins: Vec<(f64, f64)>,
    /// Fraction of predictions with |error| ≤ 200 s (the paper reports
    /// ≈ 0.8).
    pub within_200s: f64,
}

/// Driver for Figure 3 (`fig3`).
pub struct Fig3Experiment;

impl Fig3Experiment {
    /// Builds Figure 3 from Figure 2's points.
    pub fn compute(points: &[Fig2Point]) -> Fig3 {
        let errors: Vec<f64> = points.iter().map(|p| p.predicted - p.real).collect();
        let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Paper's axis: roughly [-6000, 4000]; adapt to the observed range
        // but keep 200 s bins like the paper's granularity claim.
        let lo = (lo / 200.0).floor() * 200.0;
        let hi = ((hi / 200.0).ceil() * 200.0).max(lo + 200.0);
        let bins = ((hi - lo) / 200.0) as usize;
        let mut h = disar_math::stats::Histogram::new(lo, hi, bins).expect("valid range");
        h.extend(errors.iter().copied());
        let pct = h.percentages();
        let within =
            errors.iter().filter(|e| e.abs() <= 200.0).count() as f64 / errors.len() as f64;
        Fig3 {
            bins: (0..bins).map(|i| (h.bin_lo(i), pct[i])).collect(),
            within_200s: within,
        }
    }
}

impl Experiment for Fig3Experiment {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, _, jobs) = ctx.campaign();
        let points = Fig2Experiment::compute(&kb, ctx.cfg.seed, ctx.cfg.n_threads);
        let f3 = Self::compute(&points);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&f3),
            Value::Null,
            t0,
        )
    }
}

/// Driver for Figure 4 (`fig4`).
pub struct Fig4Experiment;

impl Fig4Experiment {
    /// Figure 4: mean speedup of a single-VM cloud deploy over the
    /// sequential (one reference core) execution, per instance type.
    ///
    /// The sequential baseline uses the simulator's ground-truth model —
    /// an *oracle* read, legitimate here because the baseline is a
    /// measurement protocol, not a provisioning decision.
    pub fn compute(
        jobs: &[EebJob],
        provider: &CloudProvider,
        n_threads: usize,
    ) -> Vec<(String, f64)> {
        let names = provider.catalog().names();
        let total = names.len() * jobs.len();
        let speedups = provider.run_batch(total, n_threads, |i, run| {
            let name = &names[i / jobs.len()];
            let job = &jobs[i % jobs.len()];
            let seq = provider.ground_truth().sequential_secs(&job.workload);
            let report = run.execute(name, 1, &job.workload).expect("catalog instance");
            seq / report.duration_secs
        });
        names
            .into_iter()
            .enumerate()
            .map(|(ni, name)| {
                let slice = &speedups[ni * jobs.len()..(ni + 1) * jobs.len()];
                (name, stats::mean(slice))
            })
            .collect()
    }
}

impl Experiment for Fig4Experiment {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let rows = Self::compute(&jobs, &provider, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// §IV closing comparison: the ML-selected configuration versus forcing
/// the higher-end VM and versus the most cost-effective VM.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Instance Algorithm 1 chose.
    pub ml_instance: String,
    /// Node count Algorithm 1 chose.
    pub ml_nodes: usize,
    /// Realized ML-deploy execution time (s).
    pub ml_secs: f64,
    /// Realized ML-deploy prorated cost ($).
    pub ml_cost: f64,
    /// Forced higher-end VM (m4.10xlarge × 1) time and cost.
    pub highend_secs: f64,
    /// Cost of the forced higher-end deploy.
    pub highend_cost: f64,
    /// Forced most-cost-effective VM (Table II winner × 1) time and cost.
    pub cheap_secs: f64,
    /// Cost of the forced cheapest deploy.
    pub cheap_cost: f64,
    /// Cost decrease of ML vs the higher-end machine (%).
    pub cost_decrease_pct: f64,
    /// Time reduction of ML vs the most cost-effective machine (%).
    pub time_reduction_pct: f64,
}

/// Driver for the §IV closing comparison (`comparison`).
pub struct ComparisonExperiment;

impl ComparisonExperiment {
    /// Runs the closing comparison on the largest EEB job.
    pub fn compute(
        kb: &KnowledgeBase,
        jobs: &[EebJob],
        provider: &CloudProvider,
        seed: u64,
    ) -> Comparison {
        let mut family = PredictorFamily::new(seed, 2);
        family
            .retrain(kb, RetrainMode::Full, 1)
            .expect("knowledge base is large enough");

        // "A large configuration": the EEB with the most work.
        let job = jobs
            .iter()
            .max_by(|a, b| {
                a.workload
                    .work_units
                    .partial_cmp(&b.workload.work_units)
                    .expect("finite work")
            })
            .expect("non-empty job list");

        // Forced deploys.
        let highend = provider
            .run_job("m4.10xlarge", 1, &job.workload)
            .expect("catalog instance");
        let cheap_name = Table2Experiment::compute(jobs, provider, 1)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("catalog non-empty")
            .0;
        let cheap = provider
            .run_job(&cheap_name, 1, &job.workload)
            .expect("catalog instance");

        // ML deploy: deadline set below the cheap machine's realized time
        // so Algorithm 1 must find something faster yet still cheap.
        let t_max = cheap.duration_secs * 0.75;
        let sel = select_configuration(
            &family,
            provider.catalog(),
            &job.profile,
            t_max,
            8,
            0.0,
            seed,
        )
        .expect("a feasible configuration exists");
        let ml = provider
            .run_job(&sel.chosen.instance, sel.chosen.n_nodes, &job.workload)
            .expect("catalog instance");

        Comparison {
            ml_instance: sel.chosen.instance.clone(),
            ml_nodes: sel.chosen.n_nodes,
            ml_secs: ml.duration_secs,
            ml_cost: ml.prorated_cost,
            highend_secs: highend.duration_secs,
            highend_cost: highend.prorated_cost,
            cheap_secs: cheap.duration_secs,
            cheap_cost: cheap.prorated_cost,
            cost_decrease_pct: 100.0 * (1.0 - ml.prorated_cost / highend.prorated_cost),
            time_reduction_pct: 100.0 * (1.0 - ml.duration_secs / cheap.duration_secs),
        }
    }
}

impl Experiment for ComparisonExperiment {
    fn name(&self) -> &'static str {
        "comparison"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let c = Self::compute(&kb, &jobs, &provider, ctx.cfg.seed);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&c),
            Value::Null,
            t0,
        )
    }
}

/// Driver for the single-model-vs-ensemble ablation (`ablation_ensemble`).
pub struct EnsembleAblationExperiment;

impl EnsembleAblationExperiment {
    /// Ablation: accuracy of each single model vs the six-model average on
    /// a held-out split. Returns `(name, bias, rmse)` rows, ensemble last.
    ///
    /// The six member fits spread over up to `n_threads` workers; the
    /// ensemble is then assembled from the fitted members in model order,
    /// so the rows are bit-identical for any thread count; `1` is the
    /// sequential escape hatch.
    pub fn compute(kb: &KnowledgeBase, seed: u64, n_threads: usize) -> Vec<(String, f64, f64)> {
        let data = kb.to_dataset().expect("knowledge base is non-empty");
        let (train, test) = data
            .split(TABLE1_TRAIN_FRACTION, seed)
            .expect("knowledge base is large enough");
        let per_model = parallel_map(ModelKind::ALL.len(), n_threads.max(1), |mi| {
            let kind = ModelKind::ALL[mi];
            let mut model = kind.instantiate(seed ^ (mi as u64) << 8);
            model.fit(&train).expect("training succeeds");
            let ev = evaluate(model.as_ref(), &test).expect("evaluation succeeds");
            ((kind.abbreviation().to_string(), ev.bias, ev.rmse), model)
        });
        let mut fitted: Vec<Box<dyn Regressor>> = Vec::with_capacity(per_model.len());
        let mut rows = Vec::with_capacity(per_model.len() + 1);
        for (row, model) in per_model {
            rows.push(row);
            fitted.push(model);
        }
        let ensemble = disar_ml::Ensemble::new(fitted);
        let ev = evaluate(&ensemble, &test).expect("evaluation succeeds");
        rows.push(("Ensemble".to_string(), ev.bias, ev.rmse));
        rows
    }
}

impl Experiment for EnsembleAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_ensemble"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, _, jobs) = ctx.campaign();
        let rows = Self::compute(&kb, ctx.cfg.seed, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: effect of ε-greedy exploration on knowledge-base coverage and
/// long-run deploy cost.
#[derive(Debug, Clone, Serialize)]
pub struct EpsilonAblation {
    /// The ε used.
    pub epsilon: f64,
    /// Distinct `(instance, n)` configurations present in the final
    /// knowledge base.
    pub distinct_configs: usize,
    /// Mean realized cost over the final third of the deploys ($).
    pub late_mean_cost: f64,
    /// Deadline violations over the whole run.
    pub deadline_misses: usize,
}

/// Driver for the ε-greedy exploration ablation (`ablation_epsilon`).
pub struct EpsilonAblationExperiment;

impl EpsilonAblationExperiment {
    /// Runs `n_deploys` self-optimizing deploys at the given ε and
    /// summarizes.
    pub fn compute(
        cfg: &CampaignConfig,
        jobs: &[EebJob],
        epsilon: f64,
        n_deploys: usize,
    ) -> EpsilonAblation {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), cfg.seed ^ 0xEE);
        let t_max = 3_000.0;
        let policy = DeployPolicy::builder(t_max)
            .epsilon(epsilon)
            .max_nodes(cfg.max_nodes)
            .min_kb_samples(30)
            .retrain_every(10)
            .n_threads(cfg.n_threads.max(1))
            .build();
        let mut deployer = TransparentDeployer::new(provider, policy, cfg.seed ^ 0xEE);
        let mut rng = stream_rng(cfg.seed, 0xE9);
        let mut costs = Vec::with_capacity(n_deploys);
        let mut misses = 0;
        for _ in 0..n_deploys {
            let job = &jobs[rng.gen_range(0..jobs.len())];
            let out = deployer
                .deploy(&job.profile, &job.workload)
                .expect("deploys succeed under a generous deadline");
            costs.push(out.report.prorated_cost);
            if out.missed_deadline(t_max) {
                misses += 1;
            }
        }
        let configs: std::collections::BTreeSet<(String, usize)> = deployer
            .knowledge_base()
            .records()
            .iter()
            .map(|r| (r.instance.clone(), r.n_nodes))
            .collect();
        let late = &costs[costs.len() - costs.len() / 3..];
        EpsilonAblation {
            epsilon,
            distinct_configs: configs.len(),
            late_mean_cost: stats::mean(late),
            deadline_misses: misses,
        }
    }

    /// The deploy-loop length the driver uses under `quick` / full mode.
    pub fn n_deploys(quick: bool) -> usize {
        if quick {
            120
        } else {
            400
        }
    }
}

impl Experiment for EpsilonAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_epsilon"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let jobs = ctx.jobs();
        let n = Self::n_deploys(ctx.quick);
        let greedy = Self::compute(&ctx.cfg, &jobs, 0.0, n);
        let explore = Self::compute(&ctx.cfg, &jobs, 0.1, n);
        finish(
            self.name(),
            ctx,
            None,
            &jobs,
            &[("n_deploys", json!(n))],
            json!({ "rows": [to_json(&greedy), to_json(&explore)] }),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: heterogeneous (mixed-type) deploys vs homogeneous Algorithm 1
/// — the paper's §VI future work, quantified.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeteroAblationRow {
    /// The deadline tested.
    pub t_max: f64,
    /// Homogeneous greedy pick, `None` when infeasible.
    pub homo: Option<(String, usize, f64, f64)>,
    /// Hetero greedy pick as `(description, realized secs, realized cost)`.
    pub hetero: Option<(String, f64, f64)>,
}

/// Driver for the heterogeneous-deploy ablation (`ablation_hetero`).
pub struct HeteroAblationExperiment;

impl HeteroAblationExperiment {
    /// For a sweep of deadlines on the largest EEB, compares the realized
    /// time/cost of the homogeneous pick against the heterogeneous one.
    ///
    /// The sweep runs in two phases so it parallelizes: selections first
    /// (pure reads of the trained family), then the realized runs.
    /// Homogeneous runs draw reserved noise-stream slots in deadline order
    /// — exactly the indices the sequential loop's `run_job` calls would
    /// consume — and heterogeneous runs are counter-free (explicit seed),
    /// so the rows are bit-identical for any thread count; `1` is the
    /// sequential escape hatch.
    pub fn compute(
        kb: &KnowledgeBase,
        jobs: &[EebJob],
        provider: &CloudProvider,
        seed: u64,
        n_threads: usize,
    ) -> Vec<HeteroAblationRow> {
        let n_threads = n_threads.max(1);
        let mut family = PredictorFamily::new(seed, 2);
        family
            .retrain(kb, RetrainMode::Incremental, n_threads)
            .expect("knowledge base is large enough");
        let job = jobs
            .iter()
            .max_by(|a, b| {
                a.workload
                    .work_units
                    .partial_cmp(&b.workload.work_units)
                    .expect("finite")
            })
            .expect("non-empty");

        // Anchor the sweep on the best homogeneous prediction.
        let loose =
            select_configuration(&family, provider.catalog(), &job.profile, 1e12, 4, 0.0, seed)
                .expect("feasible at infinite deadline");
        let best_secs = loose
            .feasible
            .iter()
            .map(|c| c.predicted_secs)
            .fold(f64::INFINITY, f64::min);

        const MULTS: [f64; 4] = [0.8, 1.0, 1.5, 3.0];
        let sels = parallel_map(MULTS.len(), n_threads, |i| {
            let t_max = best_secs * MULTS[i];
            let homo = select_configuration(
                &family,
                provider.catalog(),
                &job.profile,
                t_max,
                4,
                0.0,
                seed,
            )
            .ok();
            let hetero = select_hetero_configuration(
                &family,
                provider.catalog(),
                &job.profile,
                t_max,
                4,
                0.0,
                seed,
            )
            .ok();
            (t_max, homo, hetero)
        });

        // Only feasible homogeneous picks consume provider noise slots, in
        // deadline order.
        let mut n_homo = 0u64;
        let homo_slot: Vec<u64> = sels
            .iter()
            .map(|(_, homo, _)| {
                let slot = n_homo;
                if homo.is_some() {
                    n_homo += 1;
                }
                slot
            })
            .collect();
        let base = provider.reserve_runs(n_homo);

        parallel_map(MULTS.len(), n_threads, |i| {
            let (t_max, homo_sel, hetero_sel) = &sels[i];
            let homo = homo_sel.as_ref().map(|sel| {
                let r = provider
                    .run_job_at(
                        &sel.chosen.instance,
                        sel.chosen.n_nodes,
                        &job.workload,
                        base + homo_slot[i],
                    )
                    .expect("valid instance");
                (
                    sel.chosen.instance.clone(),
                    sel.chosen.n_nodes,
                    r.duration_secs,
                    r.prorated_cost,
                )
            });
            let hetero = hetero_sel.as_ref().map(|sel| {
                let desc = sel
                    .chosen
                    .groups
                    .iter()
                    .map(|g| format!("{}x{}", g.instance, g.n_nodes))
                    .collect::<Vec<_>>()
                    .join("+");
                let r = provider
                    .run_hetero_job_with_seed(&sel.chosen.groups, &job.workload, seed ^ 0x4E7)
                    .expect("valid groups");
                (desc, r.duration_secs, r.prorated_cost)
            });
            HeteroAblationRow {
                t_max: *t_max,
                homo,
                hetero,
            }
        })
    }
}

impl Experiment for HeteroAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_hetero"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let rows = Self::compute(&kb, &jobs, &provider, ctx.cfg.seed, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: ensemble-mean vs conservative (worst-member) deadline filter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeadlineRuleAblation {
    /// Rule name.
    pub rule: String,
    /// Number of (job, deadline) cases where a configuration was feasible.
    pub feasible_cases: usize,
    /// Deadline violations among the executed picks.
    pub misses: usize,
    /// Mean realized cost of the executed picks ($).
    pub mean_cost: f64,
}

/// Driver for the deadline-rule ablation (`ablation_deadline`).
pub struct DeadlineRuleAblationExperiment;

impl DeadlineRuleAblationExperiment {
    /// Sweeps moderately tight deadlines over every EEB job and compares
    /// the deadline-miss rate and cost of the two filtering rules.
    ///
    /// The `rules × jobs × deadlines` sweep runs in two phases so it
    /// parallelizes: every selection is a pure read of the trained family,
    /// and the realized runs draw reserved noise-stream slots in the
    /// sequential loop's (rule, job, deadline) order — only feasible cases
    /// consume a slot, exactly as the sequential `run_job` calls would.
    /// Bit-identical for any thread count; `1` is the sequential escape
    /// hatch.
    pub fn compute(
        kb: &KnowledgeBase,
        jobs: &[EebJob],
        provider: &CloudProvider,
        seed: u64,
        n_threads: usize,
    ) -> Vec<DeadlineRuleAblation> {
        let n_threads = n_threads.max(1);
        let mut family = PredictorFamily::new(seed, 2);
        family
            .retrain(kb, RetrainMode::Incremental, n_threads)
            .expect("knowledge base is large enough");
        let rules = [
            ("mean", TimeEstimate::EnsembleMean),
            ("conservative", TimeEstimate::Conservative),
        ];
        const MULTS: [f64; 3] = [1.05, 1.3, 2.0];

        // Per-job deadline anchor: a deadline near the best mean prediction
        // — tight enough that optimistic filtering risks violations. The
        // anchor is rule-independent.
        let best: Vec<f64> = parallel_map(jobs.len(), n_threads, |ji| {
            let loose = select_configuration(
                &family,
                provider.catalog(),
                &jobs[ji].profile,
                1e12,
                6,
                0.0,
                seed,
            )
            .expect("feasible at infinite deadline");
            loose
                .feasible
                .iter()
                .map(|c| c.predicted_secs)
                .fold(f64::INFINITY, f64::min)
        });

        // Every (rule, job, deadline) selection, rule-major like the
        // sequential loop.
        let per_rule = jobs.len() * MULTS.len();
        let total = rules.len() * per_rule;
        let sels = parallel_map(total, n_threads, |i| {
            let (ri, rem) = (i / per_rule, i % per_rule);
            let (ji, mi) = (rem / MULTS.len(), rem % MULTS.len());
            let t_max = best[ji] * MULTS[mi];
            let sel = select_configuration_with_rule(
                &family,
                provider.catalog(),
                &jobs[ji].profile,
                t_max,
                6,
                0.0,
                seed ^ ji as u64,
                rules[ri].1,
            )
            .ok();
            (t_max, sel)
        });

        // Feasible cases consume provider noise slots in sweep order.
        let mut n_runs = 0u64;
        let run_slot: Vec<u64> = sels
            .iter()
            .map(|(_, sel)| {
                let slot = n_runs;
                if sel.is_some() {
                    n_runs += 1;
                }
                slot
            })
            .collect();
        let base = provider.reserve_runs(n_runs);
        let runs = parallel_map(total, n_threads, |i| {
            let ji = (i % per_rule) / MULTS.len();
            sels[i].1.as_ref().map(|sel| {
                provider
                    .run_job_at(
                        &sel.chosen.instance,
                        sel.chosen.n_nodes,
                        &jobs[ji].workload,
                        base + run_slot[i],
                    )
                    .expect("valid instance")
            })
        });

        rules
            .iter()
            .enumerate()
            .map(|(ri, (name, _))| {
                let mut feasible_cases = 0;
                let mut misses = 0;
                let mut costs = Vec::new();
                for i in ri * per_rule..(ri + 1) * per_rule {
                    let (t_max, sel) = &sels[i];
                    if sel.is_none() {
                        continue;
                    }
                    feasible_cases += 1;
                    let r = runs[i].as_ref().expect("a run for every feasible case");
                    if r.duration_secs > *t_max {
                        misses += 1;
                    }
                    costs.push(r.prorated_cost);
                }
                DeadlineRuleAblation {
                    rule: name.to_string(),
                    feasible_cases,
                    misses,
                    mean_cost: stats::mean(&costs),
                }
            })
            .collect()
    }
}

impl Experiment for DeadlineRuleAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_deadline"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let rows = Self::compute(&kb, &jobs, &provider, ctx.cfg.seed, ctx.cfg.n_threads);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// The self-optimizing loop's learning curve — the paper's claim that
/// learning from useful work "allows to significantly reduce the training
/// phase of the system".
#[derive(Debug, Clone, Serialize)]
pub struct LearningCurve {
    /// `(deploy index, rolling mean |relative error|)` for ML-mode deploys
    /// (window of 20).
    pub points: Vec<(usize, f64)>,
    /// Mean |relative error| over the first 30 ML deploys.
    pub early_mae: f64,
    /// Mean |relative error| over the last 30 ML deploys.
    pub late_mae: f64,
}

/// Driver for the learning curve (`learning_curve`).
pub struct LearningCurveExperiment;

impl LearningCurveExperiment {
    /// Runs `n_deploys` self-optimizing deploys over random EEB jobs and
    /// tracks how the ensemble's relative prediction error shrinks with
    /// knowledge-base size.
    pub fn compute(cfg: &CampaignConfig, jobs: &[EebJob], n_deploys: usize) -> LearningCurve {
        let provider = CloudProvider::new(InstanceCatalog::paper_catalog(), cfg.seed ^ 0x1EA2);
        // No deadline pressure (t_max = 1e9): isolate accuracy.
        let policy = DeployPolicy::builder(1e9)
            .epsilon(0.1)
            .max_nodes(cfg.max_nodes)
            .min_kb_samples(30)
            .retrain_every(5)
            .n_threads(cfg.n_threads.max(1))
            .build();
        let mut deployer = TransparentDeployer::new(provider, policy, cfg.seed ^ 0x1EA2);
        let mut rng = stream_rng(cfg.seed, 0x1C);
        let mut rel_errors: Vec<(usize, f64)> = Vec::new();
        for i in 0..n_deploys {
            let job = &jobs[rng.gen_range(0..jobs.len())];
            let out = deployer
                .deploy(&job.profile, &job.workload)
                .expect("generous deadline");
            if let Some(err) = out.prediction_error() {
                rel_errors.push((i, (err / out.report.duration_secs).abs()));
            }
        }
        let window = 20;
        let points: Vec<(usize, f64)> = rel_errors
            .iter()
            .enumerate()
            .map(|(k, &(i, _))| {
                let lo = k.saturating_sub(window - 1);
                let vals: Vec<f64> = rel_errors[lo..=k].iter().map(|&(_, e)| e).collect();
                (i, stats::mean(&vals))
            })
            .collect();
        let n = rel_errors.len();
        let take = 30.min(n / 2).max(1);
        let early: Vec<f64> = rel_errors[..take].iter().map(|&(_, e)| e).collect();
        let late: Vec<f64> = rel_errors[n - take..].iter().map(|&(_, e)| e).collect();
        LearningCurve {
            points,
            early_mae: stats::mean(&early),
            late_mae: stats::mean(&late),
        }
    }

    /// The deploy-loop length the driver uses under `quick` / full mode.
    pub fn n_deploys(quick: bool) -> usize {
        if quick {
            150
        } else {
            400
        }
    }
}

impl Experiment for LearningCurveExperiment {
    fn name(&self) -> &'static str {
        "learning_curve"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let jobs = ctx.jobs();
        let n = Self::n_deploys(ctx.quick);
        let lc = Self::compute(&ctx.cfg, &jobs, n);
        finish(
            self.name(),
            ctx,
            None,
            &jobs,
            &[("n_deploys", json!(n))],
            to_json(&lc),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: cross-company knowledge transfer. One row per
/// [`TransferPolicy`], summarizing how the *second* company onboards.
#[derive(Debug, Clone, Serialize)]
pub struct TransferAblationRow {
    /// Transfer policy name.
    pub policy: String,
    /// Bootstrap (random-configuration) deploys company B needed.
    pub b_bootstrap_deploys: usize,
    /// ML-mode deploys company B made.
    pub b_ml_deploys: usize,
    /// Mean |relative prediction error| over company B's ML deploys.
    pub b_mean_abs_rel_err: f64,
    /// Mean realized cost of company B's deploys ($).
    pub b_mean_cost: f64,
}

/// Driver for the cross-company transfer ablation (`ablation_transfer`).
pub struct TransferAblationExperiment;

impl TransferAblationExperiment {
    /// The multi-tenant ablation: company A runs `n_per_tenant` deploys
    /// from a cold start, then company B runs `n_per_tenant` deploys over
    /// the same job mix. Under [`TransferPolicy::Isolated`] B must repeat
    /// the whole manual-training phase; under [`TransferPolicy::Pooled`] /
    /// [`TransferPolicy::BorrowUntil`] B starts from A's knowledge — the
    /// paper's observation that the knowledge-base parameters "are not
    /// necessarily bound to a specific" company, quantified.
    pub fn compute(
        cfg: &CampaignConfig,
        jobs: &[EebJob],
        n_per_tenant: usize,
    ) -> Vec<TransferAblationRow> {
        let policies = [
            ("isolated", TransferPolicy::Isolated),
            ("pooled", TransferPolicy::Pooled),
            ("borrow-until-8", TransferPolicy::BorrowUntil(8)),
        ];
        policies
            .iter()
            .map(|(name, transfer)| {
                let provider =
                    CloudProvider::new(InstanceCatalog::paper_catalog(), cfg.seed ^ 0x7E);
                // Generous deadline to isolate onboarding; the paper's
                // after-every-run retrain cadence, so a shard trains exactly
                // when it reaches the family's minimum sample count.
                let policy = DeployPolicy::builder(1e9)
                    .epsilon(0.1)
                    .max_nodes(cfg.max_nodes)
                    .min_kb_samples(30)
                    .n_threads(cfg.n_threads.max(1))
                    .transfer(*transfer)
                    .build();
                let mut d = TenantShardedDeployer::new(provider, policy, cfg.seed ^ 0x7E)
                    .with_tenant(TenantId::new("company-a"));
                let mut rng = stream_rng(cfg.seed, 0x7A);
                for _ in 0..n_per_tenant {
                    let job = &jobs[rng.gen_range(0..jobs.len())];
                    d.deploy(&job.profile, &job.workload)
                        .expect("generous deadline");
                }
                d.set_tenant(TenantId::new("company-b"));
                let mut bootstrap = 0;
                let mut rel_errors = Vec::new();
                let mut costs = Vec::with_capacity(n_per_tenant);
                for _ in 0..n_per_tenant {
                    let job = &jobs[rng.gen_range(0..jobs.len())];
                    let out = d
                        .deploy(&job.profile, &job.workload)
                        .expect("generous deadline");
                    match out.mode {
                        DeployMode::Bootstrap => bootstrap += 1,
                        _ => {
                            if let Some(err) = out.prediction_error() {
                                rel_errors.push((err / out.report.duration_secs).abs());
                            }
                        }
                    }
                    costs.push(out.report.prorated_cost);
                }
                TransferAblationRow {
                    policy: name.to_string(),
                    b_bootstrap_deploys: bootstrap,
                    b_ml_deploys: rel_errors.len(),
                    b_mean_abs_rel_err: stats::mean(&rel_errors),
                    b_mean_cost: stats::mean(&costs),
                }
            })
            .collect()
    }

    /// The per-tenant deploy count the driver uses under `quick` / full
    /// mode.
    pub fn n_per_tenant(quick: bool) -> usize {
        if quick {
            60
        } else {
            150
        }
    }
}

impl Experiment for TransferAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_transfer"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let jobs = ctx.jobs();
        let n = Self::n_per_tenant(ctx.quick);
        let rows = Self::compute(&ctx.cfg, &jobs, n);
        finish(
            self.name(),
            ctx,
            None,
            &jobs,
            &[("n_per_tenant", json!(n))],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// Driver for the feature-importance ablation (`ablation_features`).
pub struct FeatureAblationExperiment;

impl FeatureAblationExperiment {
    /// Ablation: which features actually drive execution time, per the
    /// Random Forest's variance-reduction importances — validating the
    /// paper's claim that its characteristic parameters "induce the
    /// highest variability in the execution time".
    pub fn compute(kb: &KnowledgeBase, seed: u64) -> Vec<(String, f64)> {
        use disar_core::RunRecord;
        let data = kb.to_dataset().expect("knowledge base is non-empty");
        let mut rf = disar_ml::RandomForest::with_defaults(seed);
        rf.fit(&data).expect("training succeeds");
        let names = RunRecord::feature_names();
        let mut rows: Vec<(String, f64)> = names
            .into_iter()
            .zip(rf.importances())
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        rows
    }
}

impl Experiment for FeatureAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_features"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, _, jobs) = ctx.campaign();
        let rows = Self::compute(&kb, ctx.cfg.seed);
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&rows),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: what the campaign would have been invoiced under different
/// billing policies (2016 per-hour vs modern per-second).
#[derive(Debug, Clone, Serialize)]
pub struct BillingAblation {
    /// Total prorated (economic) cost of all campaign runs ($).
    pub prorated_total: f64,
    /// Total under per-hour (2016 EC2) invoicing ($).
    pub per_hour_total: f64,
    /// Total under per-second invoicing with a 60 s minimum ($).
    pub per_second_total: f64,
}

/// Driver for the billing-policy ablation (`ablation_billing`).
pub struct BillingAblationExperiment;

impl BillingAblationExperiment {
    /// Re-prices every knowledge-base run under the alternative billing
    /// policies. The paper's "total cost of 128 $" for 1500 runs only
    /// makes sense with sub-hour granularity; this quantifies how much the
    /// 2016 hourly rounding inflates short Solvency II jobs.
    pub fn compute(kb: &KnowledgeBase, catalog: &InstanceCatalog) -> BillingAblation {
        use disar_cloudsim::billing::BillingPolicy;
        let mut prorated_total = 0.0;
        let mut per_hour_total = 0.0;
        let mut per_second_total = 0.0;
        for r in kb.records() {
            let rate = catalog
                .get(&r.instance)
                .expect("campaign instances are in the catalog")
                .hourly_cost;
            // Uptime ≈ duration + boot; the recorded cost is prorated
            // uptime, so recover uptime from it exactly.
            let uptime = r.cost / (rate * r.n_nodes as f64) * 3600.0;
            prorated_total += r.cost;
            per_hour_total += BillingPolicy::PerHour
                .cost(uptime, rate, r.n_nodes)
                .expect("valid inputs");
            per_second_total += BillingPolicy::PerSecond { min_secs: 60.0 }
                .cost(uptime, rate, r.n_nodes)
                .expect("valid inputs");
        }
        BillingAblation {
            prorated_total,
            per_hour_total,
            per_second_total,
        }
    }
}

impl Experiment for BillingAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_billing"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let (kb, provider, jobs) = ctx.campaign();
        let b = Self::compute(&kb, provider.catalog());
        finish(
            self.name(),
            ctx,
            Some(&kb),
            &jobs,
            &[],
            to_json(&b),
            Value::Null,
            t0,
        )
    }
}

/// Ablation: LSMC vs plain nested Monte Carlo on a real valuation.
#[derive(Debug, Clone, Serialize)]
pub struct LsmcAblation {
    /// Wall seconds of the plain nested run.
    pub nested_secs: f64,
    /// Wall seconds of the LSMC run.
    pub lsmc_secs: f64,
    /// SCR from the nested run.
    pub nested_scr: f64,
    /// SCR from the LSMC run.
    pub lsmc_scr: f64,
    /// Mean `Y_1` relative gap between the two methods.
    pub mean_rel_gap: f64,
}

/// Driver for the LSMC-vs-nested ablation (`ablation_lsmc`).
pub struct LsmcAblationExperiment;

impl LsmcAblationExperiment {
    /// Runs both valuation methods on the same small book and times them.
    pub fn compute(seed: u64) -> LsmcAblation {
        let table = LifeTable::italian_population();
        let lapse = DurationLapse::italian_typical();
        let act = ActuarialEngine::new(&table, &lapse);
        let positions: Vec<LiabilityPosition> = [(45u32, 10u32), (55, 15), (60, 8)]
            .iter()
            .map(|&(age, term)| {
                let ps = ProfitSharing::new(0.8, 0.02).expect("valid");
                let c =
                    Contract::new(ProductKind::Endowment, age, Gender::Male, term, 1000.0, ps)
                        .expect("valid");
                let mp = ModelPoint {
                    contract: c,
                    policy_count: 1,
                };
                LiabilityPosition {
                    schedule: act.cash_flow_schedule(&mp).expect("valid"),
                    profit_sharing: ps,
                }
            })
            .collect();

        let build = |h: f64| {
            disar_stochastic::scenario::ScenarioGenerator::builder()
                .driver(Box::new(
                    drivers::Vasicek::new(0.025, 0.4, 0.028, 0.009, 0.15).expect("valid"),
                ))
                .driver(Box::new(
                    drivers::Gbm::new(100.0, 0.065, 0.17, 0.025).expect("valid"),
                ))
                .correlation(
                    CorrelationMatrix::new(vec![vec![1.0, -0.25], vec![-0.25, 1.0]])
                        .expect("valid"),
                )
                .grid(TimeGrid::new(h, 12).expect("valid"))
                .build()
                .expect("valid")
        };
        let outer = build(1.0);
        let inner = build(15.0);
        let fund = SegregatedFund::italian_typical(30);

        let nested = NestedMonteCarlo::new(&outer, &inner, &fund, 1, 0).expect("valid");
        let t0 = std::time::Instant::now();
        let nres = nested
            .run(
                &positions,
                &NestedConfig {
                    n_outer: 300,
                    n_inner: 40,
                    confidence: 0.995,
                    seed,
                    threads: 1,
                    antithetic: false,
                    lane: disar_stochastic::scenario::DEFAULT_LANE,
                },
            )
            .expect("nested run succeeds");
        let nested_secs = t0.elapsed().as_secs_f64();

        let lsmc = Lsmc::new(&outer, &inner, &fund, 1, 0).expect("valid");
        let t1 = std::time::Instant::now();
        let lres = lsmc
            .run(
                &positions,
                &LsmcConfig {
                    calibration_outer: 60,
                    calibration_inner: 40,
                    n_outer: 300,
                    seed,
                    ..LsmcConfig::paper_defaults(seed)
                },
            )
            .expect("LSMC run succeeds");
        let lsmc_secs = t1.elapsed().as_secs_f64();

        let gap = (stats::mean(&lres.y1) - stats::mean(&nres.y1)).abs() / stats::mean(&nres.y1);
        LsmcAblation {
            nested_secs,
            lsmc_secs,
            nested_scr: nres.scr,
            lsmc_scr: lres.scr,
            mean_rel_gap: gap,
        }
    }
}

impl Experiment for LsmcAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_lsmc"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let a = Self::compute(ctx.cfg.seed);
        // Wall times are machine noise: they go in `timings`, outside the
        // replay contract, so only the numeric results are hash-checked.
        finish(
            self.name(),
            ctx,
            None,
            &[],
            &[],
            json!({
                "nested_scr": a.nested_scr,
                "lsmc_scr": a.lsmc_scr,
                "mean_rel_gap": a.mean_rel_gap,
            }),
            json!({
                "nested_secs": a.nested_secs,
                "lsmc_secs": a.lsmc_secs,
            }),
            t0,
        )
    }
}

/// Ablation: drift adaptation. Selection-regret traces of an adaptive
/// deployer (Page–Hinkley detector + windowed retraining) and a frozen
/// baseline over the same non-stationary cloud.
#[derive(Debug, Clone, Serialize)]
pub struct DriftAblation {
    /// Run index of the injected hardware-regime change.
    pub change_at: usize,
    /// Deadline both arms deploy under (seconds), placed between the
    /// post-change duration of the pre-change cost optimum and the
    /// fastest post-change configuration.
    pub t_max_secs: f64,
    /// Per-ML-deploy selection regret of the adaptive arm (deploy order;
    /// the change lands after the pre-change prefix).
    pub adaptive_regret: Vec<f64>,
    /// Per-ML-deploy selection regret of the frozen baseline.
    pub frozen_regret: Vec<f64>,
    /// Post-change deploys until the adaptive arm's rolling regret
    /// re-enters the in-band threshold (capped at the post horizon).
    pub adaptive_recovery: usize,
    /// Same for the frozen baseline (the cap, in practice: its model
    /// never sees the new regime).
    pub frozen_recovery: usize,
    /// Times the adaptive arm's detector fired.
    pub drift_fires: u64,
    /// Ensemble member names, in family order.
    pub member_names: Vec<String>,
    /// Regret-derived member weights ([`regret_weights`]) from each
    /// member's solo selection regret on the post-change grid.
    pub member_weights: Vec<f64>,
}

/// Driver for the drift-adaptation ablation (`ablation_drift`).
pub struct DriftAblationExperiment;

impl DriftAblationExperiment {
    /// Runs both arms over a [`DriftModel::StepRegime`] cloud: a manual
    /// grid warm-up, a pre-change ML phase, then a 3.3× hardware slowdown
    /// at a known run index. Per deploy, *selection regret* is the extra
    /// noise-free cost of the chosen configuration over the oracle argmin
    /// on the sim's true times, plus one oracle-cost penalty per oracle
    /// deadline miss. The adaptive arm retrains on a decayed window and
    /// escalates via the Page–Hinkley residual detector; the frozen arm
    /// trains once at warm-up and never again.
    ///
    /// Everything is a pure function of the campaign seed: both arms
    /// replay identical run indices, and the oracle reads the drifted
    /// ground truth through [`CloudProvider::oracle_plan`] (a benchmark
    /// privilege the deployers themselves never get).
    pub fn compute(cfg: &CampaignConfig, jobs: &[EebJob]) -> DriftAblation {
        let warmup = 36;
        let pre_ml = 20;
        let post = 48;
        let roll = 8;
        let change_at = warmup + pre_ml;
        let horizon = change_at + post;
        let catalog = InstanceCatalog::paper_catalog();
        let names = catalog.names();
        let max_nodes = cfg.max_nodes.clamp(2, 4);
        let grid: Vec<(String, usize)> = names
            .iter()
            .flat_map(|n| (1..=max_nodes).map(move |k| (n.clone(), k)))
            .collect();
        let drift = DriftModel::StepRegime {
            period: change_at as u64,
            speed_factor: 0.3,
            price_factor: 1.0,
        };
        // The oracle probe: a provider whose run counter never advances,
        // so `oracle_plan` reads any stream position's ground truth.
        let probe =
            CloudProvider::new(catalog.clone(), cfg.seed ^ 0xD21F).with_drift(drift.clone());
        let job = &jobs[0];
        let plan = |name: &str, n: usize, idx: u64| {
            probe
                .oracle_plan(name, n, &job.workload, idx)
                .expect("catalog configuration")
        };
        // Deadline: pre-change, the cost optimum fits comfortably; after
        // the slowdown it no longer does, while faster configurations
        // still do — so a stale model keeps choosing configurations that
        // now miss.
        let pre_best = grid
            .iter()
            .min_by(|a, b| {
                let ca = plan(&a.0, a.1, 0).prorated_cost;
                let cb = plan(&b.0, b.1, 0).prorated_cost;
                ca.partial_cmp(&cb).expect("finite oracle costs")
            })
            .expect("non-empty grid")
            .clone();
        let d0_pre = plan(&pre_best.0, pre_best.1, 0).duration_secs;
        let d0_post = plan(&pre_best.0, pre_best.1, change_at as u64).duration_secs;
        let dmin_post = grid
            .iter()
            .map(|(nm, n)| plan(nm, *n, change_at as u64).duration_secs)
            .fold(f64::INFINITY, f64::min);
        let t_max = (0.5 * (dmin_post + d0_post)).max(1.15 * d0_pre);
        // Cheapest oracle cost among deadline-feasible configurations
        // (falling back to the unconstrained optimum if none fits).
        let best_feasible = |idx: u64| -> f64 {
            let mut best = f64::INFINITY;
            let mut best_any = f64::INFINITY;
            for (nm, n) in &grid {
                let p = plan(nm, *n, idx);
                best_any = best_any.min(p.prorated_cost);
                if p.duration_secs <= t_max {
                    best = best.min(p.prorated_cost);
                }
            }
            if best.is_finite() {
                best
            } else {
                best_any
            }
        };
        let fastest = |idx: u64| -> (String, usize) {
            grid.iter()
                .min_by(|a, b| {
                    let da = plan(&a.0, a.1, idx).duration_secs;
                    let db = plan(&b.0, b.1, idx).duration_secs;
                    da.partial_cmp(&db).expect("finite oracle durations")
                })
                .expect("non-empty grid")
                .clone()
        };
        let run_arm = |adaptive: bool| -> (Vec<f64>, u64, TransparentDeployer) {
            let provider =
                CloudProvider::new(catalog.clone(), cfg.seed ^ 0xD21F).with_drift(drift.clone());
            let mut builder = DeployPolicy::builder(t_max)
                .epsilon(0.0)
                .max_nodes(max_nodes)
                .min_kb_samples(warmup)
                .retrain_every(if adaptive { 1 } else { 10_000 })
                .n_threads(cfg.n_threads.max(1));
            if adaptive {
                builder = builder
                    .retrain_mode(RetrainMode::Windowed {
                        window: 16,
                        decay: 0.0,
                    })
                    .drift(DriftConfig {
                        detector: DetectorKind::PageHinkley,
                        threshold: 1.5,
                        delta: 0.05,
                        window: 16,
                        decay: 0.0,
                    });
            }
            let mut d = TransparentDeployer::new(provider, builder.build(), cfg.seed ^ 0xD21F);
            // Manual grid warm-up: both arms record the same runs, so
            // their noise streams and knowledge bases stay aligned.
            for i in 0..warmup {
                let inst = &names[i % names.len()];
                let n = 1 + (i / names.len()) % max_nodes;
                d.deploy_manual(&job.profile, &job.workload, inst, n)
                    .expect("catalog configuration");
            }
            d.warm().expect("warm-up records train the family");
            let mut regret = Vec::with_capacity(horizon - warmup);
            for i in warmup..horizon {
                let idx = i as u64;
                let out = match d.deploy(&job.profile, &job.workload) {
                    Ok(out) => out,
                    Err(CoreError::NoFeasibleConfiguration { .. }) => {
                        // A mis-calibrated model can reject everything;
                        // fall back to the fastest machine so the loop
                        // keeps learning (the regret speaks for itself).
                        let (nm, n) = fastest(idx);
                        d.deploy_manual(&job.profile, &job.workload, &nm, n)
                            .expect("catalog configuration")
                    }
                    Err(e) => panic!("drift-ablation deploy failed: {e}"),
                };
                let chosen = plan(&out.decision.instance, out.decision.n_nodes, idx);
                let best = best_feasible(idx);
                let mut r = (chosen.prorated_cost - best).max(0.0);
                if chosen.duration_secs > t_max {
                    r += best;
                }
                regret.push(r);
            }
            (regret, d.drift_fires(), d)
        };
        let (adaptive_regret, drift_fires, adaptive_deployer) = run_arm(true);
        let (frozen_regret, _, _) = run_arm(false);
        // In-band: rolling mean regret at or below a band derived from
        // the arm's own pre-change level, floored at a quarter of the
        // post-change oracle cost — one deadline miss per rolling window
        // already exceeds the floor, so a stale arm cannot sneak in.
        let post_costs: Vec<f64> = (change_at..horizon)
            .map(|i| best_feasible(i as u64))
            .collect();
        let floor = 0.25 * stats::mean(&post_costs);
        let recovery = |regret: &[f64]| -> usize {
            let band = (1.5 * stats::mean(&regret[..pre_ml])).max(floor);
            let trace = &regret[pre_ml..];
            for k in roll..=trace.len() {
                if stats::mean(&trace[k - roll..k]) <= band {
                    return k;
                }
            }
            trace.len()
        };
        let adaptive_recovery = recovery(&adaptive_regret);
        let frozen_recovery = recovery(&frozen_regret);
        // Regret-weight the surviving ensemble: each member alone picks
        // its cheapest predicted-feasible configuration on the final
        // post-change grid; its weight decays with the oracle regret of
        // that solo pick.
        let final_idx = (horizon - 1) as u64;
        let family = adaptive_deployer.family();
        let mut member_names: Vec<String> = Vec::new();
        let mut picks: Vec<Option<(f64, f64, f64)>> = Vec::new();
        for (nm, n) in &grid {
            let inst = catalog.get(nm).expect("catalog instance");
            let preds = family
                .predict_each(&job.profile, inst, *n)
                .expect("adaptive family is trained");
            if member_names.is_empty() {
                member_names = preds.iter().map(|(m, _)| (*m).to_string()).collect();
                picks = vec![None; preds.len()];
            }
            let oracle = plan(nm, *n, final_idx);
            for (m, (_, secs)) in preds.iter().enumerate() {
                if *secs <= t_max {
                    let predicted_cost = secs / 3_600.0 * *n as f64 * inst.hourly_cost;
                    if picks[m].is_none_or(|(c, _, _)| predicted_cost < c) {
                        picks[m] =
                            Some((predicted_cost, oracle.prorated_cost, oracle.duration_secs));
                    }
                }
            }
        }
        let best_final = best_feasible(final_idx);
        let member_regrets: Vec<f64> = picks
            .iter()
            .map(|pick| match pick {
                Some((_, cost, dur)) => {
                    (cost - best_final).max(0.0) + if *dur > t_max { best_final } else { 0.0 }
                }
                None => best_final,
            })
            .collect();
        let member_weights = regret_weights(&member_regrets);
        DriftAblation {
            change_at,
            t_max_secs: t_max,
            adaptive_regret,
            frozen_regret,
            adaptive_recovery,
            frozen_recovery,
            drift_fires,
            member_names,
            member_weights,
        }
    }
}

impl Experiment for DriftAblationExperiment {
    fn name(&self) -> &'static str {
        "ablation_drift"
    }

    fn run(&self, ctx: &ExperimentCtx) -> Vec<RegistryRow> {
        let t0 = Instant::now();
        let jobs = ctx.jobs();
        let a = Self::compute(&ctx.cfg, &jobs);
        finish(
            self.name(),
            ctx,
            None,
            &jobs,
            &[],
            to_json(&a),
            Value::Null,
            t0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::build_knowledge_base;

    fn small_campaign() -> (KnowledgeBase, CloudProvider, Vec<EebJob>) {
        build_knowledge_base(
            &CampaignConfig::builder()
                .n_runs(240)
                .n_outer(400)
                .n_inner(30)
                .max_nodes(4)
                .seed(11)
                .n_threads(1)
                .build(),
        )
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: std::collections::BTreeSet<&str> =
            EXPERIMENTS.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), EXPERIMENTS.len(), "duplicate experiment name");
        assert_eq!(EXPERIMENTS.len(), 16);
        for e in EXPERIMENTS {
            assert_eq!(by_name(e.name()).unwrap().name(), e.name());
        }
        assert!(by_name("no_such_experiment").is_none());
    }

    #[test]
    fn ctx_params_roundtrip() {
        let ctx = ExperimentCtx::new(
            CampaignConfig::builder()
                .n_runs(60)
                .n_outer(200)
                .n_inner(20)
                .max_nodes(4)
                .seed(7)
                .n_threads(1)
                .build(),
            true,
        );
        let back = ExperimentCtx::from_params(&ctx.params()).expect("round-trips");
        assert_eq!(back.cfg.n_runs, ctx.cfg.n_runs);
        assert_eq!(back.cfg.n_outer, ctx.cfg.n_outer);
        assert_eq!(back.cfg.n_inner, ctx.cfg.n_inner);
        assert_eq!(back.cfg.max_nodes, ctx.cfg.max_nodes);
        assert_eq!(back.cfg.seed, ctx.cfg.seed);
        assert_eq!(back.cfg.n_threads, ctx.cfg.n_threads);
        assert_eq!(back.quick, ctx.quick);
        // Same context → same digest; bench rows carry foreign params.
        let jobs = ctx.jobs();
        assert_eq!(
            ctx.input_hash("table2", None, &jobs),
            back.input_hash("table2", None, &jobs)
        );
        assert!(ExperimentCtx::from_params(&json!({ "model": "IBk" })).is_none());
    }

    #[test]
    fn trait_run_emits_one_replayable_row() {
        let ctx = ExperimentCtx::new(
            CampaignConfig::builder()
                .n_runs(60)
                .n_outer(200)
                .n_inner(20)
                .max_nodes(4)
                .seed(7)
                .n_threads(1)
                .build(),
            true,
        );
        let first = Table2Experiment.run(&ctx);
        assert_eq!(first.len(), 1);
        let row = &first[0];
        assert_eq!(row.experiment, "table2");
        // Replaying from the recorded params must reproduce both hashes
        // bit-identically — the runbook contract.
        let replay_ctx = ExperimentCtx::from_params(&row.params).expect("driver params");
        let again = Table2Experiment.run(&replay_ctx);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].input_hash, row.input_hash);
        assert_eq!(again[0].output_hash, row.output_hash);
        assert!(row.outputs_match(&again[0].outputs));
    }

    #[test]
    fn table1_has_full_shape_and_moderate_bias() {
        let (kb, provider, _) = small_campaign();
        let t = Table1Experiment::compute(&kb, provider.catalog(), 1, 1);
        assert_eq!(t.models.len(), 6);
        assert_eq!(t.instances.len(), 6);
        let times: Vec<f64> = kb.records().iter().map(|r| r.duration_secs).collect();
        let scale = stats::mean(&times);
        for row in &t.bias {
            for &b in row {
                assert!(b.is_finite());
                assert!(
                    b.abs() < scale,
                    "bias {b} should be below the mean duration {scale}"
                );
            }
        }
    }

    #[test]
    fn table2_costs_positive_and_differentiated() {
        let (_, provider, jobs) = small_campaign();
        let t2 = Table2Experiment::compute(&jobs, &provider, 1);
        assert_eq!(t2.len(), 6);
        for (_, c) in &t2 {
            assert!(*c > 0.0);
        }
        let costs: Vec<f64> = t2.iter().map(|(_, c)| *c).collect();
        assert!(stats::std_dev(&costs) > 0.0);
    }

    #[test]
    fn parallel_table2_and_fig4_match_sequential() {
        let (_, seq_provider, jobs) = small_campaign();
        let (_, par_provider, _) = small_campaign();
        assert_eq!(
            Table2Experiment::compute(&jobs, &seq_provider, 1),
            Table2Experiment::compute(&jobs, &par_provider, 4)
        );
        assert_eq!(
            Fig4Experiment::compute(&jobs, &seq_provider, 1),
            Fig4Experiment::compute(&jobs, &par_provider, 4)
        );
    }

    #[test]
    fn parallel_table1_fig2_ensemble_match_sequential() {
        let (kb, provider, _) = small_campaign();
        let seq = Table1Experiment::compute(&kb, provider.catalog(), 1, 1);
        let par = Table1Experiment::compute(&kb, provider.catalog(), 1, 4);
        assert_eq!(seq.instances, par.instances);
        assert_eq!(seq.models, par.models);
        assert_eq!(seq.bias, par.bias);

        let f_seq = Fig2Experiment::compute(&kb, 3, 1);
        let f_par = Fig2Experiment::compute(&kb, 3, 4);
        assert_eq!(f_seq.len(), f_par.len());
        for (a, b) in f_seq.iter().zip(&f_par) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.real.to_bits(), b.real.to_bits());
            assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
        }

        let e_seq = EnsembleAblationExperiment::compute(&kb, 2, 1);
        let e_par = EnsembleAblationExperiment::compute(&kb, 2, 4);
        assert_eq!(e_seq.len(), e_par.len());
        for (a, b) in e_seq.iter().zip(&e_par) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }

    #[test]
    fn parallel_hetero_and_deadline_ablations_match_sequential() {
        // Separate providers so both variants see identical noise-stream
        // positions; the ablations run back-to-back on each, which also
        // checks that both leave the stream at the same point.
        let (kb, seq_provider, jobs) = small_campaign();
        let (_, par_provider, _) = small_campaign();
        assert_eq!(
            HeteroAblationExperiment::compute(&kb, &jobs, &seq_provider, 3, 1),
            HeteroAblationExperiment::compute(&kb, &jobs, &par_provider, 3, 4)
        );
        assert_eq!(
            DeadlineRuleAblationExperiment::compute(&kb, &jobs, &seq_provider, 5, 1),
            DeadlineRuleAblationExperiment::compute(&kb, &jobs, &par_provider, 5, 4)
        );
    }

    #[test]
    fn fig2_fig3_consistency() {
        let (kb, _, _) = small_campaign();
        let pts = Fig2Experiment::compute(&kb, 3, 1);
        assert!(!pts.is_empty());
        // 6 models × 60% of the KB.
        assert_eq!(pts.len(), 6 * (kb.len() - (kb.len() as f64 * 0.4) as usize));
        let f3 = Fig3Experiment::compute(&pts);
        let total_pct: f64 = f3.bins.iter().map(|(_, p)| p).sum();
        assert!((total_pct - 100.0).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&f3.within_200s));
        // The per-model summary covers all six models.
        let summary = Fig2Experiment::summary(&pts);
        assert_eq!(summary.as_array().unwrap().len(), 6);
    }

    #[test]
    fn fig4_speedups_in_paper_band() {
        let (_, provider, jobs) = small_campaign();
        for (name, s) in Fig4Experiment::compute(&jobs, &provider, 1) {
            assert!((2.0..12.0).contains(&s), "{name}: speedup {s}");
        }
    }

    #[test]
    fn comparison_shows_both_wins() {
        let (kb, provider, jobs) = small_campaign();
        let c = ComparisonExperiment::compute(&kb, &jobs, &provider, 5);
        assert!(
            c.cost_decrease_pct > 0.0,
            "ML should beat the high-end machine on cost: {c:?}"
        );
        assert!(
            c.time_reduction_pct > 0.0,
            "ML should beat the cheapest machine on time: {c:?}"
        );
    }

    #[test]
    fn ensemble_ablation_contains_all_rows() {
        let (kb, _, _) = small_campaign();
        let rows = EnsembleAblationExperiment::compute(&kb, 2, 1);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows.last().unwrap().0, "Ensemble");
        for (_, bias, rmse) in &rows {
            assert!(bias.is_finite());
            assert!(*rmse >= 0.0);
        }
    }

    #[test]
    fn epsilon_widens_coverage() {
        let cfg = CampaignConfig::builder()
            .n_runs(0)
            .n_outer(400)
            .n_inner(30)
            .max_nodes(6)
            .seed(17)
            .n_threads(1)
            .build();
        let jobs = crate::campaign::paper_eeb_jobs(&cfg);
        let greedy = EpsilonAblationExperiment::compute(&cfg, &jobs, 0.0, 120);
        let explore = EpsilonAblationExperiment::compute(&cfg, &jobs, 0.25, 120);
        assert!(
            explore.distinct_configs >= greedy.distinct_configs,
            "exploration must not shrink coverage: {greedy:?} vs {explore:?}"
        );
    }

    #[test]
    fn hetero_ablation_finds_feasible_configs() {
        let (kb, provider, jobs) = small_campaign();
        let rows = HeteroAblationExperiment::compute(&kb, &jobs, &provider, 3, 1);
        assert_eq!(rows.len(), 4);
        // At a loose deadline both approaches find something, and the
        // hetero candidate set contains the homogeneous one, so its
        // predicted pick cannot be worse; realized costs stay comparable.
        let loose = rows.last().unwrap();
        assert!(loose.homo.is_some());
        assert!(loose.hetero.is_some());
        // Whenever homo is feasible, hetero must be too (superset).
        for r in &rows {
            if r.homo.is_some() {
                assert!(r.hetero.is_some(), "hetero infeasible at {}", r.t_max);
            }
        }
    }

    #[test]
    fn conservative_rule_shrinks_feasibility() {
        let (kb, provider, jobs) = small_campaign();
        let rows = DeadlineRuleAblationExperiment::compute(&kb, &jobs, &provider, 5, 1);
        assert_eq!(rows.len(), 2);
        let mean = &rows[0];
        let cons = &rows[1];
        assert_eq!(mean.rule, "mean");
        // Structural guarantee: filtering on the worst member prediction
        // can only shrink the set of accepted (job, deadline) cases. The
        // realized miss *rate* is noise-dependent and is reported, not
        // asserted (see ablation_deadline_rule.md in the harness output).
        assert!(cons.feasible_cases <= mean.feasible_cases);
        assert!(cons.feasible_cases > 0, "some cases must remain feasible");
        assert!(mean.misses <= mean.feasible_cases);
        assert!(cons.misses <= cons.feasible_cases);
        assert!(mean.mean_cost > 0.0 && cons.mean_cost > 0.0);
    }

    #[test]
    fn learning_curve_improves() {
        let cfg = CampaignConfig::builder()
            .n_runs(0)
            .n_outer(400)
            .n_inner(30)
            .max_nodes(4)
            .seed(23)
            .n_threads(1)
            .build();
        let jobs = crate::campaign::paper_eeb_jobs(&cfg);
        let lc = LearningCurveExperiment::compute(&cfg, &jobs, 200);
        assert!(!lc.points.is_empty());
        assert!(
            lc.late_mae < lc.early_mae,
            "late {} should beat early {}",
            lc.late_mae,
            lc.early_mae
        );
        assert!(lc.late_mae < 0.5, "late relative error {}", lc.late_mae);
    }

    #[test]
    fn transfer_ablation_quantifies_onboarding() {
        let cfg = CampaignConfig::builder()
            .n_runs(0)
            .n_outer(400)
            .n_inner(30)
            .max_nodes(4)
            .seed(29)
            .n_threads(1)
            .build();
        let jobs = crate::campaign::paper_eeb_jobs(&cfg);
        let rows = TransferAblationExperiment::compute(&cfg, &jobs, 60);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.policy == n).unwrap();
        let isolated = by_name("isolated");
        let pooled = by_name("pooled");
        let borrow = by_name("borrow-until-8");
        // Isolated: company B repeats the whole manual-training phase.
        assert!(
            isolated.b_bootstrap_deploys > 10,
            "isolated B should re-bootstrap: {isolated:?}"
        );
        // Transfer: company B starts from company A's knowledge.
        assert_eq!(pooled.b_bootstrap_deploys, 0, "{pooled:?}");
        assert_eq!(borrow.b_bootstrap_deploys, 0, "{borrow:?}");
        assert!(pooled.b_ml_deploys > 0 && borrow.b_ml_deploys > 0);
        for r in &rows {
            assert!(r.b_mean_cost > 0.0);
            assert_eq!(r.b_bootstrap_deploys + r.b_ml_deploys, 60, "{r:?}");
        }
    }

    #[test]
    fn feature_importances_find_the_real_drivers() {
        let (kb, _, _) = small_campaign();
        let rows = FeatureAblationExperiment::compute(&kb, 1);
        assert_eq!(rows.len(), disar_core::RunRecord::feature_names().len());
        let total: f64 = rows.iter().map(|(_, i)| i).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // nP and nQ are constant in the campaign, so they cannot explain
        // any variance; the cost drivers must be the EEB characteristics
        // and the deploy configuration.
        let imp = |name: &str| rows.iter().find(|(n, _)| n == name).unwrap().1;
        assert!(imp("n_outer") < 1e-9);
        assert!(imp("n_inner") < 1e-9);
        let config_side = imp("vcpus") + imp("per_core_speed") + imp("n_nodes");
        let job_side = imp("representative_contracts") + imp("max_horizon");
        assert!(config_side > 0.05, "deploy features matter: {rows:?}");
        assert!(job_side > 0.05, "EEB features matter: {rows:?}");
    }

    #[test]
    fn billing_ablation_orders_policies() {
        let (kb, provider, _) = small_campaign();
        let b = BillingAblationExperiment::compute(&kb, provider.catalog());
        // Per-hour rounding can only add money; per-second sits between
        // prorated and per-hour.
        assert!(b.per_hour_total >= b.per_second_total - 1e-9);
        assert!(b.per_second_total >= b.prorated_total - 1e-9);
        assert!(b.prorated_total > 0.0);
        // Short jobs make hourly rounding expensive: expect a real markup.
        assert!(
            b.per_hour_total > 1.2 * b.prorated_total,
            "per-hour {} vs prorated {}",
            b.per_hour_total,
            b.prorated_total
        );
    }

    #[test]
    fn lsmc_is_faster_and_close() {
        let a = LsmcAblationExperiment::compute(9);
        assert!(
            a.lsmc_secs < a.nested_secs,
            "LSMC ({}) should beat nested ({})",
            a.lsmc_secs,
            a.nested_secs
        );
        assert!(a.mean_rel_gap < 0.05, "mean gap {}", a.mean_rel_gap);
        assert!(a.nested_scr >= 0.0 && a.lsmc_scr >= 0.0);
    }

    #[test]
    fn drift_ablation_adapts_faster_than_frozen() {
        let cfg = CampaignConfig::builder()
            .n_runs(0)
            .n_outer(400)
            .n_inner(30)
            .max_nodes(3)
            .seed(31)
            .n_threads(1)
            .build();
        let jobs = crate::campaign::paper_eeb_jobs(&cfg);
        let a = DriftAblationExperiment::compute(&cfg, &jobs);
        assert!(a.t_max_secs > 0.0);
        assert_eq!(a.adaptive_regret.len(), a.frozen_regret.len());
        for r in a.adaptive_regret.iter().chain(&a.frozen_regret) {
            assert!(r.is_finite() && *r >= 0.0, "regret {r}");
        }
        // The regime change must register on the residual stream.
        assert!(a.drift_fires >= 1, "detector never fired: {a:?}");
        // The acceptance bar: windowed retraining + detector escalation
        // recovers strictly faster than the never-adapting baseline.
        assert!(
            a.adaptive_recovery < a.frozen_recovery,
            "adaptive {} vs frozen {}",
            a.adaptive_recovery,
            a.frozen_recovery
        );
        // Regret weighting covers the whole family and forms a simplex.
        assert_eq!(a.member_names.len(), 6);
        assert_eq!(a.member_weights.len(), 6);
        let total: f64 = a.member_weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert!(a.member_weights.iter().all(|w| *w >= 0.0));
    }
}
