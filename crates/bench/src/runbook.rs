//! Replays recorded registry rows and asserts bit-identical reproduction.
//!
//! Every experiment driver records enough in its row (`params` +
//! `input_hash`) to be re-run from scratch; `runbook` inverts that record:
//! rebuild the [`ExperimentCtx`], re-run the driver, and compare both the
//! input and output digests against what was recorded. Timing-only rows
//! (`bench:*`, `perf_smoke`) have no replayable outputs and are skipped,
//! as is anything written by a newer driver this build doesn't know.

use crate::experiments::{by_name, ExperimentCtx};
use disar_registry::RegistryRow;

/// What replaying one row produced.
#[derive(Debug, Clone)]
pub enum ReplayOutcome {
    /// Replay reproduced the recorded digests bit-identically.
    Matched {
        /// The row's experiment name.
        experiment: String,
    },
    /// Replay produced different bits — the regression `runbook` exists to
    /// catch.
    Mismatched {
        /// The row's experiment name.
        experiment: String,
        /// Which digest diverged: `"input_hash"` or `"output_hash"`.
        what: &'static str,
        /// The digest on the recorded row.
        recorded: String,
        /// The digest the replay produced.
        replayed: String,
    },
    /// The row is outside the replay contract.
    Skipped {
        /// The row's experiment name.
        experiment: String,
        /// Why it was skipped.
        reason: String,
    },
}

impl ReplayOutcome {
    /// `true` only for [`ReplayOutcome::Mismatched`].
    pub fn is_failure(&self) -> bool {
        matches!(self, ReplayOutcome::Mismatched { .. })
    }

    /// One status line for the terminal.
    pub fn describe(&self) -> String {
        match self {
            ReplayOutcome::Matched { experiment } => format!("ok       {experiment}"),
            ReplayOutcome::Mismatched {
                experiment,
                what,
                recorded,
                replayed,
            } => format!("MISMATCH {experiment}: {what} recorded {recorded} != replayed {replayed}"),
            ReplayOutcome::Skipped { experiment, reason } => {
                format!("skip     {experiment}: {reason}")
            }
        }
    }
}

/// Replays one row: rebuild the context from `params`, re-run the driver,
/// compare digests.
pub fn replay_row(row: &RegistryRow) -> ReplayOutcome {
    let Some(exp) = by_name(&row.experiment) else {
        let timing_only =
            row.experiment.starts_with("bench:") || row.experiment.starts_with("perf_smoke");
        let reason = if timing_only {
            "timing-only row, nothing replayable".to_string()
        } else {
            "not a registered experiment driver".to_string()
        };
        return ReplayOutcome::Skipped {
            experiment: row.experiment.clone(),
            reason,
        };
    };
    let Some(ctx) = ExperimentCtx::from_params(&row.params) else {
        return ReplayOutcome::Skipped {
            experiment: row.experiment.clone(),
            reason: "params are not a replayable campaign context".to_string(),
        };
    };
    let replayed = exp.run(&ctx);
    let [fresh] = replayed.as_slice() else {
        return ReplayOutcome::Mismatched {
            experiment: row.experiment.clone(),
            what: "output_hash",
            recorded: row.output_hash.clone(),
            replayed: format!("{} rows instead of 1", replayed.len()),
        };
    };
    if fresh.input_hash != row.input_hash {
        return ReplayOutcome::Mismatched {
            experiment: row.experiment.clone(),
            what: "input_hash",
            recorded: row.input_hash.clone(),
            replayed: fresh.input_hash.clone(),
        };
    }
    if fresh.output_hash != row.output_hash {
        return ReplayOutcome::Mismatched {
            experiment: row.experiment.clone(),
            what: "output_hash",
            recorded: row.output_hash.clone(),
            replayed: fresh.output_hash.clone(),
        };
    }
    ReplayOutcome::Matched {
        experiment: row.experiment.clone(),
    }
}

/// Replays every row (optionally only those named `filter`), in file
/// order.
pub fn replay_all(rows: &[RegistryRow], filter: Option<&str>) -> Vec<ReplayOutcome> {
    rows.iter()
        .filter(|r| filter.map_or(true, |f| r.experiment == f))
        .map(replay_row)
        .collect()
}

/// Self-contained determinism smoke for CI: run one cheap driver, then
/// replay its row through the same path `runbook` uses for recorded rows,
/// and demand bit-identity. No registry file is touched.
pub fn check() -> Result<(), String> {
    let ctx = ExperimentCtx::new(
        crate::campaign::CampaignConfig::builder()
            .n_runs(60)
            .n_outer(200)
            .n_inner(20)
            .max_nodes(4)
            .seed(7)
            .n_threads(1)
            .build(),
        true,
    );
    let exp = by_name("table2").expect("table2 is registered");
    let rows = exp.run(&ctx);
    let [row] = rows.as_slice() else {
        return Err(format!("table2 emitted {} rows instead of 1", rows.len()));
    };
    match replay_row(row) {
        ReplayOutcome::Matched { .. } => Ok(()),
        other => Err(other.describe()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::bench_row;

    #[test]
    fn check_passes_on_a_deterministic_build() {
        check().expect("table2 replays bit-identically");
    }

    #[test]
    fn bench_rows_are_skipped() {
        let row = bench_row(
            "nested_kernel",
            serde_json::json!({ "n_outer": 10 }),
            serde_json::json!({ "median_wall_ns": 1 }),
            1,
        );
        let out = replay_row(&row);
        assert!(matches!(out, ReplayOutcome::Skipped { .. }), "{out:?}");
        assert!(!out.is_failure());
    }

    #[test]
    fn corrupted_outputs_are_caught() {
        let ctx = ExperimentCtx::new(
            crate::campaign::CampaignConfig::builder()
                .n_runs(60)
                .n_outer(200)
                .n_inner(20)
                .max_nodes(4)
                .seed(7)
                .n_threads(1)
                .build(),
            true,
        );
        let mut rows = by_name("table2").unwrap().run(&ctx);
        rows[0].output_hash = "fnv1a64:0000000000000000".to_string();
        let out = replay_row(&rows[0]);
        assert!(out.is_failure(), "{out:?}");
        assert!(out.describe().contains("output_hash"));
    }
}
