//! Workspace registry plumbing: where bench/experiment rows land and how
//! this crate's input types canonicalize.
//!
//! Every producer in `disar-bench` — the `experiments` driver, the
//! hand-rolled bench harnesses, `perf_smoke` — appends to one append-only
//! JSONL registry through [`workspace_registry`] (DESIGN.md §13). The old
//! per-artifact CSV/JSON writers are gone; `results/registry.jsonl` (or
//! `$DISAR_REGISTRY` / `$DISAR_RESULTS_DIR/registry.jsonl`) is the single
//! sink the CI regression gate diffs.

use crate::campaign::{CampaignConfig, EebJob};
use disar_registry::{CanonicalHasher, Canonicalize, Registry, RegistryRow};
use std::path::{Path, PathBuf};

/// The workspace root this crate was built from (`CARGO_MANIFEST_DIR`
/// anchored, so producers write the same registry regardless of the cwd
/// they were launched with).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Opens the workspace registry (`results/registry.jsonl` under the repo
/// root unless `$DISAR_REGISTRY` / `$DISAR_RESULTS_DIR` override it).
pub fn workspace_registry() -> Registry {
    Registry::default_under(&workspace_root())
}

/// Builds a timing-only row for a hand-rolled bench harness.
///
/// The row's experiment name is `bench:<name>`, its `input_hash` digests
/// the name plus the canonical (sorted-key) serialization of `params`, and
/// all measurements go in `timings` — outside the replay contract, which
/// is why `runbook` skips `bench:*` rows.
pub fn bench_row(
    name: &str,
    params: serde_json::Value,
    timings: serde_json::Value,
    wall_ns: u64,
) -> RegistryRow {
    let mut h = CanonicalHasher::new();
    h.field("bench");
    h.write_str(name);
    h.field("params");
    h.write_str(&params.to_string());
    RegistryRow::new(
        format!("bench:{name}"),
        h.finish(),
        params,
        serde_json::Value::Null,
        wall_ns,
    )
    .with_timings(timings)
}

impl Canonicalize for CampaignConfig {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.field("n_runs");
        h.write_usize(self.n_runs);
        h.field("n_outer");
        h.write_usize(self.n_outer);
        h.field("n_inner");
        h.write_usize(self.n_inner);
        h.field("max_nodes");
        h.write_usize(self.max_nodes);
        h.field("seed");
        h.write_u64(self.seed);
        h.field("n_threads");
        h.write_usize(self.n_threads);
    }
}

impl Canonicalize for EebJob {
    fn canonicalize(&self, h: &mut CanonicalHasher) {
        h.field("portfolio");
        h.write_str(&self.portfolio);
        h.field("eeb_id");
        h.write_usize(self.eeb_id);
        h.field("profile");
        self.profile.canonicalize(h);
        h.field("workload");
        self.workload.canonicalize(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_are_timing_only() {
        let r = bench_row(
            "kb_scale/retrain",
            serde_json::json!({ "model": "IBk", "kb_size": 100 }),
            serde_json::json!({ "full_fit_ns": 10, "incremental_fit_ns": 2 }),
            42,
        );
        assert_eq!(r.experiment, "bench:kb_scale/retrain");
        assert!(r.outputs.is_null());
        assert!(!r.timings.is_null());
        // Same name + params → same input hash; different params → different.
        let again = bench_row(
            "kb_scale/retrain",
            serde_json::json!({ "model": "IBk", "kb_size": 100 }),
            serde_json::json!({ "full_fit_ns": 99 }),
            7,
        );
        assert_eq!(r.input_hash, again.input_hash);
        let other = bench_row(
            "kb_scale/retrain",
            serde_json::json!({ "model": "IBk", "kb_size": 1000 }),
            serde_json::Value::Null,
            7,
        );
        assert_ne!(r.input_hash, other.input_hash);
    }

    #[test]
    fn campaign_hash_is_field_sensitive() {
        let a = CampaignConfig::builder().seed(1).build();
        let b = CampaignConfig::builder().seed(2).build();
        assert_eq!(a.canonical_hash(), a.canonical_hash());
        assert_ne!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn job_hash_covers_the_workload() {
        let cfg = CampaignConfig::builder()
            .n_outer(200)
            .n_inner(20)
            .n_threads(1)
            .build();
        let jobs = crate::campaign::paper_eeb_jobs(&cfg);
        let hashes: std::collections::BTreeSet<u64> =
            jobs.iter().map(|j| j.canonical_hash()).collect();
        assert_eq!(hashes.len(), jobs.len(), "15 distinct jobs, 15 digests");
        assert_eq!(jobs.canonical_hash(), jobs.clone().canonical_hash());
    }
}
