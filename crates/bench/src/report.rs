//! Markdown rendering helpers for the experiment harness.
//!
//! Persistent outputs go through `disar_registry::Registry` (one
//! append-only JSONL file); these helpers only format human-readable
//! views of in-memory rows.

/// Renders a GitHub-flavoured Markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats a float with fixed precision for tables.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a | b |"));
        assert!(lines[1].contains("---|---|"));
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-34.9, 1), "-34.9");
    }
}
