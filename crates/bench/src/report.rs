//! CSV / Markdown output helpers for the experiment harness.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The directory experiment outputs are written to (`results/` under the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("DISAR_RESULTS_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => PathBuf::from("results"),
    };
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Writes a CSV file with a header row.
///
/// # Panics
///
/// Panics on I/O failure (experiment harness context: fail loudly).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    let mut f = fs::File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
}

/// Renders a GitHub-flavoured Markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Formats a float with fixed precision for tables.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a | b |"));
        assert!(lines[1].contains("---|---|"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("disar-report-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], &[vec!["1".into(), "2".into()]]);
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-34.9, 1), "-34.9");
    }
}
